//! Incremental chase maintenance: absorb base-fact writes into a finished
//! [`Chase`] without re-chasing the world.
//!
//! The contract is *byte-identity*: whatever path a batch takes, the result
//! equals `chase_with(theory, final_base, budget, exec)` on the fact
//! stream, `round_of`, provenance, round snapshots and the shared
//! `ChaseStats` counters (`facts_added`/`terms_added` per round, memory) —
//! only the enumeration-work counters (triggers, candidates, sweeps) and
//! wall times may differ, because skipping that work is the whole point.
//!
//! **Inserts** are absorbed by seeding the semi-naive delta with just the
//! new facts: the recorded match trails of the previous run are replayed
//! round by round (an event's head facts are a pure function of its rule
//! and frontier image, so no joins are re-run for old work), while a
//! discovery pass joins only the *cone* — facts and terms that did not
//! exist before — against the previous instance using the engine's
//! per-predicate delta indexes. Discovered events are scheduled into the
//! round the cold engine would fire them in (`1 + max` over the rounds of
//! their body elements) and interleaved with the replayed events in the
//! cold engine's canonical enumeration order, reconstructed from the
//! static [`JoinPlan`] execution order.
//!
//! **Retractions** run delete/rederive (DRed) over the match-trail
//! provenance: the affected cone is the set of derived facts whose first
//! derivations transitively reference a retracted base fact. When the cone
//! is empty (and no retracted fact is head-unifiable, so nothing needs
//! rederivation), the fact log is truncated to the base snapshot and
//! replayed without the retracted entries — O(n) inserts, zero joins.
//! Otherwise the survivors are rederived by a cold re-chase of the
//! shrunken base, which is also the general fallback whenever a batch
//! violates one of the fast-path invariants (each bail is a *detected*
//! structural change — e.g. a new fact pulling an old fact into an earlier
//! round — where replaying old trails would be unsound).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use qr_exec::Executor;
use qr_hom::matcher::{Assignment, JoinPlan, MatchCounters};
use qr_syntax::query::{QTerm, Var};
use qr_syntax::{Fact, FactIdx, Instance, Pred, TermId, Theory};

use crate::engine::{
    chase_with, plans, unify_atom_fact, Chase, ChaseBudget, ChaseOutcome, Derivation, RulePlan,
};
use crate::stats::{ChaseStats, RoundStats};

/// A batch of base-fact writes. Retractions are applied before inserts, so
/// a fact both retracted and inserted ends up present (at the end of the
/// base order). Retracting a fact that is not a base fact is a no-op;
/// inserting a fact already in the base is a no-op.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WriteBatch {
    /// Base facts to add.
    pub inserts: Vec<Fact>,
    /// Base facts to remove.
    pub retracts: Vec<Fact>,
}

impl WriteBatch {
    /// A pure-insert batch.
    pub fn insert(facts: impl IntoIterator<Item = Fact>) -> WriteBatch {
        WriteBatch {
            inserts: facts.into_iter().collect(),
            retracts: Vec::new(),
        }
    }

    /// A pure-retraction batch.
    pub fn retract(facts: impl IntoIterator<Item = Fact>) -> WriteBatch {
        WriteBatch {
            inserts: Vec::new(),
            retracts: facts.into_iter().collect(),
        }
    }

    /// `true` iff the batch carries no writes at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }

    /// Coalesces a batch sequence into an equivalent, usually shorter one:
    /// applying the result batches in order against a base where `in_base`
    /// answers membership produces the **byte-identical** final base (same
    /// surviving facts in the same log order) as applying the originals —
    /// so the maintained chase after [`IncrementalChase::apply_all`] is
    /// byte-identical too, with fewer dispatches.
    ///
    /// Rules, applied left to right over a membership overlay:
    /// - ineffective writes are dropped (retract of an absent fact,
    ///   insert of a present one — no-ops by the batch contract);
    /// - consecutive effectively-pure-insert batches fuse into one, as do
    ///   consecutive effectively-pure-retract batches;
    /// - an insert-then-retract of a fact that was absent before the
    ///   insert cancels outright (the fact never reaches the base, and
    ///   removing both writes shifts no other fact's log position);
    /// - batches that stay mixed after the above act as barriers.
    pub fn coalesce(batches: &[WriteBatch], in_base: impl Fn(&Fact) -> bool) -> Vec<WriteBatch> {
        let mut overlay: HashMap<Fact, bool> = HashMap::new();
        let mut out: Vec<WriteBatch> = Vec::new();
        // Facts in the current pure-insert top that were absent before it
        // (only those may cancel against a following retract).
        let mut top_new: HashSet<Fact> = HashSet::new();
        for batch in batches {
            let mut r_eff: Vec<Fact> = Vec::new();
            for fx in &batch.retracts {
                let present = overlay.get(fx).copied().unwrap_or_else(|| in_base(fx));
                if present && !r_eff.contains(fx) {
                    overlay.insert(fx.clone(), false);
                    r_eff.push(fx.clone());
                }
            }
            let mut i_eff: Vec<Fact> = Vec::new();
            for fx in &batch.inserts {
                let present = overlay.get(fx).copied().unwrap_or_else(|| in_base(fx));
                if !present {
                    overlay.insert(fx.clone(), true);
                    i_eff.push(fx.clone());
                }
            }
            match (r_eff.is_empty(), i_eff.is_empty()) {
                (true, true) => {} // no effective writes
                (true, false) => {
                    // Pure insert: fuse with a pure-insert top.
                    match out.last_mut() {
                        Some(top) if top.retracts.is_empty() => {
                            top_new.extend(i_eff.iter().cloned());
                            top.inserts.extend(i_eff);
                        }
                        _ => {
                            top_new = i_eff.iter().cloned().collect();
                            out.push(WriteBatch::insert(i_eff));
                        }
                    }
                }
                (false, true) => {
                    // Pure retract: cancel against the pure-insert top,
                    // then fuse with a pure-retract top.
                    if let Some(top) = out.last_mut() {
                        if top.retracts.is_empty() {
                            let cancel: HashSet<Fact> = r_eff
                                .iter()
                                .filter(|fx| top_new.contains(*fx))
                                .cloned()
                                .collect();
                            if !cancel.is_empty() {
                                top.inserts.retain(|fx| !cancel.contains(fx));
                                r_eff.retain(|fx| !cancel.contains(fx));
                                if top.inserts.is_empty() {
                                    out.pop();
                                }
                            }
                        }
                    }
                    if r_eff.is_empty() {
                        continue;
                    }
                    top_new.clear();
                    match out.last_mut() {
                        Some(top) if top.inserts.is_empty() => top.retracts.extend(r_eff),
                        _ => out.push(WriteBatch::retract(r_eff)),
                    }
                }
                (false, false) => {
                    // Mixed batch: a barrier (retracts run before inserts
                    // within it, so it cannot fuse either way).
                    top_new.clear();
                    out.push(WriteBatch {
                        inserts: i_eff,
                        retracts: r_eff,
                    });
                }
            }
        }
        out
    }
}

/// How a batch was absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchMode {
    /// No effective change: the result is the previous chase.
    Noop,
    /// Inserts absorbed by delta seeding plus match-trail replay.
    SeededInsert,
    /// Retractions absorbed by truncating and replaying the fact log
    /// (empty delete/rederive cone).
    TruncatedRetract,
    /// Fallback: cold re-chase of the adjusted base.
    Rechase,
}

/// Per-batch accounting, returned alongside the updated chase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchStats {
    /// Which maintenance path absorbed the batch.
    pub mode: BatchMode,
    /// Derived facts carried over from the previous chase without
    /// re-running their joins (fast paths only).
    pub replayed_facts: u64,
    /// Derived facts (re)computed by enumeration: new cone facts on the
    /// insert path, every derived fact on a re-chase.
    pub rederived_facts: u64,
    /// Derived facts invalidated by retraction (the DRed cone).
    pub cone_facts: u64,
}

impl BatchStats {
    fn of(mode: BatchMode) -> BatchStats {
        BatchStats {
            mode,
            replayed_facts: 0,
            rederived_facts: 0,
            cone_facts: 0,
        }
    }
}

/// Cumulative counters over a sequence of batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Batches applied.
    pub batches: u64,
    /// Batches absorbed as [`BatchMode::Noop`].
    pub noops: u64,
    /// Batches absorbed as [`BatchMode::SeededInsert`].
    pub seeded_inserts: u64,
    /// Batches absorbed as [`BatchMode::TruncatedRetract`].
    pub truncated_retracts: u64,
    /// Batches that fell back to [`BatchMode::Rechase`].
    pub rechases: u64,
    /// Total derived facts replayed without enumeration.
    pub replayed_facts: u64,
    /// Total derived facts (re)computed by enumeration.
    pub rederived_facts: u64,
    /// Total derived facts invalidated by retraction cones.
    pub cone_facts: u64,
}

impl IncrementalStats {
    fn absorb(&mut self, b: &BatchStats) {
        self.batches += 1;
        match b.mode {
            BatchMode::Noop => self.noops += 1,
            BatchMode::SeededInsert => self.seeded_inserts += 1,
            BatchMode::TruncatedRetract => self.truncated_retracts += 1,
            BatchMode::Rechase => self.rechases += 1,
        }
        self.replayed_facts += b.replayed_facts;
        self.rederived_facts += b.rederived_facts;
        self.cone_facts += b.cone_facts;
    }
}

/// A chase kept up to date across a sequence of [`WriteBatch`]es.
#[derive(Clone, Debug)]
pub struct IncrementalChase {
    chase: Chase,
    stats: IncrementalStats,
}

impl IncrementalChase {
    /// Cold-chases `db` and wraps the result for incremental maintenance.
    pub fn new(theory: &Theory, db: &Instance, budget: ChaseBudget, exec: &Executor) -> Self {
        IncrementalChase::from_chase(chase_with(theory, db, budget, exec))
    }

    /// Wraps an existing chase (it should be terminated and built by the
    /// semi-naive engine for the fast paths to engage).
    pub fn from_chase(chase: Chase) -> Self {
        IncrementalChase {
            chase,
            stats: IncrementalStats::default(),
        }
    }

    /// The current chase state.
    pub fn chase(&self) -> &Chase {
        &self.chase
    }

    /// The current chased instance.
    pub fn instance(&self) -> &Instance {
        &self.chase.instance
    }

    /// Cumulative maintenance counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Absorbs one write batch; the new state is byte-identical to a cold
    /// chase of the adjusted base under the same budget.
    pub fn apply(
        &mut self,
        theory: &Theory,
        batch: &WriteBatch,
        budget: ChaseBudget,
        exec: &Executor,
    ) -> BatchStats {
        let (next, bs) = chase_incremental(theory, &self.chase, batch, budget, exec);
        self.chase = next;
        self.stats.absorb(&bs);
        bs
    }

    /// Absorbs a batch sequence, first coalescing it against the current
    /// base with [`WriteBatch::coalesce`]. The final state is byte-identical
    /// to [`IncrementalChase::apply`]-ing each batch in turn, usually with
    /// fewer dispatches (one [`BatchStats`] per dispatched batch).
    pub fn apply_all(
        &mut self,
        theory: &Theory,
        batches: &[WriteBatch],
        budget: ChaseBudget,
        exec: &Executor,
    ) -> Vec<BatchStats> {
        let base_len = self.chase.round_snapshots[0].facts();
        let coalesced = WriteBatch::coalesce(batches, |fx| {
            self.chase
                .instance
                .index_of(fx)
                .is_some_and(|i| i < base_len)
        });
        coalesced
            .iter()
            .map(|b| self.apply(theory, b, budget, exec))
            .collect()
    }
}

/// Applies one batch of base-fact writes to a finished chase. The returned
/// chase is byte-identical (facts, `round_of`, provenance, snapshots,
/// shared stats counters) to `chase_with` on the adjusted base with the
/// same `budget` — which must be the budget the previous chase was built
/// with for the fast paths to preserve that contract.
pub fn chase_incremental(
    theory: &Theory,
    prev: &Chase,
    batch: &WriteBatch,
    budget: ChaseBudget,
    exec: &Executor,
) -> (Chase, BatchStats) {
    let base_len = prev.round_snapshots[0].facts();
    let retract_set: HashSet<&Fact> = batch.retracts.iter().collect();
    let mut retracted_idx: Vec<FactIdx> = Vec::new();
    let mut surviving: Vec<Fact> = Vec::new();
    let mut present: HashSet<Fact> = HashSet::new();
    for i in 0..base_len {
        let f = prev.instance.fact(i).to_fact();
        if retract_set.contains(&f) {
            retracted_idx.push(i);
        } else {
            present.insert(f.clone());
            surviving.push(f);
        }
    }
    let mut inserts: Vec<Fact> = Vec::new();
    for f in &batch.inserts {
        if present.insert(f.clone()) {
            inserts.push(f.clone());
        }
    }
    if retracted_idx.is_empty() && inserts.is_empty() {
        return (prev.clone(), BatchStats::of(BatchMode::Noop));
    }
    // The fast paths replay recorded first derivations, so they need a
    // terminated, normal-mode (not `chase_all`) previous run.
    let fast_ok = prev.terminated() && prev.all_derivations.iter().all(|d| d.is_empty());
    if fast_ok && retracted_idx.is_empty() {
        if let Some(res) = seeded_insert(theory, prev, &inserts, budget, exec) {
            return res;
        }
    }
    if fast_ok && inserts.is_empty() {
        if let Some(chase) = truncate_retract(theory, prev, &retracted_idx, budget, exec) {
            let replayed = (chase.instance.len() - chase.round_snapshots[0].facts()) as u64;
            return (
                chase,
                BatchStats {
                    replayed_facts: replayed,
                    ..BatchStats::of(BatchMode::TruncatedRetract)
                },
            );
        }
    }
    // General fallback: delete the cone (implicitly) and rederive all
    // survivors by a cold chase of the adjusted base.
    let cone = cone_facts(prev, &retracted_idx);
    let mut db = Instance::new();
    for f in surviving.into_iter().chain(inserts) {
        db.insert(f);
    }
    let base_n = db.len();
    let chase = chase_with(theory, &db, budget, exec);
    let rederived = (chase.instance.len() - base_n) as u64;
    (
        chase,
        BatchStats {
            mode: BatchMode::Rechase,
            replayed_facts: 0,
            rederived_facts: rederived,
            cone_facts: cone,
        },
    )
}

/// The size of the delete/rederive cone: derived facts whose first
/// derivations transitively reference a retracted base fact. Trails only
/// point backwards, so one forward sweep suffices.
fn cone_facts(prev: &Chase, retracted: &[FactIdx]) -> u64 {
    if retracted.is_empty() {
        return 0;
    }
    let mut dead = vec![false; prev.instance.len()];
    for &i in retracted {
        dead[i] = true;
    }
    let mut n = 0u64;
    for i in 0..prev.instance.len() {
        if dead[i] {
            continue;
        }
        if let Some(d) = prev.derivations[i].as_ref() {
            if d.trigger.iter().any(|&t| dead[t]) {
                dead[i] = true;
                n += 1;
            }
        }
    }
    n
}

/// Pure-retraction fast path: when the cone is empty and nothing a
/// retracted fact carried can change (no rederivation, no term whose first
/// occurrence or first round moves, no vanished ground-`dom` guard), the
/// surviving fact log replays verbatim — every recorded winner still wins
/// at the same round, so the rebuild is byte-identical to a cold chase of
/// the shrunken base. Returns `None` when any invariant fails.
fn truncate_retract(
    theory: &Theory,
    prev: &Chase,
    retracted_idx: &[FactIdx],
    budget: ChaseBudget,
    exec: &Executor,
) -> Option<Chase> {
    let base_len = prev.round_snapshots[0].facts();
    let prev_len = prev.instance.len();
    // A different budget could truncate the cold run where the previous one
    // kept going (or vice versa); only replay under a budget the previous
    // shape fits strictly inside.
    if prev.rounds >= budget.max_rounds || prev_len > budget.max_facts {
        return None;
    }
    // (1) No retracted fact may be rederivable. Conservative syntactic
    // check: bail if it unifies with any rule head atom.
    let mut scratch = Vec::new();
    for &i in retracted_idx {
        let f = prev.instance.fact(i);
        for rule in theory.rules() {
            for atom in rule.head() {
                if atom.pred == f.pred {
                    scratch.clear();
                    if unify_atom_fact(atom, f, &mut scratch) {
                        return None;
                    }
                }
            }
        }
    }
    let retracted: HashSet<FactIdx> = retracted_idx.iter().copied().collect();
    // (2) Every term occurring in a retracted fact must either keep its
    // first occurrence (an earlier surviving fact introduced it) or vanish
    // entirely — a moved first occurrence changes domain order and first
    // rounds, which the replay cannot absorb.
    let mut first_fact: HashMap<TermId, FactIdx> = HashMap::new();
    let mut total_occ: HashMap<TermId, u32> = HashMap::new();
    let mut retract_occ: HashMap<TermId, u32> = HashMap::new();
    for i in 0..prev_len {
        let f = prev.instance.fact(i);
        for &t in f.args {
            first_fact.entry(t).or_insert(i);
            *total_occ.entry(t).or_insert(0) += 1;
            if retracted.contains(&i) {
                *retract_occ.entry(t).or_insert(0) += 1;
            }
        }
    }
    let vanishes = |t: TermId| -> bool {
        retracted.contains(&first_fact[&t]) && retract_occ.get(&t) == total_occ.get(&t)
    };
    for (&t, &rc) in &retract_occ {
        if retracted.contains(&first_fact[&t]) && total_occ[&t] > rc {
            return None;
        }
    }
    // (3) A vanished term must not be a ground `dom` guard of the theory:
    // the old run fired that rule, the cold run would not.
    for rule in theory.rules() {
        for atom in rule.body() {
            if atom.pred.is_dom() {
                if let QTerm::Const(c) = atom.args[0] {
                    let c = TermId::constant(c);
                    if first_fact.contains_key(&c) && vanishes(c) {
                        return None;
                    }
                }
            }
        }
    }
    // (3b) A vanished term may have been the binding of a pure dom-var
    // sweep (a `dom` variable bound by no regular body atom). Such sweeps
    // leave no trace in the recorded trigger, so the replay cannot tell
    // whether the event still fires — or still fires in the same round —
    // without the term (e.g. `s, dom(Y) -> q.` after the last domain
    // term is retracted). Bail and re-chase.
    if retract_occ.keys().any(|&t| vanishes(t)) {
        for rule in theory.rules() {
            let regular_vars: HashSet<Var> = rule
                .body()
                .iter()
                .filter(|a| !a.pred.is_dom())
                .flat_map(|a| a.vars())
                .collect();
            for atom in rule.body() {
                if atom.pred.is_dom() {
                    if let QTerm::Var(v) = atom.args[0] {
                        if !regular_vars.contains(&v) {
                            return None;
                        }
                    }
                }
            }
        }
    }
    // (4) The trigger-closure cone must be empty.
    for i in base_len..prev_len {
        let d = prev.derivations[i].as_ref()?;
        if d.trigger.iter().any(|&t| retracted.contains(&t)) {
            return None;
        }
    }
    // Replay the surviving fact log in order, rebuilding indices, round
    // boundaries and remapped trails.
    let mut inst = Instance::new();
    let mut old_to_new: Vec<Option<FactIdx>> = vec![None; prev_len];
    let mut round_of: Vec<usize> = Vec::new();
    let mut derivations: Vec<Option<Derivation>> = Vec::new();
    let mut round_snapshots = Vec::with_capacity(prev.round_snapshots.len());
    let mut lo = 0;
    for (r, snap) in prev.round_snapshots.iter().enumerate() {
        for i in lo..snap.facts() {
            if retracted.contains(&i) {
                continue;
            }
            let idx = inst
                .insert(prev.instance.fact(i).to_fact())
                .expect("the previous chase holds no duplicates");
            old_to_new[i] = Some(idx);
            round_of.push(r);
            derivations.push(prev.derivations[i].as_ref().map(|d| {
                Derivation {
                    rule: d.rule,
                    trigger: d
                        .trigger
                        .iter()
                        .map(|&t| old_to_new[t].expect("cone is empty, triggers survive"))
                        .collect(),
                    frontier: d.frontier.clone(),
                    round: d.round,
                }
            }));
        }
        lo = snap.facts();
        round_snapshots.push(inst.snapshot());
    }
    let mut stats = prev.stats.clone();
    stats.threads = exec.threads();
    for rs in &mut stats.rounds {
        if rs.round < round_snapshots.len() {
            rs.facts_added =
                round_snapshots[rs.round].facts() - round_snapshots[rs.round - 1].facts();
            rs.terms_added =
                round_snapshots[rs.round].terms() - round_snapshots[rs.round - 1].terms();
        }
    }
    let mem = inst.stats();
    stats.peak_facts = mem.peak_facts;
    stats.bytes_facts = mem.bytes_facts;
    stats.bytes_index = mem.bytes_index;
    stats.bytes_tuples = mem.bytes_tuples;
    let n = inst.len();
    Some(Chase {
        instance: inst,
        round_of,
        rounds: prev.rounds,
        outcome: ChaseOutcome::Fixpoint,
        derivations,
        all_derivations: vec![Vec::new(); n],
        stats,
        round_snapshots,
    })
}

/// Per-rule metadata for firing-round and sort-key computation.
struct RuleMeta {
    /// Variables occurring in some regular (non-`dom`) body atom — their
    /// `dom` checks never enumerate.
    regular_vars: HashSet<Var>,
}

impl RuleMeta {
    fn new(plan: &RulePlan<'_>) -> RuleMeta {
        let body = plan.rule.body();
        let mut regular_vars = HashSet::new();
        for &bi in &plan.regular {
            regular_vars.extend(body[bi].vars());
        }
        RuleMeta { regular_vars }
    }
}

/// The image of frontier variable `v` under an event's frontier vector.
fn frontier_term(plan: &RulePlan<'_>, frontier: &[TermId], v: Var) -> Option<TermId> {
    plan.skolemized
        .frontier
        .iter()
        .position(|u| *u == v)
        .map(|p| frontier[p])
}

/// The cold first round of a term: old terms keep their previous round
/// (guarded by the seeded path's bails), new terms get the round they were
/// created in.
fn term_round(
    t: TermId,
    old: &HashMap<TermId, usize>,
    cold: &HashMap<TermId, usize>,
) -> Option<usize> {
    old.get(&t).or_else(|| cold.get(&t)).copied()
}

/// An event waiting to be applied in some cold round. `Old` triggers are
/// previous-chase fact indices, `W` triggers index the discovery instance.
enum TriggerRef {
    Old(Vec<FactIdx>),
    W(Vec<usize>),
}

struct PendingEvent {
    rule: usize,
    trigger: TriggerRef,
    frontier: Vec<TermId>,
}

/// An event found by the cone discovery pass, on discovery-instance
/// indices.
struct Discovered {
    rule: usize,
    trigger_w: Vec<usize>,
    frontier: Vec<TermId>,
}

/// One candidate canonical path through a rule body, as found by
/// [`sort_key`]: (path class, index within the class, forced element,
/// skipped body-atom index, forced variable, join plan for the remaining
/// atoms).
type PathChoice<'a> = (u64, u64, u64, usize, Option<Var>, &'a JoinPlan);

/// An event resolved to cold indices and staged for one round: (canonical
/// sort key, rule index, trigger facts, frontier terms).
type StagedEvent = (Vec<u64>, usize, Vec<FactIdx>, Vec<TermId>);

/// Reconstructs the canonical enumeration key of an event within its
/// round: the cold engine visits work as (rule, path class, path index,
/// forced element, then the remaining join in the plan's static execution
/// order, each regular atom contributing its fact index and each unbound
/// frontier `dom` sweep its domain rank). Sorting events by this key
/// replays the cold first-staging order without re-running any join.
/// Returns `None` if no path is consistent (the caller bails to a
/// re-chase).
#[allow(clippy::too_many_arguments)]
fn sort_key(
    plan: &RulePlan<'_>,
    meta: &RuleMeta,
    ridx: usize,
    trigger: &[FactIdx],
    frontier: &[TermId],
    round: usize,
    round_of: &[usize],
    term_rank: &HashMap<TermId, u32>,
    old_tr: &HashMap<TermId, usize>,
    cold_tr: &HashMap<TermId, usize>,
    terms_at: &[usize],
) -> Option<Vec<u64>> {
    let body = plan.rule.body();
    // Canonical path: first regular atom whose trigger fact is in the
    // delta; else first dom-var atom whose (first) sweep value is; else
    // first ground-dom atom whose constant is; else an empty body in
    // round 1.
    let mut found: Option<PathChoice<'_>> = None;
    for (k, &fi) in trigger.iter().enumerate() {
        if round_of[fi] == round - 1 {
            found = Some((
                0,
                k as u64,
                fi as u64,
                plan.regular[k],
                None,
                &plan.by_regular[k],
            ));
            break;
        }
    }
    if found.is_none() {
        for (k, &(bi, v)) in plan.dom_var.iter().enumerate() {
            if meta.regular_vars.contains(&v) {
                // Bound by a trigger fact; were its term new, that fact
                // would be delta and the regular path would have won.
                continue;
            }
            let hit = match frontier_term(plan, frontier, v) {
                Some(t) => {
                    if term_round(t, old_tr, cold_tr)? == round - 1 {
                        Some(u64::from(*term_rank.get(&t)?))
                    } else {
                        None
                    }
                }
                // Unconstrained sweep: any delta term completes the event,
                // so it arrives here iff the round added terms at all, and
                // every event arrives at the first delta term uniformly —
                // the forced component carries no order.
                None => (terms_at.get(round - 1).copied().unwrap_or(0) > 0).then_some(0),
            };
            if let Some(forced) = hit {
                found = Some((1, k as u64, forced, bi, Some(v), &plan.by_dom_var[k]));
                break;
            }
        }
    }
    if found.is_none() {
        for (k, &(bi, c)) in plan.dom_ground.iter().enumerate() {
            if term_round(c, old_tr, cold_tr)? == round - 1 {
                found = Some((2, k as u64, 0, bi, None, &plan.by_dom_ground[k]));
                break;
            }
        }
    }
    if found.is_none() && body.is_empty() && round == 1 {
        return Some(vec![ridx as u64, 3, 0, 0]);
    }
    let (class, k, forced, skipped, forced_var, rest) = found?;
    let mut key = vec![ridx as u64, class, k, forced];
    let mut keyed: HashSet<Var> = HashSet::new();
    if let Some(v) = forced_var {
        keyed.insert(v);
    }
    for &ai in rest.execution_order() {
        // Rest plans omit the forced atom; indices at or past it shift.
        let bi = if ai >= skipped { ai + 1 } else { ai };
        let atom = &body[bi];
        if !atom.pred.is_dom() {
            key.push(trigger[plan.reg_pos[bi].expect("regular atom")] as u64);
        } else if let QTerm::Var(v) = atom.args[0] {
            if meta.regular_vars.contains(&v) || !keyed.insert(v) {
                continue; // a check, not a sweep
            }
            if let Some(t) = frontier_term(plan, frontier, v) {
                key.push(u64::from(*term_rank.get(&t)?));
            }
            // Non-frontier sweeps bind the oldest domain term uniformly:
            // no order contribution.
        }
    }
    Some(key)
}

/// Records one discovery arrival: rebuilds the total trigger from the
/// match trail, drops events whose elements all predate the batch (they
/// fired in the terminated previous run), and dedups multi-path arrivals.
/// `old_env` says whether the rule's trigger-independent elements (ground
/// `dom` constants, non-frontier sweep domains) all existed previously —
/// without it an all-old trigger does not mean the event already fired.
#[allow(clippy::too_many_arguments)]
fn record_arrival(
    plan: &RulePlan<'_>,
    ridx: usize,
    asg: &Assignment,
    trail: &[(usize, usize)],
    skipped: usize,
    forced: Option<(usize, FactIdx)>,
    prev_len: usize,
    old_env: bool,
    old_term_round: &HashMap<TermId, usize>,
    seen: &mut HashSet<(usize, Vec<usize>, Vec<TermId>)>,
    out: &mut Vec<Discovered>,
    triggers: &mut u64,
) {
    *triggers += 1;
    let mut trigger = vec![FactIdx::MAX; plan.regular.len()];
    if let Some((k, fi)) = forced {
        trigger[k] = fi;
    }
    for &(ai, fi) in trail {
        let bi = if ai >= skipped { ai + 1 } else { ai };
        trigger[plan.reg_pos[bi].expect("trail entries are regular atoms")] = fi;
    }
    debug_assert!(!trigger.contains(&FactIdx::MAX));
    let frontier: Vec<TermId> = plan
        .skolemized
        .frontier
        .iter()
        .map(|v| asg[v.index()].expect("bound body var"))
        .collect();
    if old_env
        && trigger.iter().all(|&fi| fi < prev_len)
        && frontier.iter().all(|t| old_term_round.contains_key(t))
    {
        return;
    }
    if seen.insert((ridx, trigger.clone(), frontier.clone())) {
        out.push(Discovered {
            rule: ridx,
            trigger_w: trigger,
            frontier,
        });
    }
}

/// Semi-naive discovery over the cone delta: every event using at least
/// one cone fact (forced per regular atom via the per-predicate delta
/// index) or cone term (forced per dom atom) is found exactly when its
/// newest cone element appears — the rest of its body joins the full
/// working instance, which holds everything that exists by then.
#[allow(clippy::too_many_arguments)]
fn discover(
    rule_plans: &[RulePlan<'_>],
    metas: &[RuleMeta],
    w: &Instance,
    delta_facts: &[usize],
    delta_terms: &[TermId],
    prev_len: usize,
    old_term_round: &HashMap<TermId, usize>,
    seen: &mut HashSet<(usize, Vec<usize>, Vec<TermId>)>,
    counters: &mut MatchCounters,
    triggers: &mut u64,
    dom_sweeps: &mut u64,
) -> Vec<Discovered> {
    let mut out = Vec::new();
    if delta_facts.is_empty() && delta_terms.is_empty() {
        return out;
    }
    let mut delta_by_pred: HashMap<Pred, Vec<usize>> = HashMap::new();
    for &wi in delta_facts {
        delta_by_pred.entry(w.fact(wi).pred).or_default().push(wi);
    }
    let delta_term_set: HashSet<TermId> = delta_terms.iter().copied().collect();
    let prev_dom_nonempty = !old_term_round.is_empty();
    for (ridx, plan) in rule_plans.iter().enumerate() {
        let body = plan.rule.body();
        // Could this rule's trigger-independent elements all fire in prev?
        let old_env = plan
            .dom_ground
            .iter()
            .all(|(_, c)| old_term_round.contains_key(c))
            && (prev_dom_nonempty
                || plan.dom_var.iter().all(|&(_, v)| {
                    metas[ridx].regular_vars.contains(&v) || plan.skolemized.frontier.contains(&v)
                }));
        for (k, &bi) in plan.regular.iter().enumerate() {
            let atom = &body[bi];
            let Some(idxs) = delta_by_pred.get(&atom.pred) else {
                continue;
            };
            let rest = &plan.by_regular[k];
            let mut fixed = Vec::new();
            for &wi in idxs {
                counters.candidates += 1;
                fixed.clear();
                if !unify_atom_fact(atom, w.fact(wi), &mut fixed) {
                    continue;
                }
                rest.for_each_match_with_facts(w, &fixed, counters, |asg, trail| {
                    record_arrival(
                        plan,
                        ridx,
                        asg,
                        trail,
                        bi,
                        Some((k, wi)),
                        prev_len,
                        old_env,
                        old_term_round,
                        seen,
                        &mut out,
                        triggers,
                    );
                    true
                });
            }
        }
        for (k, &(bi, v)) in plan.dom_var.iter().enumerate() {
            let rest = &plan.by_dom_var[k];
            for &t in delta_terms {
                *dom_sweeps += 1;
                rest.for_each_match_with_facts(w, &[(v, t)], counters, |asg, trail| {
                    record_arrival(
                        plan,
                        ridx,
                        asg,
                        trail,
                        bi,
                        None,
                        prev_len,
                        old_env,
                        old_term_round,
                        seen,
                        &mut out,
                        triggers,
                    );
                    true
                });
            }
        }
        for (k, &(bi, c)) in plan.dom_ground.iter().enumerate() {
            if !delta_term_set.contains(&c) {
                continue;
            }
            let rest = &plan.by_dom_ground[k];
            rest.for_each_match_with_facts(w, &[], counters, |asg, trail| {
                record_arrival(
                    plan,
                    ridx,
                    asg,
                    trail,
                    bi,
                    None,
                    prev_len,
                    old_env,
                    old_term_round,
                    seen,
                    &mut out,
                    triggers,
                );
                true
            });
        }
    }
    out
}

/// Pure-insert fast path. Replays the previous run's events at their
/// recorded rounds and interleaves cone events discovered by semi-naive
/// joins seeded with only the batch, producing the cold chase of
/// `prev base ++ inserts` without enumerating any old-only trigger.
/// Returns `None` on any invariant violation (the caller re-chases).
fn seeded_insert(
    theory: &Theory,
    prev: &Chase,
    inserts: &[Fact],
    budget: ChaseBudget,
    exec: &Executor,
) -> Option<(Chase, BatchStats)> {
    let rule_plans = plans(theory);
    let prev_len = prev.instance.len();
    let base_len = prev.round_snapshots[0].facts();
    let old_term_round = prev.first_round_of_terms();

    // Bails at the door: an insert that duplicates a derived fact would
    // move that fact into round 0; an insert mentioning a term the old
    // chase invented later would shift the domain clock.
    for f in inserts {
        if prev.instance.index_of(f).is_some() {
            return None;
        }
        if f.args
            .iter()
            .any(|t| old_term_round.get(t).is_some_and(|&r| r > 0))
        {
            return None;
        }
    }
    // Every derived fact needs a recorded trail to replay.
    if prev.derivations[base_len..].iter().any(|d| d.is_none()) {
        return None;
    }

    let metas: Vec<RuleMeta> = rule_plans.iter().map(RuleMeta::new).collect();

    // Group the previous run's derived facts into events: facts produced
    // by one rule application occupy consecutive indices and share one
    // derivation.
    let mut old_events: Vec<Vec<PendingEvent>> = Vec::new();
    old_events.resize_with(prev.rounds + 1, Vec::new);
    {
        let mut last: Option<&Derivation> = None;
        for i in base_len..prev_len {
            let d = prev.derivations[i].as_ref().expect("checked above");
            if last != Some(d) {
                if d.round == 0 || d.round > prev.rounds {
                    return None;
                }
                old_events[d.round].push(PendingEvent {
                    rule: d.rule,
                    trigger: TriggerRef::Old(d.trigger.clone()),
                    frontier: d.frontier.clone(),
                });
                last = Some(d);
            }
        }
    }

    // The cold state under construction.
    let mut inst = Instance::new();
    let mut round_of: Vec<usize> = Vec::new();
    let mut derivations: Vec<Option<Derivation>> = Vec::new();
    let mut old_to_cold: Vec<Option<FactIdx>> = vec![None; prev_len];
    let mut term_rank: HashMap<TermId, u32> = HashMap::new();
    let mut cold_term_round: HashMap<TermId, usize> = HashMap::new();

    for (i, slot) in old_to_cold.iter_mut().enumerate().take(base_len) {
        let idx = inst
            .insert(prev.instance.fact(i).to_fact())
            .expect("the previous chase holds no duplicates");
        *slot = Some(idx);
        round_of.push(0);
        derivations.push(None);
    }
    // The working instance W = prev ++ batch ++ (cone facts as they are
    // derived): discovery joins run against it. Extra W facts carry their
    // cold index and round.
    let mut w = prev.instance.clone();
    let mut w_extra: Vec<(FactIdx, usize)> = Vec::new();
    let mut delta_facts: Vec<usize> = Vec::new();
    for f in inserts {
        let idx = inst.insert(f.clone()).expect("effective inserts are new");
        round_of.push(0);
        derivations.push(None);
        let wi = w.insert(f.clone()).expect("not in prev");
        debug_assert_eq!(wi, prev_len + w_extra.len());
        w_extra.push((idx, 0));
        delta_facts.push(wi);
    }
    let mut delta_terms: Vec<TermId> = Vec::new();
    for (r, &t) in inst.domain().iter().enumerate() {
        term_rank.insert(t, r as u32);
        cold_term_round.insert(t, 0);
        if !old_term_round.contains_key(&t) {
            delta_terms.push(t);
        }
    }
    let mut ranked = inst.domain_len();
    let mut min_term_round = if ranked > 0 { Some(0) } else { None };
    // Cold terms first appearing at each round; `terms_at[r] > 0` ⇔ the
    // round-`r+1` delta contains terms, which drives dom-sweep paths.
    let mut terms_at: Vec<usize> = vec![ranked];

    let mut round_snapshots = vec![inst.snapshot()];
    let mut stats = ChaseStats {
        threads: exec.threads(),
        ..ChaseStats::default()
    };
    let mut outcome = ChaseOutcome::Exhausted;
    let mut rounds = 0usize;
    let mut seen: HashSet<(usize, Vec<usize>, Vec<TermId>)> = HashSet::new();
    let mut buckets: Vec<Vec<PendingEvent>> = Vec::new();
    buckets.resize_with(budget.max_rounds + 2, Vec::new);
    let mut replayed = 0u64;
    let mut rederived = 0u64;

    let w_round = |wi: usize, w_extra: &[(FactIdx, usize)]| -> usize {
        if wi < prev_len {
            prev.round_of[wi]
        } else {
            w_extra[wi - prev_len].1
        }
    };

    for round in 1..=budget.max_rounds {
        let t0 = Instant::now();
        let mut counters = MatchCounters::default();
        let mut disc_triggers = 0u64;
        let mut dom_sweeps = 0u64;
        let discovered = discover(
            &rule_plans,
            &metas,
            &w,
            &delta_facts,
            &delta_terms,
            prev_len,
            &old_term_round,
            &mut seen,
            &mut counters,
            &mut disc_triggers,
            &mut dom_sweeps,
        );
        // Schedule each cone event into the round the cold engine fires
        // it: one past the newest of its body elements.
        for ev in discovered {
            let plan = &rule_plans[ev.rule];
            let meta = &metas[ev.rule];
            let mut m = 0usize;
            for &wi in &ev.trigger_w {
                m = m.max(w_round(wi, &w_extra));
            }
            for &(_, v) in &plan.dom_var {
                if meta.regular_vars.contains(&v) {
                    continue;
                }
                match frontier_term(plan, &ev.frontier, v) {
                    Some(t) => m = m.max(term_round(t, &old_term_round, &cold_term_round)?),
                    None => m = m.max(min_term_round?),
                }
            }
            for &(_, c) in &plan.dom_ground {
                m = m.max(term_round(c, &old_term_round, &cold_term_round)?);
            }
            let fire = m + 1;
            debug_assert!(fire >= round, "cone elements are at most one round old");
            if fire < buckets.len() {
                buckets[fire].push(PendingEvent {
                    rule: ev.rule,
                    trigger: TriggerRef::W(ev.trigger_w),
                    frontier: ev.frontier,
                });
            }
        }
        let enum_wall = t0.elapsed();
        let t1 = Instant::now();

        // Resolve this round's events (replayed + cone) to cold indices
        // and order them as the cold engine would enumerate them.
        let olds = if round < old_events.len() {
            std::mem::take(&mut old_events[round])
        } else {
            Vec::new()
        };
        let mut todo: Vec<StagedEvent> = Vec::new();
        for ev in olds.into_iter().chain(std::mem::take(&mut buckets[round])) {
            let trigger: Vec<FactIdx> = match &ev.trigger {
                TriggerRef::Old(t) => t
                    .iter()
                    .map(|&i| old_to_cold[i].expect("older rounds are fully replayed"))
                    .collect(),
                TriggerRef::W(t) => t
                    .iter()
                    .map(|&wi| {
                        if wi < prev_len {
                            old_to_cold[wi].expect("older rounds are fully replayed")
                        } else {
                            w_extra[wi - prev_len].0
                        }
                    })
                    .collect(),
            };
            let key = sort_key(
                &rule_plans[ev.rule],
                &metas[ev.rule],
                ev.rule,
                &trigger,
                &ev.frontier,
                round,
                &round_of,
                &term_rank,
                &old_term_round,
                &cold_term_round,
                &terms_at,
            )?;
            todo.push((key, ev.rule, trigger, ev.frontier));
        }
        todo.sort_by(|a, b| a.0.cmp(&b.0));

        let facts_before = inst.len();
        let terms_before = inst.domain_len();
        let mut next_delta_facts: Vec<usize> = Vec::new();
        for (_key, ridx, trigger, frontier) in todo {
            let plan = &rule_plans[ridx];
            let lookup = |v: Var| {
                frontier_term(plan, &frontier, v).expect("non-existential head vars are frontier")
            };
            let facts = plan
                .skolemized
                .apply_with_frontier(plan.rule, &frontier, lookup);
            let mut deriv: Option<Derivation> = None;
            for fact in facts {
                if inst.contains(&fact) {
                    continue;
                }
                let old_idx = prev.instance.index_of(&fact);
                if let Some(oi) = old_idx {
                    // A previous-run fact staged at a different round
                    // would cascade round changes: bail.
                    if prev.round_of[oi] != round {
                        return None;
                    }
                }
                let d = deriv
                    .get_or_insert_with(|| Derivation {
                        rule: ridx,
                        trigger: trigger.clone(),
                        frontier: frontier.clone(),
                        round,
                    })
                    .clone();
                let idx = inst.insert(fact.clone()).expect("checked fresh");
                round_of.push(round);
                derivations.push(Some(d));
                match old_idx {
                    Some(oi) => {
                        old_to_cold[oi] = Some(idx);
                        replayed += 1;
                    }
                    None => {
                        // A genuinely new fact: it joins the cone delta.
                        let wi = w.insert(fact).expect("absent from prev");
                        debug_assert_eq!(wi, prev_len + w_extra.len());
                        w_extra.push((idx, round));
                        next_delta_facts.push(wi);
                        rederived += 1;
                    }
                }
            }
        }
        // Rank the round's new terms; an old-chase term may only re-enter
        // the domain at its original round.
        let mut next_delta_terms: Vec<TermId> = Vec::new();
        for (r, &t) in inst.domain().iter().enumerate().skip(ranked) {
            term_rank.insert(t, r as u32);
            cold_term_round.insert(t, round);
            match old_term_round.get(&t) {
                Some(&orig) if orig != round => return None,
                Some(_) => {}
                None => next_delta_terms.push(t),
            }
            min_term_round.get_or_insert(round);
        }
        ranked = inst.domain_len();
        terms_at.push(inst.domain_len() - terms_before);

        let facts_added = inst.len() - facts_before;
        let merge_wall = t1.elapsed();
        if facts_added == 0 {
            stats.rounds.push(RoundStats {
                round,
                triggers: disc_triggers,
                candidates: counters.candidates,
                dom_sweeps,
                dom_pruned: 0,
                facts_added: 0,
                terms_added: 0,
                enum_wall,
                merge_wall,
                wall: t0.elapsed(),
            });
            outcome = ChaseOutcome::Fixpoint;
            debug_assert!(buckets.iter().all(|b| b.is_empty()));
            debug_assert!(old_events.iter().all(|e| e.is_empty()));
            break;
        }
        stats.rounds.push(RoundStats {
            round,
            triggers: disc_triggers,
            candidates: counters.candidates,
            dom_sweeps,
            dom_pruned: 0,
            facts_added,
            terms_added: inst.domain_len() - terms_before,
            enum_wall,
            merge_wall,
            wall: t0.elapsed(),
        });
        rounds = round;
        round_snapshots.push(inst.snapshot());
        delta_facts = next_delta_facts;
        delta_terms = next_delta_terms;
        if inst.len() > budget.max_facts {
            break;
        }
    }

    let mem = inst.stats();
    stats.peak_facts = mem.peak_facts;
    stats.bytes_facts = mem.bytes_facts;
    stats.bytes_index = mem.bytes_index;
    stats.bytes_tuples = mem.bytes_tuples;
    let n = inst.len();
    Some((
        Chase {
            instance: inst,
            round_of,
            rounds,
            outcome,
            derivations,
            all_derivations: vec![Vec::new(); n],
            stats,
            round_snapshots,
        },
        BatchStats {
            mode: BatchMode::SeededInsert,
            replayed_facts: replayed,
            rederived_facts: rederived,
            cone_facts: 0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chase;
    use qr_syntax::{parse_instance, parse_theory, Symbol};
    use qr_testkit::Rng;

    fn f(pred: &str, args: &[&str]) -> Fact {
        Fact::new(
            qr_syntax::Pred::new(pred, args.len() as u32),
            args.iter()
                .map(|a| TermId::constant(Symbol::intern(a)))
                .collect::<Vec<_>>(),
        )
    }

    /// The identity contract: everything except enumeration-work counters
    /// (triggers/candidates/sweeps — skipping that work is the point) and
    /// wall times.
    fn assert_incr_matches_cold(incr: &Chase, cold: &Chase) {
        assert_eq!(incr.instance, cold.instance);
        assert_eq!(incr.round_of, cold.round_of);
        assert_eq!(incr.rounds, cold.rounds);
        assert_eq!(incr.outcome, cold.outcome);
        assert_eq!(incr.derivations, cold.derivations);
        assert_eq!(incr.all_derivations, cold.all_derivations);
        assert_eq!(incr.round_snapshots.len(), cold.round_snapshots.len());
        for (a, b) in incr.round_snapshots.iter().zip(&cold.round_snapshots) {
            assert_eq!(a.facts(), b.facts());
            assert_eq!(a.terms(), b.terms());
        }
        assert_eq!(incr.stats.threads, cold.stats.threads);
        assert_eq!(incr.stats.peak_facts, cold.stats.peak_facts);
        assert_eq!(incr.stats.bytes_facts, cold.stats.bytes_facts);
        assert_eq!(incr.stats.bytes_index, cold.stats.bytes_index);
        assert_eq!(incr.stats.bytes_tuples, cold.stats.bytes_tuples);
        assert_eq!(incr.stats.rounds.len(), cold.stats.rounds.len());
        for (ra, rb) in incr.stats.rounds.iter().zip(&cold.stats.rounds) {
            assert_eq!(ra.round, rb.round);
            assert_eq!(ra.facts_added, rb.facts_added, "round {}", ra.round);
            assert_eq!(ra.terms_added, rb.terms_added, "round {}", ra.round);
        }
    }

    /// Mirrors `chase_incremental`'s base semantics on a shadow fact list:
    /// retract first, then append the inserts that are not already present.
    fn apply_shadow(base: &mut Vec<Fact>, batch: &WriteBatch) {
        base.retain(|x| !batch.retracts.contains(x));
        for fx in &batch.inserts {
            if !base.contains(fx) {
                base.push(fx.clone());
            }
        }
    }

    fn cold_of(theory: &Theory, base: &[Fact], budget: ChaseBudget, exec: &Executor) -> Chase {
        let mut db = Instance::new();
        for fx in base {
            db.insert(fx.clone());
        }
        chase_with(theory, &db, budget, exec)
    }

    #[test]
    fn tc_insert_new_nodes_takes_fast_path() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let prev = chase_with(&t, &d, budget, &exec);
        let batch = WriteBatch::insert([f("e", &["d", "x1"]), f("e", &["x1", "x2"])]);
        let (incr, bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
        assert_eq!(bs.mode, BatchMode::SeededInsert);
        assert!(bs.replayed_facts > 0);
        assert!(bs.rederived_facts > 0);
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        apply_shadow(&mut base, &batch);
        assert_incr_matches_cold(&incr, &cold_of(&t, &base, budget, &exec));
    }

    #[test]
    fn insert_duplicate_of_derived_falls_back() {
        // e(a,c) was derived at round 1; inserting it as a base fact moves
        // it to round 0, which the fast path refuses to absorb.
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let prev = chase_with(&t, &d, budget, &exec);
        let batch = WriteBatch::insert([f("e", &["a", "c"])]);
        let (incr, bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
        assert_eq!(bs.mode, BatchMode::Rechase);
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        apply_shadow(&mut base, &batch);
        assert_incr_matches_cold(&incr, &cold_of(&t, &base, budget, &exec));
    }

    #[test]
    fn retract_leaf_takes_fast_path() {
        // r/1 heads no rule and r(z) feeds no derivation, and its term
        // vanishes wholly: the fact log replays without it.
        let t = parse_theory("p(X) -> q(X).").unwrap();
        let d = parse_instance("p(a). p(b). r(z).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let prev = chase_with(&t, &d, budget, &exec);
        let batch = WriteBatch::retract([f("r", &["z"])]);
        let (incr, bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
        assert_eq!(bs.mode, BatchMode::TruncatedRetract);
        assert_eq!(bs.replayed_facts, 2); // q(a), q(b)
        assert_eq!(bs.cone_facts, 0);
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        apply_shadow(&mut base, &batch);
        assert_incr_matches_cold(&incr, &cold_of(&t, &base, budget, &exec));
    }

    #[test]
    fn retract_with_cone_falls_back_and_counts_it() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let prev = chase_with(&t, &d, budget, &exec);
        let batch = WriteBatch::retract([f("e", &["b", "c"])]);
        let (incr, bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
        assert_eq!(bs.mode, BatchMode::Rechase);
        // Cone: e(a,c), e(b,d) directly, e(a,d) transitively.
        assert_eq!(bs.cone_facts, 3);
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        apply_shadow(&mut base, &batch);
        assert_incr_matches_cold(&incr, &cold_of(&t, &base, budget, &exec));
    }

    #[test]
    fn existential_insert_fast_path() {
        // Inserting p(c) spawns a fresh labelled null via the skolem
        // chase; the seeded path must mint it at the same rank and round.
        let t = parse_theory("p(X) -> r(X,Z).\nr(X,Y) -> s(Y).").unwrap();
        let d = parse_instance("p(a). p(b).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let prev = chase_with(&t, &d, budget, &exec);
        let batch = WriteBatch::insert([f("p", &["c"])]);
        let (incr, bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
        assert_eq!(bs.mode, BatchMode::SeededInsert);
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        apply_shadow(&mut base, &batch);
        assert_incr_matches_cold(&incr, &cold_of(&t, &base, budget, &exec));
    }

    #[test]
    fn dom_sweep_over_empty_previous_domain() {
        // The previous run had an empty active domain, so `s, dom(Y) -> q`
        // never fired even though its trigger is all-old; the first insert
        // of a term must fire it.
        let t = parse_theory("s, dom(Y) -> q.").unwrap();
        let d = parse_instance("s.").unwrap();
        assert_eq!(d.domain_len(), 0);
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let prev = chase_with(&t, &d, budget, &exec);
        assert!(!prev.instance.contains(&f("q", &[])));
        let batch = WriteBatch::insert([f("r", &["a"])]);
        let (incr, _bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
        assert!(incr.instance.contains(&f("q", &[])));
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        apply_shadow(&mut base, &batch);
        assert_incr_matches_cold(&incr, &cold_of(&t, &base, budget, &exec));
    }

    #[test]
    fn noop_batches() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let prev = chase_with(&t, &d, budget, &exec);
        for batch in [
            WriteBatch::default(),
            WriteBatch::insert([f("e", &["a", "b"])]), // already a base fact
            WriteBatch::retract([f("e", &["q", "q"])]), // never present
        ] {
            let (incr, bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
            assert_eq!(bs.mode, BatchMode::Noop, "{batch:?}");
            assert_incr_matches_cold(&incr, &prev);
        }
        // Retracting a *derived* fact is also a no-op: only base facts are
        // subject to retraction.
        let derived = f("e", &["a", "c"]);
        assert!(prev.instance.contains(&derived));
        let (_, bs) = chase_incremental(&t, &prev, &WriteBatch::retract([derived]), budget, &exec);
        assert_eq!(bs.mode, BatchMode::Noop);
    }

    const PROP_THEORIES: &[&str] = &[
        "e(X,Y), e(Y,Z) -> e(X,Z).",
        "e(X,Y) -> e(Y,X).",
        "p(X) -> r(X,Z).\nr(X,Y) -> s(Y).\ns(X), e(X,Y) -> p(Y).",
        "e(X,Y), dom(Z) -> t(X,Z).",
        "p(X) -> r(X,Z).\nr(X,Y), dom(W) -> q(Y,W).",
    ];

    fn random_fact(rng: &mut Rng, nodes: &[&str]) -> Fact {
        if rng.below(3) == 0 {
            f("p", &[nodes[rng.below(nodes.len())]])
        } else {
            f(
                "e",
                &[nodes[rng.below(nodes.len())], nodes[rng.below(nodes.len())]],
            )
        }
    }

    fn random_batch(rng: &mut Rng, nodes: &[&str], base: &[Fact]) -> WriteBatch {
        let mut batch = WriteBatch::default();
        for _ in 0..rng.below(3) {
            batch.inserts.push(random_fact(rng, nodes));
        }
        for _ in 0..rng.below(2) {
            if !base.is_empty() && rng.bool() {
                batch.retracts.push(base[rng.below(base.len())].clone());
            } else {
                batch.retracts.push(random_fact(rng, nodes));
            }
        }
        batch
    }

    #[test]
    fn random_batch_sequences_match_cold_chase() {
        let nodes = ["a", "b", "c", "d", "g"];
        let budget = ChaseBudget::default();
        qr_testkit::check("incremental_vs_cold", 40, |rng| {
            let t = parse_theory(PROP_THEORIES[rng.below(PROP_THEORIES.len())]).unwrap();
            let exec = Executor::with_threads(*rng.pick(&[1, 2, 4]));
            let mut base: Vec<Fact> = Vec::new();
            for _ in 0..rng.range(1, 5) {
                let fx = random_fact(rng, &nodes);
                if !base.contains(&fx) {
                    base.push(fx);
                }
            }
            let mut incr = {
                let mut db = Instance::new();
                for fx in &base {
                    db.insert(fx.clone());
                }
                IncrementalChase::new(&t, &db, budget, &exec)
            };
            for _ in 0..rng.range(1, 5) {
                let batch = random_batch(rng, &nodes, &base);
                apply_shadow(&mut base, &batch);
                incr.apply(&t, &batch, budget, &exec);
                assert_incr_matches_cold(incr.chase(), &cold_of(&t, &base, budget, &exec));
            }
            let s = incr.stats();
            assert_eq!(
                s.batches,
                s.noops + s.seeded_inserts + s.truncated_retracts + s.rechases
            );
        });
    }

    #[test]
    fn insert_then_retract_roundtrips_to_never_inserted() {
        let nodes = ["a", "b", "c", "d"];
        let budget = ChaseBudget::default();
        qr_testkit::check("insert_retract_roundtrip", 30, |rng| {
            let t = parse_theory(PROP_THEORIES[rng.below(PROP_THEORIES.len())]).unwrap();
            let exec = Executor::with_threads(*rng.pick(&[1, 2, 4]));
            let mut base: Vec<Fact> = Vec::new();
            for _ in 0..rng.range(1, 5) {
                let fx = random_fact(rng, &nodes);
                if !base.contains(&fx) {
                    base.push(fx);
                }
            }
            let mut db = Instance::new();
            for fx in &base {
                db.insert(fx.clone());
            }
            let mut incr = IncrementalChase::new(&t, &db, budget, &exec);
            let never = incr.chase().clone();
            // Insert k fresh facts, then retract exactly those k.
            let mut fresh: Vec<Fact> = Vec::new();
            for _ in 0..rng.range(1, 4) {
                let fx = random_fact(rng, &nodes);
                if !base.contains(&fx) && !fresh.contains(&fx) {
                    fresh.push(fx);
                }
            }
            incr.apply(&t, &WriteBatch::insert(fresh.clone()), budget, &exec);
            incr.apply(&t, &WriteBatch::retract(fresh), budget, &exec);
            assert_incr_matches_cold(incr.chase(), &never);
        });
    }

    #[test]
    fn checkpoint_resume_interop() {
        // Serializing the *base* mid-sequence, cold-chasing the decoded
        // copy, and continuing the batches must land byte-identical to the
        // uninterrupted incremental run.
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).\np(X) -> r(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). p(a).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        let mut live = IncrementalChase::new(&t, &d, budget, &exec);
        let batches = [
            WriteBatch::insert([f("e", &["c", "d1"]), f("p", &["d1"])]),
            WriteBatch::retract([f("p", &["a"])]),
            WriteBatch::insert([f("e", &["d1", "d2"])]),
        ];
        live.apply(&t, &batches[0], budget, &exec);
        apply_shadow(&mut base, &batches[0]);
        // Checkpoint the maintained base, round-trip it, resume.
        let mut base_inst = Instance::new();
        for fx in &base {
            base_inst.insert(fx.clone());
        }
        let decoded = Instance::from_bytes(&base_inst.to_bytes()).unwrap();
        assert_eq!(decoded, base_inst);
        let mut resumed = IncrementalChase::new(&t, &decoded, budget, &exec);
        assert_incr_matches_cold(resumed.chase(), live.chase());
        for batch in &batches[1..] {
            live.apply(&t, batch, budget, &exec);
            resumed.apply(&t, batch, budget, &exec);
            apply_shadow(&mut base, batch);
        }
        assert_incr_matches_cold(resumed.chase(), live.chase());
        assert_incr_matches_cold(live.chase(), &cold_of(&t, &base, budget, &exec));
    }

    #[test]
    fn seeded_insert_skips_old_enumeration_work() {
        // The efficiency claim behind the tentpole: absorbing a batch must
        // enumerate fewer candidates than the cold chase of the final set.
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let mut src = String::new();
        for i in 0..12 {
            src.push_str(&format!("e(n{i},n{}).", i + 1));
        }
        let d = parse_instance(&src).unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let prev = chase_with(&t, &d, budget, &exec);
        let batch = WriteBatch::insert([f("e", &["n12", "n13"])]);
        let (incr, bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
        assert_eq!(bs.mode, BatchMode::SeededInsert);
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        apply_shadow(&mut base, &batch);
        let cold = cold_of(&t, &base, budget, &exec);
        assert_incr_matches_cold(&incr, &cold);
        let work = |c: &Chase| c.stats.rounds.iter().map(|r| r.candidates).sum::<u64>();
        assert!(
            work(&incr) < work(&cold) / 2,
            "incremental candidates {} vs cold {}",
            work(&incr),
            work(&cold)
        );
    }

    #[test]
    fn default_budget_chase_smoke() {
        // `chase` (default executor) and `chase_incremental` agree too.
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c).").unwrap();
        let prev = chase(&t, &d, ChaseBudget::default());
        let exec = Executor::from_env();
        let batch = WriteBatch::insert([f("e", &["c", "d"])]);
        let (incr, _) = chase_incremental(&t, &prev, &batch, ChaseBudget::default(), &exec);
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        apply_shadow(&mut base, &batch);
        assert_incr_matches_cold(&incr, &cold_of(&t, &base, ChaseBudget::default(), &exec));
    }

    #[test]
    fn coalesce_fuses_cancels_and_drops_noops() {
        let in_base = |fx: &Fact| *fx == f("p", &["a"]);
        let batches = vec![
            WriteBatch::insert([f("p", &["b"])]),
            WriteBatch::insert([f("p", &["c"]), f("p", &["a"])]), // p(a) is a no-op
            WriteBatch::retract([f("p", &["c"]), f("p", &["z"])]), // cancels p(c); p(z) is a no-op
            WriteBatch::retract([f("p", &["a"])]),
            WriteBatch {
                inserts: vec![f("q", &["d"])],
                retracts: vec![f("p", &["b"])],
            },
            WriteBatch::insert([f("q", &["d"])]), // no-op after the mixed batch
        ];
        let out = WriteBatch::coalesce(&batches, in_base);
        assert_eq!(
            out,
            vec![
                WriteBatch::insert([f("p", &["b"])]),
                WriteBatch::retract([f("p", &["a"])]),
                WriteBatch {
                    inserts: vec![f("q", &["d"])],
                    retracts: vec![f("p", &["b"])],
                },
            ]
        );
    }

    #[test]
    fn coalesce_cancellation_empties_top_and_fuses_through() {
        // insert p(b); retract p(b), p(a): the insert cancels away entirely
        // and the surviving retract fuses with the preceding retract batch.
        let in_base = |fx: &Fact| *fx == f("p", &["a"]) || *fx == f("p", &["x"]);
        let batches = vec![
            WriteBatch::retract([f("p", &["x"])]),
            WriteBatch::insert([f("p", &["b"])]),
            WriteBatch::retract([f("p", &["b"]), f("p", &["a"])]),
        ];
        let out = WriteBatch::coalesce(&batches, in_base);
        assert_eq!(
            out,
            vec![WriteBatch::retract([f("p", &["x"]), f("p", &["a"])])]
        );
    }

    #[test]
    fn apply_all_dispatches_fewer_batches_to_identical_state() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        let batches = vec![
            WriteBatch::insert([f("e", &["c", "d"])]),
            WriteBatch::insert([f("e", &["d", "x"])]),
            WriteBatch::retract([f("e", &["d", "x"])]), // cancels the insert above
            WriteBatch::insert([f("e", &["d", "e"])]),
        ];
        let mut one_by_one = IncrementalChase::new(&t, &d, budget, &exec);
        for batch in &batches {
            one_by_one.apply(&t, batch, budget, &exec);
        }
        let mut coalesced = IncrementalChase::new(&t, &d, budget, &exec);
        let dispatched = coalesced.apply_all(&t, &batches, budget, &exec);
        assert_eq!(dispatched.len(), 1); // four batches fused into one insert
        assert_eq!(coalesced.stats().batches, 1);
        assert_eq!(one_by_one.stats().batches, 4);
        assert_incr_matches_cold(coalesced.chase(), one_by_one.chase());
        let mut base: Vec<Fact> = d.iter().map(|fr| fr.to_fact()).collect();
        for batch in &batches {
            apply_shadow(&mut base, batch);
        }
        assert_incr_matches_cold(coalesced.chase(), &cold_of(&t, &base, budget, &exec));
    }

    #[test]
    fn random_coalesced_sequences_match_one_by_one() {
        // Property: `apply_all` over a random batch sequence lands on a
        // state byte-identical to applying each batch in turn, and never
        // dispatches more batches than it was given.
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z). p(X) -> q(X).").unwrap();
        let exec = Executor::sequential();
        let budget = ChaseBudget::default();
        qr_testkit::check("coalesce_matches_one_by_one", 40, |rng: &mut Rng| {
            let pool: Vec<Fact> = (0..6)
                .flat_map(|i| {
                    let a = format!("n{i}");
                    let b = format!("n{}", (i + 1) % 6);
                    [f("e", &[&a, &b]), f("p", &[&a])]
                })
                .collect();
            let mut d = Instance::new();
            for fx in &pool {
                if rng.bool() {
                    d.insert(fx.clone());
                }
            }
            let mut batches = Vec::new();
            for _ in 0..rng.range(1, 6) {
                let mut batch = WriteBatch::default();
                for _ in 0..rng.range(0, 4) {
                    let fx = pool[rng.below(pool.len())].clone();
                    if rng.bool() {
                        batch.inserts.push(fx);
                    } else {
                        batch.retracts.push(fx);
                    }
                }
                batches.push(batch);
            }
            let mut one_by_one = IncrementalChase::new(&t, &d, budget, &exec);
            for batch in &batches {
                one_by_one.apply(&t, batch, budget, &exec);
            }
            let mut coalesced = IncrementalChase::new(&t, &d, budget, &exec);
            let dispatched = coalesced.apply_all(&t, &batches, budget, &exec);
            assert!(dispatched.len() <= batches.len());
            assert_incr_matches_cold(coalesced.chase(), one_by_one.chase());
        });
    }
}
