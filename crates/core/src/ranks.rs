//! Ranks for the termination proof of the marked-query process
//! (Definitions 59–62 and Lemma 53, generalized to `K` colours as in
//! Section 12).
//!
//! For an atom `α` of colour `i−1`, its rank `erk_i(α, Q)` is the minimal
//! *cost* of a *hike*: a walk from a marked variable to `α` that may
//! traverse colour-`i` edges ("red") at most once each (in one direction),
//! colour-`i−1` edges ("green") freely, and all other colours freely and
//! for free. The *elevation* starts at `3^{|Q_i|}`, is multiplied (divided)
//! by 3 at each forward (backward) red step, and each green step costs the
//! current elevation. Query ranks `qrk` and set ranks `srk` combine these
//! through multiset orderings; Lemma 53 states that every operation of the
//! process strictly decreases `srk` — which [`rank_decreases`] verifies on
//! concrete runs.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::marked::{Edge, MarkedQuery};

/// A finite multiset of naturals with the Dershowitz–Manna ordering, which
/// for multisets over a totally ordered set coincides with comparing the
/// descending-sorted sequences lexicographically (a proper prefix is
/// smaller).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MultisetNat(Vec<u128>);

impl MultisetNat {
    /// Builds the multiset (sorts descending).
    pub fn new(mut items: Vec<u128>) -> MultisetNat {
        items.sort_unstable_by(|a, b| b.cmp(a));
        MultisetNat(items)
    }

    /// The elements, descending.
    pub fn items(&self) -> &[u128] {
        &self.0
    }
}

impl PartialOrd for MultisetNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MultisetNat {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// The rank `qrk(Q)` of Definition 54 / Section 12: for each colour
/// `i = K … 2`, the pair `(|Q_i|, {erk_i(α) : α of colour i−1})`, compared
/// lexicographically.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct QueryRank(Vec<(usize, MultisetNat)>);

impl QueryRank {
    /// The per-colour components, highest colour first.
    pub fn components(&self) -> &[(usize, MultisetNat)] {
        &self.0
    }
}

/// The rank `erk_i(α, Q)` for an edge `α` of colour `red_color − 1`
/// (Definition 62). Returns `None` if no hike reaches `α`.
pub fn erk(q: &MarkedQuery, red_color: u8, alpha: Edge) -> Option<u128> {
    let (alpha_c, a_from, a_to) = alpha;
    assert_eq!(alpha_c, red_color - 1, "erk_i ranks atoms of colour i−1");
    let reds: Vec<Edge> = q
        .edges()
        .iter()
        .copied()
        .filter(|(c, _, _)| *c == red_color)
        .collect();
    let n_red = reds.len();
    assert!(n_red <= 20, "rank computation is exponential in |Q_red|");
    let base_exp = n_red as i32;

    // Dijkstra over states (vertex, red-usage mask, elevation exponent).
    // Elevation = 3^exp; exp stays within [0, 2·n_red] by condition (⋆).
    type State = (u32, u32, i32);
    let mut dist: HashMap<State, u128> = HashMap::new();
    let mut heap: BinaryHeap<(std::cmp::Reverse<u128>, State)> = BinaryHeap::new();
    for &m in q.marked() {
        let s = (m, 0u32, base_exp);
        dist.insert(s, 0);
        heap.push((std::cmp::Reverse(0), s));
    }

    let pow3 = |e: i32| -> u128 { 3u128.pow(e as u32) };
    let mut best: Option<u128> = None;

    while let Some((std::cmp::Reverse(cost), state)) = heap.pop() {
        if dist.get(&state) != Some(&cost) {
            continue;
        }
        let (v, mask, exp) = state;

        // Possible final step: traverse α from here.
        if v == a_from || v == a_to {
            let total = cost + pow3(exp);
            if best.is_none_or(|b| total < b) {
                best = Some(total);
            }
        }

        let push = |s: State,
                    c: u128,
                    dist: &mut HashMap<State, u128>,
                    heap: &mut BinaryHeap<(std::cmp::Reverse<u128>, State)>| {
            if dist.get(&s).is_none_or(|&old| c < old) {
                dist.insert(s, c);
                heap.push((std::cmp::Reverse(c), s));
            }
        };

        for (ei, &(_, rf, rt)) in reds.iter().enumerate() {
            if mask & (1 << ei) != 0 {
                continue;
            }
            // Forward: elevation ×3; backward: ÷3 (exponent must stay ≥ 0).
            if rf == v {
                push((rt, mask | (1 << ei), exp + 1), cost, &mut dist, &mut heap);
            }
            if rt == v && exp > 0 {
                push((rf, mask | (1 << ei), exp - 1), cost, &mut dist, &mut heap);
            }
        }
        for &(c, gf, gt) in q.edges() {
            if c == red_color {
                continue;
            }
            let step_cost = if c == red_color - 1 { pow3(exp) } else { 0 };
            if gf == v {
                push((gt, mask, exp), cost + step_cost, &mut dist, &mut heap);
            }
            if gt == v {
                push((gf, mask, exp), cost + step_cost, &mut dist, &mut heap);
            }
        }
    }
    best
}

/// The rank `qrk(Q)` (unreachable atoms rank as `u128::MAX`).
pub fn qrk(q: &MarkedQuery, k: u8) -> QueryRank {
    let mut components = Vec::new();
    for i in (2..=k).rev() {
        let count = q.count(i);
        let ranks: Vec<u128> = q
            .edges()
            .iter()
            .copied()
            .filter(|(c, _, _)| *c == i - 1)
            .map(|alpha| erk(q, i, alpha).unwrap_or(u128::MAX))
            .collect();
        components.push((count, MultisetNat::new(ranks)));
    }
    QueryRank(components)
}

/// The rank `srk(S)` of a set of marked queries: the multiset of their
/// `qrk`s, represented as a descending-sorted vector.
pub fn srk(queries: &[MarkedQuery], k: u8) -> Vec<QueryRank> {
    let mut out: Vec<QueryRank> = queries.iter().map(|q| qrk(q, k)).collect();
    out.sort_by(|a, b| b.cmp(a));
    out
}

/// Dershowitz–Manna comparison of two `srk` values (descending-sorted
/// sequences compared lexicographically, proper prefix smaller).
pub fn srk_lt(a: &[QueryRank], b: &[QueryRank]) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    a.len() < b.len()
}

/// Empirically verifies Lemma 53: applying one operation to `q` replaces
/// `{qrk(q)}` by a strictly `<_M`-smaller multiset. Returns `false` if the
/// step does not strictly decrease the rank.
pub fn rank_decreases(q: &MarkedQuery, k: u8) -> bool {
    match q.step() {
        crate::marked::StepResult::Replaced(qs) => {
            let before = qrk(q, k);
            qs.iter().all(|nq| qrk(nq, k) < before)
        }
        // Drops and terminals trivially decrease the set rank.
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marked::{ColorMap, MarkedQuery, StepResult};
    use crate::theories::phi_r_n;

    #[test]
    fn multiset_ordering() {
        let m = |v: Vec<u128>| MultisetNat::new(v);
        assert!(m(vec![2, 2, 2]) < m(vec![3]));
        assert!(m(vec![2]) < m(vec![2, 1]));
        assert!(m(vec![]) < m(vec![0]));
        assert_eq!(m(vec![1, 2]), m(vec![2, 1]));
    }

    #[test]
    fn erk_single_green() {
        // marked a --g--> b, no reds: erk = 3^0 = 1.
        let q = MarkedQuery::new(2, [(1, 0, 1)], [0], vec![0]);
        assert_eq!(erk(&q, 2, (1, 0, 1)), Some(1));
    }

    #[test]
    fn erk_with_idle_red_raises_base() {
        // One red edge somewhere raises the base elevation to 3.
        let q = MarkedQuery::new(2, [(1, 0, 1), (2, 0, 2)], [0], vec![0]);
        assert_eq!(erk(&q, 2, (1, 0, 1)), Some(3));
    }

    #[test]
    fn erk_descending_red_discounts() {
        // a --r--> b, α = g(b,c): walking the red edge forward first raises
        // the elevation; the hike must go a --r--> b then g: cost = 3^2?
        // No: base = 3^1 = 3, after forward red exp = 2, green step costs 9.
        // Alternative: is there a cheaper hike? α starts at b, only
        // reachable through the red edge: cost 9.
        let q = MarkedQuery::new(2, [(2, 0, 1), (1, 1, 2)], [0], vec![0]);
        assert_eq!(erk(&q, 2, (1, 1, 2)), Some(9));
        // Red backward: a ←r— b, α = g(b,c): traverse red backwards:
        // exp 1 → 0, green costs 1.
        let q2 = MarkedQuery::new(2, [(2, 1, 0), (1, 1, 2)], [0], vec![0]);
        assert_eq!(erk(&q2, 2, (1, 1, 2)), Some(1));
    }

    #[test]
    fn lemma_53_rank_decreases_along_process() {
        // Drive the process on φ_R^1 and φ_R^2 manually, checking that
        // every operation strictly decreases qrk (Lemma 53).
        for n in [1, 2] {
            let colors = ColorMap::td();
            let seeds = MarkedQuery::markings_of(&phi_r_n(n), &colors).unwrap();
            let mut work: Vec<MarkedQuery> = seeds.into_iter().filter(|q| q.is_live()).collect();
            let mut steps = 0;
            while let Some(q) = work.pop() {
                steps += 1;
                assert!(steps < 200_000, "runaway process");
                assert!(rank_decreases(&q, 2), "Lemma 53 violated at {q:?}");
                if let StepResult::Replaced(qs) = q.step() {
                    work.extend(qs.into_iter().filter(|x| x.is_live()));
                }
            }
        }
    }

    #[test]
    fn srk_ordering_is_well_behaved() {
        let colors = ColorMap::td();
        let seeds = MarkedQuery::markings_of(&phi_r_n(1), &colors).unwrap();
        let r0 = srk(&seeds, 2);
        assert!(!srk_lt(&r0, &r0));
        let smaller = srk(&seeds[..seeds.len() - 1], 2);
        // A subset (with the largest element kept) is strictly smaller or
        // incomparable... for descending-sorted prefixes it is smaller.
        let _ = smaller; // ordering sanity exercised via srk_lt above
    }
}
