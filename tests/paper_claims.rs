//! Cross-crate integration tests: one small-scale assertion per result of
//! the paper (the experiments in `qr-bench` sweep the same claims over
//! larger parameter ranges).

use query_rewritability::chase::{
    all_instances_termination, chase, core_termination, ChaseBudget, CoreTermBudget,
};
use query_rewritability::classes::{
    degree, distancing_profile, empirical_locality, is_binary, is_linear, is_sticky,
};
use query_rewritability::core::marked::rewrite_td;
use query_rewritability::core::theories::{
    cycle, ex23, ex28, ex39, ex41, g_power_query, green_path, phi_r_n, star_39, t_a, t_c, t_d, t_p,
};
use query_rewritability::hom::containment::equivalent;
use query_rewritability::hom::holds;
use query_rewritability::prelude::*;
use query_rewritability::rewrite::{rewrite, RewriteBudget, RewriteOutcome};

#[test]
fn example_1_entailment() {
    // T_a, D_a = {Human(Abel)} ⊨ ∃y,z Mother(Abel,y), Mother(y,z).
    let db = parse_instance("human(abel).").unwrap();
    let q = parse_query("? :- mother(abel, Y), mother(Y, Z).").unwrap();
    let ch = chase(&t_a(), &db, ChaseBudget::rounds(4));
    assert!(holds(&q, &ch.instance, &[]));
}

#[test]
fn exercise_12_t_p_is_bdd() {
    // Every chain query has a complete rewriting under T_p.
    for k in 1..=4usize {
        let atoms: Vec<String> = (0..k).map(|i| format!("e(X{i}, X{})", i + 1)).collect();
        let q = parse_query(&format!("? :- {}.", atoms.join(", "))).unwrap();
        let r = rewrite(&t_p(), &q, RewriteBudget::default()).unwrap();
        assert!(r.is_complete(), "k={k}");
    }
}

#[test]
fn exercise_22_23_termination_split() {
    let db = parse_instance("e(a,b).").unwrap();
    // T_p: BDD but not core-terminating.
    assert!(!core_termination(&t_p(), &db, CoreTermBudget::default()).terminates());
    // Ex. 23: core-terminating but not all-instances-terminating.
    assert!(core_termination(&ex23(), &db, CoreTermBudget::default()).terminates());
    assert_eq!(all_instances_termination(&ex23(), &db, 12), None);
}

#[test]
fn example_28_no_uniform_bound() {
    // The uniformity constant of the K-truncation grows linearly in K.
    let mut bounds = Vec::new();
    for k in 2..=4usize {
        let db = parse_instance(&format!("e{k}(a,b).")).unwrap();
        let c = core_termination(
            &ex28(k),
            &db,
            CoreTermBudget {
                max_depth: 8,
                lookahead: 2,
                max_facts: 50_000,
            },
        )
        .depth()
        .unwrap();
        bounds.push(c);
    }
    assert_eq!(bounds, vec![2, 3, 4]);
}

#[test]
fn example_39_sticky_but_not_local() {
    assert!(is_sticky(&ex39()));
    let p2 = empirical_locality(&ex39(), &star_39(2), 2);
    let p4 = empirical_locality(&ex39(), &star_39(4), 4);
    assert_eq!(p2.max_support, 3);
    assert_eq!(p4.max_support, 5);
}

#[test]
fn example_41_bd_local_not_bdd() {
    assert!(!is_sticky(&ex41()));
    let q = parse_query("?(Y,Z) :- r(Y,Z).").unwrap();
    let r = rewrite(
        &ex41(),
        &q,
        RewriteBudget {
            max_queries: 256,
            max_generated: 10_000,
            max_atoms: 16,
        },
    )
    .unwrap();
    // The generation budget is generous: the only losses are atom-cap
    // discards, so the run is saturated modulo the cap — never Complete.
    assert_eq!(r.outcome, RewriteOutcome::AtomCapped);
    assert!(r.oversized_discarded > 0);
    assert!(!r.is_complete());
}

#[test]
fn example_42_not_bd_local() {
    let p4 = empirical_locality(&t_c(), &cycle(4), 5);
    let p6 = empirical_locality(&t_c(), &cycle(6), 7);
    assert_eq!((p4.degree, p4.max_support), (2, 4));
    assert_eq!((p6.degree, p6.max_support), (2, 6));
}

#[test]
fn theorem_5_overall() {
    // (B)(i): Ch(T_d, G^{2^n}) ⊨ φ_R^n for n = 0, 1, 2.
    for n in 0..=2usize {
        let (db, a, b) = green_path(1 << n, &format!("pc{n}"));
        let ch = chase(&t_d(), &db, ChaseBudget::rounds(2 * n + 1));
        assert!(holds(&phi_r_n(n), &ch.instance, &[a, b]), "n={n}");
    }
    // (A) + (B)(ii): the marked process terminates and emits G^{2^n}.
    for n in 1..=3usize {
        let r = rewrite_td(&phi_r_n(n), 10_000_000).unwrap();
        let g = g_power_query(1 << n);
        assert!(r.disjuncts.iter().any(|d| equivalent(d, &g)), "n={n}");
    }
}

#[test]
fn t_d_is_binary_and_not_distancing() {
    assert!(is_binary(&t_d()));
    let (db, _, _) = green_path(8, "ndist");
    let dp = distancing_profile(&t_d(), &db, 7);
    assert!(dp.max_ratio.unwrap() > 1.0);
}

#[test]
fn observation_49_structure_of_t_d_chase() {
    // In Ch(T_d, D): edges into dom(D) originate in dom(D), and every
    // directed cycle lies within D (checked on a sample chase).
    let (db, _, _) = green_path(4, "obs49");
    let ch = chase(&t_d(), &db, ChaseBudget::rounds(5));
    let dom_d: std::collections::HashSet<TermId> = db.domain().iter().copied().collect();
    for f in ch.instance.iter() {
        let (src, dst) = (f.args[0], f.args[1]);
        if dom_d.contains(&dst) {
            assert!(
                dom_d.contains(&src),
                "chase edge into dom(D) from outside: {f}"
            );
        }
    }
    // Self-loops (1-cycles) only on the loop element, which is not in D's
    // component: no self-loop mentions dom(D).
    for f in ch.instance.iter() {
        if f.args[0] == f.args[1] {
            assert!(!dom_d.contains(&f.args[0]), "loop on a D constant: {f}");
        }
    }
}

#[test]
fn zoo_class_matrix() {
    // The class membership table of the introduction.
    assert!(is_linear(&t_a()) && is_binary(&t_a()) && is_sticky(&t_a()));
    assert!(is_linear(&t_p()));
    assert!(is_linear(&ex28(3)));
    assert!(is_sticky(&ex39()) && !is_linear(&ex39()));
    assert!(!is_sticky(&ex41()));
    assert!(!is_linear(&t_c()) && !is_binary(&t_c()));
    assert!(is_binary(&t_d()) && !is_linear(&t_d()));
    assert_eq!(degree(&cycle(7)), 2);
}
