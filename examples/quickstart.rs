//! Quickstart: parse a theory, chase an instance, answer a query twice —
//! through the chase and through its UCQ rewriting — and see them agree.
//!
//! Run with `cargo run --example quickstart`.

use query_rewritability::chase::{chase, ChaseBudget};
use query_rewritability::hom::{all_answers, holds};
use query_rewritability::prelude::*;
use query_rewritability::rewrite::{rewrite, RewriteBudget};

fn main() {
    // Example 1 of the paper: humans have mothers, mothers are human.
    let theory = parse_theory(
        "human(Y) -> mother(Y, Z).\n\
         mother(X, Y) -> human(Y).",
    )
    .expect("theory parses");

    let db = parse_instance("human(abel). mother(eve, cain).").expect("instance parses");

    // --- Chase-based answering -------------------------------------------
    let result = chase(&theory, &db, ChaseBudget::rounds(5));
    println!("Ch_5(T, D) has {} facts:", result.instance.len());
    for (i, fact) in result.instance.iter().enumerate() {
        println!("  [round {}] {fact}", result.round_of[i]);
    }

    let query = parse_query("? :- mother(abel, Y), mother(Y, Z).").expect("query parses");
    println!(
        "\nD, T |= {}  ->  {}",
        query.render(),
        holds(&query, &result.instance, &[])
    );

    // --- Rewriting-based answering ---------------------------------------
    let who = parse_query("?(X) :- mother(X, M).").expect("query parses");
    let rewriting = rewrite(&theory, &who, RewriteBudget::default()).expect("supported");
    println!(
        "\nrew({}) — {} disjunct(s), complete: {}",
        who.render(),
        rewriting.ucq.len(),
        rewriting.is_complete()
    );
    for d in rewriting.ucq.disjuncts() {
        println!("  {}", d.render());
    }

    // Answers over D alone (no chase!) via the rewriting:
    let mut answers: Vec<Vec<TermId>> = rewriting
        .ucq
        .disjuncts()
        .iter()
        .flat_map(|d| all_answers(d, &db, 0))
        .collect();
    answers.sort();
    answers.dedup();
    println!("\ncertain answers of {} over D:", who.render());
    for a in &answers {
        println!("  {:?}", a[0]);
    }

    // Cross-check against the chase:
    let mut via_chase = all_answers(&who, &result.instance, 0);
    via_chase.retain(|t| t.iter().all(|x| x.is_const()));
    via_chase.sort();
    assert_eq!(answers, via_chase, "Theorem 1 in action");
    println!("\nchase and rewriting agree (Theorem 1).");
}
