#[test]
fn probe_retract_vanishing_dom_var_sweep() {
    use qr_chase::engine::chase_with;
    use qr_chase::{chase_incremental, ChaseBudget, WriteBatch};
    use qr_exec::Executor;
    use qr_syntax::{parse_instance, parse_theory, Fact, Instance, Symbol, TermId};
    let t = parse_theory("s, dom(Y) -> q.").unwrap();
    let d = parse_instance("s. r(z).").unwrap();
    let exec = Executor::sequential();
    let budget = ChaseBudget::default();
    let prev = chase_with(&t, &d, budget, &exec);
    let q = Fact::new(qr_syntax::Pred::new("q", 0), vec![]);
    assert!(prev.instance.contains(&q), "prev derives q");
    let rz = Fact::new(
        qr_syntax::Pred::new("r", 1),
        vec![TermId::constant(Symbol::intern("z"))],
    );
    let batch = WriteBatch::retract([rz]);
    let (incr, bs) = chase_incremental(&t, &prev, &batch, budget, &exec);
    eprintln!("mode = {:?}", bs.mode);
    // cold chase of shrunken base
    let d2 = parse_instance("s.").unwrap();
    let cold = chase_with(&t, &d2, budget, &exec);
    assert_eq!(
        incr.instance.contains(&q),
        cold.instance.contains(&q),
        "incremental contains q: {}, cold contains q: {}",
        incr.instance.contains(&q),
        cold.instance.contains(&q)
    );
}
