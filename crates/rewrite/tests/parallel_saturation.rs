//! Determinism contract of parallel saturation: for every thread count,
//! `rewrite_with` must return exactly the sequential rewriting — the same
//! disjuncts (same renderings, in the same order), the same generation
//! count, depth and outcome — on randomized (theory, query) pairs covering
//! both saturating and budget-truncated runs.

use qr_exec::Executor;
use qr_rewrite::{rewrite_with, RewriteBudget};
use qr_syntax::{parse_query, parse_theory};
use qr_testkit::check;

/// Piece-rewritable theories (no builtin bodies): bounded-derivation-depth
/// shapes, sticky shapes, and divergent Datalog to exercise truncation.
const THEORIES: [&str; 5] = [
    "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
    "e(X,Y) -> e(Y,Z).",
    "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
    "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
    "e(X,Y), e(Y,Z) -> e(X,Z).",
];

const QUERIES: [&str; 4] = [
    "? :- e(A,B), e(B,C).",
    "?(A) :- e(A,B), e(B,C).",
    "? :- e(A,B).",
    "?(A) :- e(A,B).",
];

#[test]
fn parallel_saturation_equals_sequential_ucq() {
    check("parallel_saturation_equals_sequential_ucq", 25, |rng| {
        let theory = parse_theory(rng.pick::<&str>(&THEORIES)).unwrap();
        // Queries over predicates the theory may not mention still rewrite
        // (to themselves); arity mismatches are avoided by using binary
        // `e` queries only against binary-`e` theories.
        let query_src = if theory.render().contains("e(X,Y,Y1,T)") {
            "?(A,D) :- e(A,B,C,D)."
        } else {
            rng.pick::<&str>(&QUERIES)
        };
        let query = parse_query(query_src).unwrap();
        // Small budgets keep divergent theories cheap while still hitting
        // the truncation paths.
        let budget = RewriteBudget {
            max_queries: rng.range(4, 32),
            max_generated: rng.range(50, 400),
            max_atoms: rng.range(4, 10),
        };
        let seq = rewrite_with(&theory, &query, budget, &Executor::sequential()).unwrap();
        let seq_renders: Vec<String> = seq.ucq.disjuncts().iter().map(|d| d.render()).collect();
        for threads in [2, 4] {
            let par =
                rewrite_with(&theory, &query, budget, &Executor::with_threads(threads)).unwrap();
            let ctx = format!(
                "{threads} threads, theory {}, query {query_src}, budget {budget:?}",
                theory.render()
            );
            assert_eq!(par.outcome, seq.outcome, "outcome: {ctx}");
            assert_eq!(par.generated, seq.generated, "generated: {ctx}");
            assert_eq!(par.depth, seq.depth, "depth: {ctx}");
            let par_renders: Vec<String> = par.ucq.disjuncts().iter().map(|d| d.render()).collect();
            assert_eq!(par_renders, seq_renders, "saturated set: {ctx}");
        }
    });
}
