//! Cross-crate properties of the sharded chase (`qr_chase::sharded`).
//!
//! The in-crate unit tests pin byte-identity on fixtures; here we drive
//! randomized theories and instances through `chase_sharded` at 1/2/4
//! threads, and wire the exchange protocol to the *real* certificate
//! replayer (`qr_check::check_frontier`) — including a forged bundle
//! that must be rejected with a located [`qr_check::CheckError`].

use qr_chase::{
    chase_sharded, chase_sharded_opts, chase_with, Chase, ChaseBudget, ChaseCertBundle,
    CrossShardPolicy, FrontierRejection, ShardMode, ShardOpts,
};
use qr_exec::Executor;
use qr_syntax::{parse_instance, parse_theory, Fact, Instance, Theory};
use qr_testkit::Rng;

/// Field-by-field byte-identity of two chase runs (walls excluded: they
/// are measurements, not outputs).
fn assert_identical(a: &Chase, b: &Chase) {
    let facts_a: Vec<_> = a.instance.iter().map(|f| f.to_fact()).collect();
    let facts_b: Vec<_> = b.instance.iter().map(|f| f.to_fact()).collect();
    assert_eq!(facts_a, facts_b, "fact streams");
    assert_eq!(a.instance.domain(), b.instance.domain(), "domain order");
    assert_eq!(a.round_of, b.round_of, "rounds of facts");
    assert_eq!(a.rounds, b.rounds, "round count");
    assert_eq!(a.outcome, b.outcome, "outcome");
    assert_eq!(a.derivations, b.derivations, "provenance");
    assert_eq!(
        a.round_snapshots.len(),
        b.round_snapshots.len(),
        "snapshots"
    );
    for (sa, sb) in a.round_snapshots.iter().zip(&b.round_snapshots) {
        assert_eq!(sa.facts(), sb.facts(), "snapshot facts");
        assert_eq!(sa.terms(), sb.terms(), "snapshot terms");
    }
    assert_eq!(a.stats.rounds.len(), b.stats.rounds.len(), "stat rows");
    for (ra, rb) in a.stats.rounds.iter().zip(&b.stats.rounds) {
        assert_eq!(ra.triggers, rb.triggers, "round {} triggers", ra.round);
        assert_eq!(
            ra.candidates, rb.candidates,
            "round {} candidates",
            ra.round
        );
        assert_eq!(ra.facts_added, rb.facts_added, "round {} facts", ra.round);
        assert_eq!(ra.terms_added, rb.terms_added, "round {} terms", ra.round);
    }
}

/// A random theory from a pool of shardable rules: always at least one
/// term-safe rule, sometimes a term-unsafe (but pred-safe) one, so the
/// property exercises both the Gaifman and the predicate-group modes.
fn random_theory(rng: &mut Rng) -> Theory {
    let term_safe_pool = [
        "e(X,Y), e(Y,Z) -> e(X,Z).",
        "e(X,Y) -> e(Y,X).",
        "e(X,Y) -> n(X,W).",
        "n(X,W) -> p(X).",
    ];
    let pred_safe_pool = ["q(X), r(Y) -> s(X,Y).", "q(X) -> r(X)."];
    let mut src = String::new();
    src.push_str(term_safe_pool[rng.below(term_safe_pool.len())]);
    for rule in &term_safe_pool {
        if rng.bool() {
            src.push_str(rule);
        }
    }
    if rng.bool() {
        src.push_str(pred_safe_pool[rng.below(pred_safe_pool.len())]);
    }
    parse_theory(&src).unwrap()
}

/// A random instance of `comps` disconnected components, each a sprinkle
/// of `e`-edges (plus the occasional `q`/`r` fact) over its own
/// namespaced constants.
fn random_instance(rng: &mut Rng, comps: usize) -> Instance {
    let mut src = String::new();
    for c in 0..comps {
        let nodes = rng.range(2, 6);
        for _ in 0..rng.range(1, 8) {
            let a = rng.below(nodes);
            let b = rng.below(nodes);
            src.push_str(&format!("e(c{c}x{a},c{c}x{b})."));
        }
        if rng.bool() {
            src.push_str(&format!("q(c{c}x0)."));
        }
        if rng.bool() {
            src.push_str(&format!("r(c{c}x1)."));
        }
    }
    parse_instance(&src).unwrap()
}

#[test]
fn sharded_chase_is_byte_identical_across_thread_counts() {
    qr_testkit::check("sharded_byte_identity", 30, |rng: &mut Rng| {
        let theory = random_theory(rng);
        let comps = rng.range(2, 7);
        let db = random_instance(rng, comps);
        let budget = if rng.bool() {
            ChaseBudget::default()
        } else {
            ChaseBudget::rounds(rng.range(1, 5))
        };
        let reference = chase_with(&theory, &db, budget, &Executor::sequential());
        for threads in [1, 2, 4] {
            let exec = Executor::with_threads(threads);
            let (sharded, stats) = chase_sharded(&theory, &db, budget, &exec);
            assert_ne!(
                stats.mode,
                ShardMode::Exchange,
                "shardable theories never need the exchange"
            );
            assert_identical(&sharded, &reference);
        }
    });
}

#[test]
fn connected_instances_bypass_sharding() {
    // One Gaifman component: partitioning would be pure overhead, so the
    // run must collapse to the monolithic engine.
    qr_testkit::check("connected_bypass", 20, |rng: &mut Rng| {
        let theory = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let nodes = rng.range(3, 9);
        let mut src = String::new();
        for i in 1..nodes {
            // A random tree keeps everything connected.
            src.push_str(&format!("e(v{},v{i}).", rng.below(i)));
        }
        let db = parse_instance(&src).unwrap();
        let exec = Executor::with_threads(4);
        let (sharded, stats) = chase_sharded(&theory, &db, ChaseBudget::default(), &exec);
        assert_eq!(stats.mode, ShardMode::Bypass);
        let reference = chase_with(&theory, &db, ChaseBudget::default(), &exec);
        assert_identical(&sharded, &reference);
    });
}

/// The production verifier: replay the peer's bundle through `qr-check`.
fn replaying_verifier(
    theory: &Theory,
    base: &Instance,
    frontier: &[Fact],
    bundle: &ChaseCertBundle,
) -> Result<usize, FrontierRejection> {
    qr_check::check_frontier(theory, base, frontier, bundle).map_err(|e| FrontierRejection {
        cert: e.cert,
        detail: e.to_string(),
    })
}

#[test]
fn exchange_absorbs_frontiers_through_the_real_checker() {
    // `dom(Z)` makes every rule cross-shard; the exchange ships each
    // shard's derived facts with certificates, replayed by qr-check.
    let theory = parse_theory("e(X,Y), dom(Z) -> t(X,Z).").unwrap();
    let db = parse_instance("e(a,b). e(c,d). e(g,h).").unwrap();
    let budget = ChaseBudget::default();
    let opts = ShardOpts {
        cross_shard: CrossShardPolicy::Exchange {
            verify: &replaying_verifier,
        },
        ..ShardOpts::default()
    };
    let (sharded, stats) =
        chase_sharded_opts(&theory, &db, budget, &Executor::with_threads(4), &opts);
    assert_eq!(stats.mode, ShardMode::Exchange);
    assert!(stats.certs_exchanged > 0);
    assert_eq!(stats.certs_checked, stats.certs_exchanged);
    assert_eq!(stats.certs_rejected, 0);
    assert_eq!(
        stats.kernel_searches, 0,
        "certificate replay must not touch the hom kernel"
    );
    let reference = chase_with(&theory, &db, budget, &Executor::sequential());
    assert!(reference.terminated() && sharded.terminated());
    assert_eq!(sharded.instance, reference.instance, "same fact set");
}

#[test]
fn forged_frontier_certificates_are_rejected_at_the_merge() {
    let theory = parse_theory("e(X,Y), dom(Z) -> t(X,Z).").unwrap();
    let db = parse_instance("e(a,b). e(c,d).").unwrap();
    let budget = ChaseBudget::default();
    // A man-in-the-middle: certificate 0 of every bundle is rewired to
    // reference the fact it certifies (circular), then replayed through
    // the real checker — which must reject it with a located error.
    let forge = |theory: &Theory, base: &Instance, frontier: &[Fact], bundle: &ChaseCertBundle| {
        let mut forged = bundle.clone();
        forged.certs[0].trigger[0] = forged.certs[0].fact;
        replaying_verifier(theory, base, frontier, &forged)
    };
    let opts = ShardOpts {
        cross_shard: CrossShardPolicy::Exchange { verify: &forge },
        ..ShardOpts::default()
    };
    let (sharded, stats) =
        chase_sharded_opts(&theory, &db, budget, &Executor::with_threads(4), &opts);
    assert_eq!(stats.certs_checked, 0, "no forged bundle may be absorbed");
    assert!(stats.certs_rejected > 0);
    let (_, rejection) = &stats.rejections[0];
    assert_eq!(
        rejection.cert, 0,
        "rejection locates the forged certificate"
    );
    assert!(
        rejection.detail.contains("certificate 0"),
        "located detail: {}",
        rejection.detail
    );
    assert!(
        rejection.detail.contains("not earlier"),
        "names the violation: {}",
        rejection.detail
    );
    // Soundness: nothing was absorbed, the catch-up still closes the gap.
    let reference = chase_with(&theory, &db, budget, &Executor::sequential());
    assert_eq!(sharded.instance, reference.instance);
}
