//! **E5 — Example 42**: `T_c` is BDD but **not even bd-local**: on the
//! degree-2 cycle `D_n`, chase facts require all `n` input edges, so no
//! constant `l_T(2)` exists (Definition 40).

use std::time::Instant;

use qr_classes::empirical::empirical_locality;
use qr_core::theories::{cycle, t_c};

use crate::Table;

/// Cycle sizes covered by the default run.
pub const NS: [usize; 5] = [3, 4, 5, 6, 8];

/// The E5 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E5  Ex. 42 — T_c is BDD but not bd-local (degree-2 cycles need all n edges)",
        "degree stays 2 while max minimal support = n",
        &["n (cycle)", "degree", "chase depth", "max support", "ms"],
    );
    for n in NS {
        let t0 = Instant::now();
        let p = empirical_locality(&t_c(), &cycle(n), n + 1);
        t.row(vec![
            n.to_string(),
            p.degree.to_string(),
            p.depth.to_string(),
            p.max_support.to_string(),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_2_support_n() {
        for n in [3usize, 5] {
            let p = empirical_locality(&t_c(), &cycle(n), n + 1);
            assert_eq!(p.degree, 2);
            assert_eq!(p.max_support, n, "n={n}");
        }
    }
}
