//! Query minimization: the core of a conjunctive query.
//!
//! A CQ is equivalent to its core — the smallest subquery it retracts onto
//! while fixing the answer variables. Cores are used to keep rewriting sets
//! small and to make the cheap structural deduplication of
//! [`qr_syntax::ConjunctiveQuery::canonical`] effective.

use qr_syntax::query::ConjunctiveQuery;

use crate::kernel::global_kernel;

/// Returns an equivalent subquery from which no atom can be dropped without
/// changing the semantics (a core of `q`).
///
/// Delegates to the process-wide [`crate::kernel::HomKernel`], which finds
/// the core by searching directly for retraction endomorphisms on the
/// frozen instance — one search per drop attempt instead of a full
/// `equivalent` round-trip — and caches results per canonical form.
pub fn query_core(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    global_kernel().query_core(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use qr_syntax::parser::parse_query;

    #[test]
    fn redundant_atom_removed() {
        let q = parse_query("?(X) :- e(X,Y), e(X,Z).").unwrap();
        let core = query_core(&q);
        assert_eq!(core.size(), 1);
        assert!(equivalent(&q, &core));
    }

    #[test]
    fn folds_path_onto_loop() {
        // A 3-path plus a loop retracts onto the loop.
        let q = parse_query("? :- e(X,X), e(X,Y), e(Y,Z), e(Z,W).").unwrap();
        let core = query_core(&q);
        assert_eq!(core.size(), 1);
    }

    #[test]
    fn minimal_query_untouched() {
        let q = parse_query("?(X) :- e(X,Y), e(Y,Z).").unwrap();
        let core = query_core(&q);
        assert_eq!(core.size(), 2);
        assert!(equivalent(&q, &core));
    }

    #[test]
    fn answer_vars_kept() {
        // The loop is on a non-answer variable; the answer path must stay.
        let q = parse_query("?(A) :- e(A,B), e(X,X).").unwrap();
        let core = query_core(&q);
        assert!(equivalent(&q, &core));
        assert_eq!(core.answer_vars().len(), 1);
        // e(X,X) absorbs e(A,B)? No: A is an answer variable, so both the
        // loop atom and an atom mentioning A must survive... in fact e(A,B)
        // maps onto e(X,X) only if A maps to X, which is forbidden.
        assert_eq!(core.size(), 2);
    }

    #[test]
    fn triangle_vs_cycle6() {
        // A 6-cycle with a triangle retracts onto the triangle.
        let q = parse_query(
            "? :- e(A,B), e(B,C), e(C,D), e(D,E), e(E,F), e(F,A), \
                  e(T1,T2), e(T2,T3), e(T3,T1).",
        )
        .unwrap();
        let core = query_core(&q);
        assert_eq!(core.size(), 3);
    }
}
