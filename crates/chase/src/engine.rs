//! The chase procedure (Definition 6 of the paper).
//!
//! `Ch_0(T,D) = D`; `Ch_{i+1}(T,D)` extends `Ch_i(T,D)` with `appl(ρ,σ)`
//! for **every** rule `ρ` and every homomorphism `σ` of its body into
//! `Ch_i(T,D)` — rounds are "parallel": facts produced in round `i+1` never
//! feed triggers of round `i+1`.
//!
//! The default engine is *semi-naive*: a trigger is enumerated in round
//! `i+1` only if it uses at least one fact (or, for `dom`-scoped variables,
//! one domain term) that first appeared in round `i`. Triggers using only
//! older facts already fired in an earlier round, so the produced fact sets
//! `Ch_i` are exactly those of the textbook definition; [`chase_naive`]
//! re-enumerates everything each round and is used to cross-check this.

use std::collections::{HashMap, HashSet};

use qr_hom::matcher::for_each_match;
use qr_syntax::query::{QAtom, QTerm, Var};
use qr_syntax::{Fact, Instance, TermId, Theory};

use crate::skolem::SkolemizedRule;

/// Resource limits for a chase run.
#[derive(Clone, Copy, Debug)]
pub struct ChaseBudget {
    /// Maximum number of rounds (`Ch_max_rounds` is the deepest prefix built).
    pub max_rounds: usize,
    /// Stop after a round if the instance exceeds this many facts.
    pub max_facts: usize,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget {
            max_rounds: 24,
            max_facts: 200_000,
        }
    }
}

impl ChaseBudget {
    /// A budget bounded only by the number of rounds (plus a generous fact cap).
    pub fn rounds(max_rounds: usize) -> ChaseBudget {
        ChaseBudget {
            max_rounds,
            ..ChaseBudget::default()
        }
    }
}

/// Whether the chase reached a fixpoint or ran out of budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseOutcome {
    /// A round added no facts: the instance **is** `Ch(T,D)` (the chase
    /// all-instances-terminated on this input).
    Fixpoint,
    /// The budget was exhausted; the instance is the prefix `Ch_rounds(T,D)`.
    Exhausted,
}

/// Provenance of one derived fact: which rule fired, on which body image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Derivation {
    /// Index of the rule in the theory.
    pub rule: usize,
    /// Indices (into the chase instance) of the non-builtin body facts.
    pub trigger: Vec<usize>,
    /// The frontier image `σ(fr(ρ))` (Observation 9) in canonical order.
    pub frontier: Vec<TermId>,
    /// The round in which the fact was added.
    pub round: usize,
}

/// The result of a chase run: the instance `Ch_rounds(T,D)` with per-fact
/// round and provenance information.
#[derive(Clone, Debug)]
pub struct Chase {
    /// All facts derived (a superset of the input instance).
    pub instance: Instance,
    /// For each fact index, the round it first appeared in (0 = input).
    pub round_of: Vec<usize>,
    /// Number of completed rounds: `instance = Ch_rounds(T,D)`.
    pub rounds: usize,
    /// Fixpoint or budget exhaustion.
    pub outcome: ChaseOutcome,
    /// For each fact index, its first derivation (`None` for input facts).
    pub derivations: Vec<Option<Derivation>>,
    /// With [`chase_all`], **every** distinct derivation of each fact
    /// (semi-naive enumeration visits each trigger exactly once, so this is
    /// the complete set of rule applications producing the fact). Empty in
    /// normal mode.
    pub all_derivations: Vec<Vec<Derivation>>,
}

impl Chase {
    /// The prefix `Ch_n(T,D)`: facts added in rounds `0..=n`.
    pub fn prefix(&self, n: usize) -> Instance {
        if n >= self.rounds {
            return self.instance.clone();
        }
        Instance::from_facts(
            self.instance
                .iter()
                .enumerate()
                .filter_map(|(i, f)| (self.round_of[i] <= n).then(|| f.clone())),
        )
    }

    /// Facts first appearing in round `n`.
    pub fn delta(&self, n: usize) -> Vec<&Fact> {
        self.instance
            .iter()
            .enumerate()
            .filter_map(|(i, f)| (self.round_of[i] == n).then_some(f))
            .collect()
    }

    /// `true` iff the chase reached a fixpoint within budget.
    pub fn terminated(&self) -> bool {
        self.outcome == ChaseOutcome::Fixpoint
    }

    /// The round in which each term first entered the active domain
    /// (0 for input constants) — the clock behind Exercise 17's `n_at`.
    pub fn first_round_of_terms(&self) -> HashMap<TermId, usize> {
        let mut out: HashMap<TermId, usize> = HashMap::new();
        for (i, f) in self.instance.iter().enumerate() {
            for t in f.terms() {
                let r = self.round_of[i];
                out.entry(t)
                    .and_modify(|cur| *cur = (*cur).min(r))
                    .or_insert(r);
            }
        }
        out
    }
}

struct RulePlan<'a> {
    rule: &'a qr_syntax::Tgd,
    skolemized: SkolemizedRule,
    nvars: usize,
    regular: Vec<usize>, // indices of non-dom body atoms
    dom: Vec<usize>,     // indices of dom body atoms
}

fn plans(theory: &Theory) -> Vec<RulePlan<'_>> {
    theory
        .rules()
        .iter()
        .map(|rule| {
            let (regular, dom): (Vec<usize>, Vec<usize>) = (0..rule.body().len())
                .partition(|&i| !rule.body()[i].pred.is_dom());
            RulePlan {
                rule,
                skolemized: SkolemizedRule::new(rule),
                nvars: rule.var_names().len(),
                regular,
                dom,
            }
        })
        .collect()
}

/// Attempts to unify body atom `atom` with ground fact `fact`, extending
/// `out` with variable bindings. Returns `false` on clash.
fn unify_atom_fact(atom: &QAtom, fact: &Fact, out: &mut Vec<(Var, TermId)>) -> bool {
    let start = out.len();
    for (pos, t) in atom.args.iter().enumerate() {
        let ft = fact.args[pos];
        match t {
            QTerm::Const(c) => {
                if TermId::constant(*c) != ft {
                    out.truncate(start);
                    return false;
                }
            }
            QTerm::Var(v) => {
                match out.iter().find(|(u, _)| u == v) {
                    Some((_, bound)) if *bound != ft => {
                        out.truncate(start);
                        return false;
                    }
                    Some(_) => {}
                    None => out.push((*v, ft)),
                }
            }
        }
    }
    true
}

/// Runs the semi-naive chase.
pub fn chase(theory: &Theory, db: &Instance, budget: ChaseBudget) -> Chase {
    run_chase(theory, db, budget, true, false)
}

/// Runs the naive chase (re-enumerates all triggers each round). Used to
/// validate the semi-naive engine; produces identical `Ch_i` sets.
pub fn chase_naive(theory: &Theory, db: &Instance, budget: ChaseBudget) -> Chase {
    run_chase(theory, db, budget, false, false)
}

/// Runs the semi-naive chase recording **all** derivations of every fact
/// (needed to quantify over the paper's ancestor functions, Appendix A —
/// e.g. the worst-case ancestor sets of Example 66).
pub fn chase_all(theory: &Theory, db: &Instance, budget: ChaseBudget) -> Chase {
    run_chase(theory, db, budget, true, true)
}

fn run_chase(
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    semi_naive: bool,
    record_all: bool,
) -> Chase {
    let plans = plans(theory);
    let mut instance = db.clone();
    let mut round_of: Vec<usize> = vec![0; instance.len()];
    let mut derivations: Vec<Option<Derivation>> = vec![None; instance.len()];
    let mut all_derivations: Vec<Vec<Derivation>> = vec![Vec::new(); instance.len()];
    let mut domain_round: HashMap<TermId, usize> =
        instance.domain().iter().map(|t| (*t, 0)).collect();
    let mut outcome = ChaseOutcome::Exhausted;
    let mut rounds = 0;

    for round in 1..=budget.max_rounds {
        let prev = round - 1;
        // New facts of this round, collected before insertion ("parallel"
        // round semantics: triggers only see Ch_{round-1}).
        let mut fresh: Vec<(Fact, Derivation)> = Vec::new();
        let mut fresh_set: HashSet<Fact> = HashSet::new();
        let mut fresh_extra: Vec<(Fact, Derivation)> = Vec::new();
        let mut existing_extra: Vec<(usize, Derivation)> = Vec::new();

        let delta_fact_idxs: Vec<usize> = if semi_naive {
            (0..instance.len()).filter(|&i| round_of[i] == prev).collect()
        } else {
            (0..instance.len()).collect()
        };
        let delta_terms: Vec<TermId> = if semi_naive {
            instance
                .domain()
                .iter()
                .copied()
                .filter(|t| domain_round.get(t) == Some(&prev))
                .collect()
        } else {
            instance.domain().to_vec()
        };

        for (ridx, plan) in plans.iter().enumerate() {
            let body = plan.rule.body();
            let mut emit = |asg: &[Option<TermId>],
                            fresh: &mut Vec<(Fact, Derivation)>,
                            fresh_set: &mut HashSet<Fact>| {
                let (facts, frontier) = plan
                    .skolemized
                    .apply(plan.rule, |v| asg[v.index()].expect("bound body var"));
                let mut trigger = Vec::with_capacity(plan.regular.len());
                for &bi in &plan.regular {
                    let ground = ground_atom(&body[bi], asg);
                    if let Some(idx) = instance_index_of(&instance, &ground) {
                        trigger.push(idx);
                    }
                }
                for fact in facts {
                    let deriv = Derivation {
                        rule: ridx,
                        trigger: trigger.clone(),
                        frontier: frontier.clone(),
                        round,
                    };
                    if instance.contains(&fact) {
                        if record_all {
                            if let Some(idx) = instance_index_of(&instance, &fact) {
                                existing_extra.push((idx, deriv));
                            }
                        }
                    } else if fresh_set.insert(fact.clone()) {
                        fresh.push((fact, deriv));
                    } else if record_all {
                        fresh_extra.push((fact, deriv));
                    }
                }
            };

            if semi_naive {
                // (a) Force each regular body atom into the fact delta.
                for (k, &bi) in plan.regular.iter().enumerate() {
                    let atom = &body[bi];
                    let rest: Vec<QAtom> = plan
                        .regular
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != k)
                        .map(|(_, &b)| body[b].clone())
                        .chain(plan.dom.iter().map(|&b| body[b].clone()))
                        .collect();
                    for &fi in &delta_fact_idxs {
                        let fact = instance.fact(fi);
                        if fact.pred != atom.pred {
                            continue;
                        }
                        let mut fixed = Vec::new();
                        if !unify_atom_fact(atom, fact, &mut fixed) {
                            continue;
                        }
                        for_each_match(&rest, plan.nvars, &instance, &fixed, |asg| {
                            emit(asg, &mut fresh, &mut fresh_set);
                            true
                        });
                    }
                }
                // (b) Force each dom-scoped variable onto the domain delta.
                for (k, &bi) in plan.dom.iter().enumerate() {
                    let atom = &body[bi];
                    let Some(v) = atom.args[0].as_var() else { continue };
                    let rest: Vec<QAtom> = plan
                        .regular
                        .iter()
                        .map(|&b| body[b].clone())
                        .chain(
                            plan.dom
                                .iter()
                                .enumerate()
                                .filter(|(j, _)| *j != k)
                                .map(|(_, &b)| body[b].clone()),
                        )
                        .collect();
                    for &t in &delta_terms {
                        let fixed = [(v, t)];
                        for_each_match(&rest, plan.nvars, &instance, &fixed, |asg| {
                            emit(asg, &mut fresh, &mut fresh_set);
                            true
                        });
                    }
                }
                // (c) Rules with no body at all fire exactly once, in round 1.
                if body.is_empty() && round == 1 {
                    for_each_match(&[], plan.nvars, &instance, &[], |asg| {
                        emit(asg, &mut fresh, &mut fresh_set);
                        true
                    });
                }
            } else {
                for_each_match(body, plan.nvars, &instance, &[], |asg| {
                    emit(asg, &mut fresh, &mut fresh_set);
                    true
                });
            }
        }

        if fresh.is_empty() {
            outcome = ChaseOutcome::Fixpoint;
            break;
        }
        for (fact, deriv) in fresh {
            for t in fact.terms() {
                domain_round.entry(t).or_insert(round);
            }
            if instance.insert(fact) {
                round_of.push(round);
                all_derivations.push(vec![deriv.clone()]);
                derivations.push(Some(deriv));
            }
        }
        if record_all {
            for (idx, deriv) in existing_extra {
                if !all_derivations[idx].contains(&deriv) {
                    all_derivations[idx].push(deriv);
                }
            }
            for (fact, deriv) in fresh_extra {
                if let Some(idx) = instance_index_of(&instance, &fact) {
                    if !all_derivations[idx].contains(&deriv) {
                        all_derivations[idx].push(deriv);
                    }
                }
            }
        }
        rounds = round;
        if instance.len() > budget.max_facts {
            break;
        }
    }

    if !record_all {
        for d in &mut all_derivations {
            d.clear();
        }
    }
    Chase {
        instance,
        round_of,
        rounds,
        outcome,
        derivations,
        all_derivations,
    }
}

fn ground_atom(atom: &QAtom, asg: &[Option<TermId>]) -> Fact {
    Fact::new(
        atom.pred,
        atom.args
            .iter()
            .map(|t| match t {
                QTerm::Var(v) => asg[v.index()].expect("bound body var"),
                QTerm::Const(c) => TermId::constant(*c),
            })
            .collect::<Vec<_>>(),
    )
}

fn instance_index_of(inst: &Instance, fact: &Fact) -> Option<usize> {
    // Use the most selective positional index to find the fact's position.
    if fact.args.is_empty() {
        return inst.with_pred(fact.pred).iter().copied().find(|&i| inst.fact(i) == fact);
    }
    inst.with_pred_pos_term(fact.pred, 0, fact.args[0])
        .iter()
        .copied()
        .find(|&i| inst.fact(i) == fact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_instance, parse_query, parse_theory, Symbol};

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    #[test]
    fn example_1_and_7_mother_chain() {
        // Examples 1 and 7 of the paper.
        let t = parse_theory(
            "human(Y) -> mother(Y, Z).\n\
             mother(X, Y) -> human(Y).",
        )
        .unwrap();
        let d = parse_instance("human(abel).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(6));
        assert_eq!(ch.outcome, ChaseOutcome::Exhausted); // infinite chase
        // Ch_1 adds mother(abel, mum(abel)).
        let ch1 = ch.prefix(1);
        assert_eq!(ch1.len(), 2);
        // The paper's query: ∃y,z mother(abel,y), mother(y,z).
        let q = parse_query("? :- mother(abel, Y), mother(Y, Z).").unwrap();
        assert!(qr_hom::holds(&q, &ch.prefix(3), &[]));
        assert!(!qr_hom::holds(&q, &ch.prefix(2), &[]));
    }

    #[test]
    fn exercise_12_forward_paths() {
        // T_p: E(x,y) -> ∃z E(y,z); chase grows one edge per element per round.
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(5));
        assert_eq!(ch.instance.len(), 6);
        assert_eq!(ch.rounds, 5);
    }

    #[test]
    fn datalog_fixpoint() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::default());
        assert!(ch.terminated());
        assert_eq!(ch.instance.len(), 6); // transitive closure of a 3-path
    }

    #[test]
    fn semi_naive_equals_naive_per_round() {
        let t = parse_theory(
            "e(X,Y) -> e(Y,Z).\n\
             e(X,Y), e(Y,Z) -> f(X,Z).\n\
             f(X,Y) -> g(Y).",
        )
        .unwrap();
        let d = parse_instance("e(a,b). e(b,c).").unwrap();
        let fast = chase(&t, &d, ChaseBudget::rounds(4));
        let slow = chase_naive(&t, &d, ChaseBudget::rounds(4));
        assert_eq!(fast.rounds, slow.rounds);
        for n in 0..=fast.rounds {
            assert_eq!(fast.prefix(n), slow.prefix(n), "round {n} differs");
        }
    }

    #[test]
    fn observation_8_literal_equality() {
        // D ⊆ F ⊆ Ch(T,D) implies Ch(T,F) = Ch(T,D), literally.
        let t = parse_theory("human(Y) -> mother(Y, Z).\nmother(X, Y) -> human(Y).").unwrap();
        let d = parse_instance("human(abel).").unwrap();
        let ch_d = chase(&t, &d, ChaseBudget::rounds(8));
        let f = ch_d.prefix(3); // D ⊆ F ⊆ Ch(T,D)
        let ch_f = chase(&t, &f, ChaseBudget::rounds(8));
        // Compare on equal depth: Ch_8(D) ⊆ Ch_8(F) ⊆ Ch_11(D); check the
        // deep prefixes agree where both are defined.
        assert!(ch_d.instance.subset_of(&ch_f.instance));
    }

    #[test]
    fn dom_rules_fire_on_all_terms() {
        // Pins rule of T_d: every domain element sprouts an r-edge.
        let t = parse_theory("dom(X) -> r(X, Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(2));
        // Round 1: r(a,z_a), r(b,z_b); round 2: pins fire on z_a, z_b.
        assert_eq!(ch.prefix(1).len(), 1 + 2);
        assert_eq!(ch.prefix(2).len(), 1 + 2 + 2);
    }

    #[test]
    fn empty_body_rule_fires_once() {
        let t = parse_theory("true -> r(X,X), g(X,X).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(4));
        assert!(ch.terminated());
        assert_eq!(ch.instance.len(), 3);
        let loops: Vec<&Fact> = ch.delta(1);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].args[0], loops[1].args[0]);
    }

    #[test]
    fn provenance_recorded() {
        let t = parse_theory("e(X,Y), p(Y) -> f(X).").unwrap();
        let d = parse_instance("e(a,b). p(b).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::default());
        assert!(ch.terminated());
        let fact = Fact::new(qr_syntax::Pred::new("f", 1), vec![c("a")]);
        let idx = ch
            .instance
            .iter()
            .position(|f| *f == fact)
            .expect("derived fact present");
        let deriv = ch.derivations[idx].as_ref().unwrap();
        assert_eq!(deriv.rule, 0);
        assert_eq!(deriv.trigger.len(), 2);
        assert_eq!(deriv.frontier, vec![c("a")]);
    }

    #[test]
    fn max_facts_budget_respected() {
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let budget = ChaseBudget {
            max_rounds: 1000,
            max_facts: 50,
        };
        let ch = chase(&t, &d, budget);
        assert_eq!(ch.outcome, ChaseOutcome::Exhausted);
        assert!(ch.instance.len() <= 52);
    }

    #[test]
    fn first_entailment_depth_works() {
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let q = parse_query("? :- e(X1,X2), e(X2,X3), e(X3,X4).").unwrap();
        let depth = crate::first_entailment_depth(&t, &d, &q, &[], ChaseBudget::rounds(8));
        assert_eq!(depth, Some(2));
    }
}
