//! Provenance over chase runs: birth atoms (Observation 10), frontiers
//! (Observation 9), ancestor functions (Appendix A) and minimal supports.
//!
//! The *ancestors* of a chase fact are the input facts used, transitively,
//! by its recorded derivation. As the paper's Example 66 shows, ancestor
//! sets are an artifact of the non-deterministic parent choice and can be
//! far from minimal; [`minimal_support`] therefore re-chases subsets to
//! compute an inclusion-minimal support for a query.

use std::collections::{HashMap, HashSet};

use qr_syntax::{ConjunctiveQuery, Fact, Instance, TermId, Theory};

use crate::engine::{chase, Chase, ChaseBudget};

/// Read-only provenance views over a finished chase.
pub struct Provenance<'a> {
    chase: &'a Chase,
    facts_by_term: HashMap<TermId, Vec<usize>>,
}

impl<'a> Provenance<'a> {
    /// Builds the per-term fact index.
    pub fn new(chase: &'a Chase) -> Provenance<'a> {
        let mut facts_by_term: HashMap<TermId, Vec<usize>> = HashMap::new();
        for (i, f) in chase.instance.iter().enumerate() {
            let mut seen_in_fact: HashSet<TermId> = HashSet::new();
            for t in f.terms() {
                if seen_in_fact.insert(t) {
                    facts_by_term.entry(t).or_default().push(i);
                }
            }
        }
        Provenance {
            chase,
            facts_by_term,
        }
    }

    /// The frontier `fr(α)` of a derived fact (Observation 9); `None` for
    /// input facts.
    pub fn frontier_of(&self, fact_idx: usize) -> Option<&[TermId]> {
        self.chase.derivations[fact_idx]
            .as_ref()
            .map(|d| d.frontier.as_slice())
    }

    /// The birth atom of a chase-invented term (Observation 10): the unique
    /// fact in which the term occurs outside the frontier. Returns `None`
    /// for constants of the input instance.
    pub fn birth_atom(&self, term: TermId) -> Option<usize> {
        if term.is_const() {
            return None;
        }
        let candidates = self.facts_by_term.get(&term)?;
        candidates
            .iter()
            .copied()
            .find(|&i| match self.frontier_of(i) {
                Some(frontier) => !frontier.contains(&term),
                None => false,
            })
    }

    /// The ancestor set of a fact: input facts reachable through recorded
    /// derivations (one particular ancestor function in the paper's sense).
    pub fn ancestors(&self, fact_idx: usize) -> HashSet<usize> {
        let mut out = HashSet::new();
        let mut stack = vec![fact_idx];
        let mut seen = HashSet::new();
        while let Some(i) = stack.pop() {
            if !seen.insert(i) {
                continue;
            }
            match &self.chase.derivations[i] {
                None => {
                    out.insert(i);
                }
                Some(d) => stack.extend(d.trigger.iter().copied()),
            }
        }
        out
    }

    /// The **adversarial** ancestor set: among all ancestor functions (one
    /// parent-derivation choice per fact; requires a chase built with
    /// [`crate::engine::chase_all`]), greedily picks, per fact in
    /// derivation order, the derivation maximizing the resulting ancestor
    /// set. This witnesses the paper's point (Example 66) that ancestor
    /// sets of the raw theory can be made unboundedly large. When
    /// `connected_only` is set, nullary parent facts are skipped — the
    /// *connected ancestors* `canc` of Appendix A.
    pub fn adversarial_ancestors(&self, fact_idx: usize, connected_only: bool) -> HashSet<usize> {
        let mut table = self.adversarial_table(connected_only);
        table.swap_remove(fact_idx)
    }

    /// `anc[i]` for every fact, computed bottom-up (triggers reference
    /// strictly earlier rounds, and facts are stored in round order).
    fn adversarial_table(&self, connected_only: bool) -> Vec<HashSet<usize>> {
        let n = self.chase.instance.len();
        assert!(
            self.chase
                .all_derivations
                .iter()
                .take(n)
                .zip(&self.chase.derivations)
                .all(|(all, first)| first.is_none() || !all.is_empty()),
            "adversarial ancestors require a chase_all run"
        );
        let mut anc: Vec<HashSet<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            if self.chase.derivations[i].is_none() {
                let mut s = HashSet::new();
                s.insert(i);
                anc.push(s);
                continue;
            }
            let mut best: HashSet<usize> = HashSet::new();
            for d in &self.chase.all_derivations[i] {
                let mut s = HashSet::new();
                for &p in &d.trigger {
                    if connected_only && self.chase.instance.fact(p).pred.arity() == 0 {
                        continue;
                    }
                    s.extend(anc[p].iter().copied());
                }
                if s.len() > best.len() {
                    best = s;
                }
            }
            anc.push(best);
        }
        anc
    }

    /// The largest adversarial ancestor set over all derived facts.
    pub fn max_adversarial_ancestors(&self, connected_only: bool) -> usize {
        let table = self.adversarial_table(connected_only);
        (0..self.chase.instance.len())
            .filter(|&i| self.chase.derivations[i].is_some())
            .map(|i| table[i].len())
            .max()
            .unwrap_or(0)
    }

    /// The ancestor set as an instance.
    pub fn ancestor_instance(&self, fact_idx: usize) -> Instance {
        Instance::from_facts(
            self.ancestors(fact_idx)
                .into_iter()
                .map(|i| self.chase.instance.fact(i).to_fact()),
        )
    }
}

/// Greedily shrinks `base` to an inclusion-minimal subset still satisfying
/// `keep`. Requires `keep(base)`; the result satisfies `keep` and dropping
/// any single fact from it falsifies `keep`.
pub fn minimal_subset(base: &Instance, mut keep: impl FnMut(&Instance) -> bool) -> Instance {
    assert!(
        keep(base),
        "minimal_subset: base does not satisfy the predicate"
    );
    let mut current = base.clone();
    let facts: Vec<Fact> = base.iter().map(|f| f.to_fact()).collect();
    for f in facts {
        if !current.contains(&f) {
            continue;
        }
        let candidate = current.without_fact(&f);
        if keep(&candidate) {
            current = candidate;
        }
    }
    current
}

/// An inclusion-minimal subset `F ⊆ D` with `Ch_budget(T,F) ⊨ φ(ā)`, or
/// `None` if even the full instance does not entail the query within budget.
///
/// This is the quantity behind the paper's locality experiments: a local
/// theory admits supports of size `≤ l_T` per query atom (Definition 30),
/// while the theories of Examples 39/42 and `T_d` need unboundedly large
/// supports.
pub fn minimal_support(
    theory: &Theory,
    db: &Instance,
    query: &ConjunctiveQuery,
    answer: &[TermId],
    budget: ChaseBudget,
) -> Option<Instance> {
    let holds = |inst: &Instance| {
        let ch = chase(theory, inst, budget);
        qr_hom::holds(query, &ch.instance, answer)
    };
    if !holds(db) {
        return None;
    }
    Some(minimal_subset(db, holds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_instance, parse_query, parse_theory, Symbol};

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    #[test]
    fn birth_atoms_unique() {
        let t = parse_theory("human(Y) -> mother(Y, Z).\nmother(X,Y) -> human(Y).").unwrap();
        let d = parse_instance("human(abel).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::rounds(4));
        let prov = Provenance::new(&ch);
        // Every non-constant term has exactly one birth atom.
        for &term in ch.instance.domain() {
            if term.is_const() {
                assert!(prov.birth_atom(term).is_none());
            } else {
                let b = prov.birth_atom(term).expect("birth atom exists");
                let fact = ch.instance.fact(b);
                assert!(fact.terms().any(|t| t == term));
            }
        }
    }

    #[test]
    fn ancestors_reach_input() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let ch = chase(&t, &d, ChaseBudget::default());
        let prov = Provenance::new(&ch);
        let target = Fact::new(qr_syntax::Pred::new("e", 2), vec![c("a"), c("d")]);
        let idx = ch.instance.iter().position(|f| f == target).unwrap();
        let anc = prov.ancestor_instance(idx);
        assert_eq!(anc, d); // e(a,d) needs all three input edges
    }

    #[test]
    fn minimal_support_shrinks() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(x,y).").unwrap();
        let q = parse_query("? :- e(a, c).").unwrap();
        let sup = minimal_support(&t, &d, &q, &[], ChaseBudget::default()).unwrap();
        assert_eq!(sup, parse_instance("e(a,b). e(b,c).").unwrap());
    }

    #[test]
    fn minimal_support_none_when_not_entailed() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let q = parse_query("? :- e(a, c).").unwrap();
        assert!(minimal_support(&t, &d, &q, &[], ChaseBudget::default()).is_none());
    }

    #[test]
    fn minimal_subset_is_minimal() {
        let d = parse_instance("p(a). p(b). p(c). q(a).").unwrap();
        // keep: contains q(a) and at least 2 facts.
        let keep = |i: &Instance| i.len() >= 2 && i.iter().any(|f| f.pred.name().as_str() == "q");
        let m = minimal_subset(&d, keep);
        assert_eq!(m.len(), 2);
        assert!(m.iter().any(|f| f.pred.name().as_str() == "q"));
    }
}
