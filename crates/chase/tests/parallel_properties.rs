//! Determinism contract of the parallel chase: for every thread count the
//! engine must replay the sequential run exactly — same fact stream in the
//! same order (hence the same Skolem term assignments), same provenance,
//! and the same per-round trigger/candidate counters.

use qr_chase::{chase_all_with, chase_with, Chase, ChaseBudget};
use qr_exec::Executor;
use qr_syntax::{parse_instance, parse_theory, Instance, Theory};
use qr_testkit::{check, Rng};

fn edge_instance(rng: &mut Rng) -> Instance {
    let n = rng.range(1, 8);
    let mut src = String::new();
    for _ in 0..n {
        let a = rng.below(5);
        let b = rng.below(5);
        src.push_str(&format!("e(w{a}, w{b}).\n"));
    }
    parse_instance(&src).unwrap()
}

/// Theories covering every parallel task shape: per-predicate delta
/// chunks, dom-variable term sweeps (including ground-dom bodies), and
/// multi-delta-atom triggers.
fn small_theory(rng: &mut Rng) -> Theory {
    let sources = [
        "e(X,Y) -> e(Y,Z).",
        "e(X,Y), e(Y,Z) -> e(X,Z).",
        "e(X,Y) -> p(Y).\np(X) -> e(X,W).",
        "true -> r(X,X).\ndom(X) -> r(X,Z).",
        "dom(w1) -> p(w1).\np(X) -> e(X,W).",
        "e(X,Y) -> e(Y,Z).\ndom(w0), dom(X) -> q(X).",
        "e(X,Y), e(Y,Z) -> f(X,Z).\nf(X,Y), f(Y,Z) -> g(X,Z).",
        "e(X,Y), dom(Z) -> h(Y,Z).\nh(X,Y) -> e(Y,W).",
    ];
    parse_theory(rng.pick::<&str>(&sources)).unwrap()
}

/// Deep equality of two runs: fact stream (order included), first and full
/// derivations, rounds, outcome, and the deterministic stats counters
/// (everything except wall times and the thread count itself).
fn assert_runs_identical(seq: &Chase, par: &Chase, ctx: &str) {
    let sf: Vec<_> = seq.instance.iter().collect();
    let pf: Vec<_> = par.instance.iter().collect();
    assert_eq!(sf, pf, "fact stream differs: {ctx}");
    assert_eq!(seq.round_of, par.round_of, "rounds of facts differ: {ctx}");
    assert_eq!(seq.rounds, par.rounds, "round count differs: {ctx}");
    assert_eq!(seq.outcome, par.outcome, "outcome differs: {ctx}");
    assert_eq!(
        seq.derivations, par.derivations,
        "first derivations differ: {ctx}"
    );
    assert_eq!(
        seq.all_derivations, par.all_derivations,
        "derivation sets differ: {ctx}"
    );
    assert_eq!(
        seq.stats.peak_facts, par.stats.peak_facts,
        "peak_facts differs: {ctx}"
    );
    assert_eq!(
        seq.stats.bytes_facts, par.stats.bytes_facts,
        "bytes_facts differs: {ctx}"
    );
    assert_eq!(
        seq.stats.bytes_index, par.stats.bytes_index,
        "bytes_index differs: {ctx}"
    );
    assert_eq!(
        seq.stats.bytes_tuples, par.stats.bytes_tuples,
        "bytes_tuples differs: {ctx}"
    );
    assert_eq!(
        seq.stats.rounds.len(),
        par.stats.rounds.len(),
        "stats rounds differ: {ctx}"
    );
    for (s, p) in seq.stats.rounds.iter().zip(&par.stats.rounds) {
        assert_eq!(s.round, p.round, "{ctx}");
        assert_eq!(s.triggers, p.triggers, "round {} triggers: {ctx}", s.round);
        assert_eq!(
            s.candidates, p.candidates,
            "round {} candidates: {ctx}",
            s.round
        );
        assert_eq!(
            s.dom_sweeps, p.dom_sweeps,
            "round {} dom_sweeps: {ctx}",
            s.round
        );
        assert_eq!(
            s.dom_pruned, p.dom_pruned,
            "round {} dom_pruned: {ctx}",
            s.round
        );
        assert_eq!(
            s.facts_added, p.facts_added,
            "round {} facts_added: {ctx}",
            s.round
        );
        assert_eq!(
            s.terms_added, p.terms_added,
            "round {} terms_added: {ctx}",
            s.round
        );
    }
}

#[test]
fn parallel_chase_replays_sequential_run() {
    check("parallel_chase_replays_sequential_run", 40, |rng| {
        let theory = small_theory(rng);
        let db = edge_instance(rng);
        let budget = ChaseBudget {
            max_rounds: 4,
            max_facts: 50_000,
        };
        let seq = chase_with(&theory, &db, budget, &Executor::sequential());
        for threads in [2, 4] {
            let par = chase_with(&theory, &db, budget, &Executor::with_threads(threads));
            assert_eq!(par.stats.threads, threads);
            assert_runs_identical(
                &seq,
                &par,
                &format!("{} threads, theory {}\ndb {}", threads, theory.render(), db),
            );
        }
    });
}

#[test]
fn parallel_chase_all_records_identical_provenance() {
    check(
        "parallel_chase_all_records_identical_provenance",
        30,
        |rng| {
            let theory = small_theory(rng);
            let db = edge_instance(rng);
            let budget = ChaseBudget {
                max_rounds: 3,
                max_facts: 20_000,
            };
            let seq = chase_all_with(&theory, &db, budget, &Executor::sequential());
            for threads in [2, 4] {
                let par = chase_all_with(&theory, &db, budget, &Executor::with_threads(threads));
                assert_runs_identical(
                    &seq,
                    &par,
                    &format!("{} threads, theory {}\ndb {}", threads, theory.render(), db),
                );
            }
        },
    );
}
