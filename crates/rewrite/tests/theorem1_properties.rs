//! Theorem 1's side conditions and the warm-up Exercises 14–16, tested on
//! the engine's output.

use qr_chase::{chase, ChaseBudget};
use qr_hom::containment::equivalent;
use qr_hom::{holds, holds_ucq};
use qr_rewrite::{rewrite, RewriteBudget};
use qr_syntax::{parse_instance, parse_query, parse_theory, Theory};

fn family() -> Theory {
    parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap()
}

#[test]
fn rewritings_are_minimal() {
    // Theorem 1: the set rew(ψ) is minimal (pairwise incomparable).
    let queries = [
        "?(X) :- mother(X, M).",
        "?(X) :- human(X).",
        "? :- mother(A,B), mother(B,C).",
    ];
    for src in queries {
        let q = parse_query(src).unwrap();
        let r = rewrite(&family(), &q, RewriteBudget::default()).unwrap();
        assert!(r.is_complete());
        assert!(r.is_minimal(), "non-minimal rewriting for {src}");
    }
}

#[test]
fn exercise_14_rewriting_is_unique() {
    // The rewriting set is unique up to equivalence: computing it for two
    // equivalent formulations of the same query yields equivalent sets.
    let q1 = parse_query("?(X) :- mother(X, M).").unwrap();
    let q2 = parse_query("?(X) :- mother(X, M), mother(X, M2).").unwrap(); // redundant atom
    let r1 = rewrite(&family(), &q1, RewriteBudget::default()).unwrap();
    let r2 = rewrite(&family(), &q2, RewriteBudget::default()).unwrap();
    assert!(r1.is_complete() && r2.is_complete());
    // Each disjunct of r1 is equivalent to some disjunct of r2 and back.
    for d in r1.ucq.disjuncts() {
        assert!(
            r2.ucq.disjuncts().iter().any(|e| equivalent(d, e)),
            "missing from r2: {}",
            d.render()
        );
    }
    for d in r2.ucq.disjuncts() {
        assert!(r1.ucq.disjuncts().iter().any(|e| equivalent(d, e)));
    }
}

#[test]
fn exercise_15_chase_entailment_of_a_disjunct_has_db_witness() {
    // If Ch(T,D) ⊨ φ(ā) for some φ ∈ rew(ψ), then D ⊨ φ'(ā) for some
    // φ' ∈ rew(ψ) (because Ch(Ch(D)) = Ch(D) and rew is a rewriting).
    let t = family();
    let q = parse_query("?(X) :- mother(X, M).").unwrap();
    let r = rewrite(&t, &q, RewriteBudget::default()).unwrap();
    let db = parse_instance("human(abel).").unwrap();
    let ch = chase(&t, &db, ChaseBudget::rounds(6));
    for phi in r.ucq.disjuncts() {
        for a in db.domain() {
            if holds(phi, &ch.instance, &[*a]) {
                assert!(
                    holds_ucq(&r.ucq, &db, &[*a]),
                    "no D-witness for {} at {a:?}",
                    phi.render()
                );
            }
        }
    }
}

#[test]
fn exercise_16_disjuncts_entail_the_query_over_the_chase() {
    // If φ ∈ rew(ψ) and Ch(T,D) ⊨ φ(ā), then Ch(T,D) ⊨ ψ(ā): the chase is
    // closed under chasing, so rewriting steps can be replayed forward.
    let t = family();
    let q = parse_query("?(X) :- mother(X, M).").unwrap();
    let r = rewrite(&t, &q, RewriteBudget::default()).unwrap();
    let db = parse_instance("human(abel). mother(eve, seth).").unwrap();
    let ch = chase(&t, &db, ChaseBudget::rounds(6));
    // The statement is about the full chase; on a bounded prefix the
    // frontier terms have not received their facts yet (Exercise 17's
    // delay), so restrict to interior terms.
    let first_round = ch.first_round_of_terms();
    for phi in r.ucq.disjuncts() {
        for a in ch.instance.domain() {
            if first_round[a] + 2 > ch.rounds {
                continue;
            }
            if holds(phi, &ch.instance, &[*a]) {
                assert!(
                    holds(&q, &ch.instance, &[*a]),
                    "{} held at {a:?} but the query did not",
                    phi.render()
                );
            }
        }
    }
}

#[test]
fn minimality_counterexample_is_detected() {
    // Sanity for is_minimal: a hand-built redundant UCQ is flagged.
    let t = parse_theory("p(X) -> q(X).").unwrap();
    let q = parse_query("?(X) :- q(X).").unwrap();
    let mut r = rewrite(&t, &q, RewriteBudget::default()).unwrap();
    assert!(r.is_minimal());
    // Inject a disjunct strictly contained in an existing one.
    let redundant = parse_query("?(X) :- q(X), p(Y).").unwrap();
    r.ucq.push(redundant);
    assert!(!r.is_minimal());
}
