//! Indexed database instances (fact sets).
//!
//! An [`Instance`] is a finite set of ground facts with join indexes: by
//! predicate, and by (predicate, position, term). Insertion order is
//! preserved (the chase relies on this to delimit rounds), duplicates are
//! ignored, and equality is *set* equality.
//!
//! Since the S20 storage refactor the facts live in a columnar
//! [`qr_storage::FactStore`]: argument tuples are interned once in a flat
//! arena and each fact is two `u32`s, instead of one heap-allocated
//! `Box<[TermId]>` per fact plus a second clone inside the dedup map.
//! Reads hand out [`FactRef`] views borrowing the arena; call
//! [`FactRef::to_fact`] where an owned [`Fact`] is needed. The store also
//! gives the instance O(1) prefix snapshots ([`Instance::snapshot`] /
//! [`Instance::truncated`]) and byte-level memory accounting
//! ([`Instance::stats`]), plus a versioned binary checkpoint format
//! ([`Instance::to_bytes`] / [`Instance::from_bytes`]) for chase
//! checkpoint/resume.

use std::collections::{HashMap, HashSet};
use std::fmt;

use qr_storage::{
    ByteReader, ByteWriter, DecodeError, DecodeErrorKind, FactStore, PredId, Snapshot,
};

use crate::atom::{Fact, Pred};
use crate::symbol::Symbol;
use crate::term::{SkolemFn, TermData, TermId};

pub use qr_storage::StorageStats;

/// Index of a fact within an instance (dense, insertion-ordered).
pub type FactIdx = usize;

/// A borrowed view of one fact: its predicate plus the interned argument
/// slice. `Copy`, so it can be passed around like the old `&Fact` without
/// cloning the argument tuple.
#[derive(Clone, Copy)]
pub struct FactRef<'a> {
    /// The fact's predicate.
    pub pred: Pred,
    /// The fact's arguments (a slice into the instance's tuple arena).
    pub args: &'a [TermId],
}

impl<'a> FactRef<'a> {
    /// The argument terms, in position order.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + 'a {
        self.args.iter().copied()
    }

    /// An owned copy of this fact.
    pub fn to_fact(&self) -> Fact {
        Fact::new(self.pred, self.args)
    }

    /// `true` iff every argument is a constant (no Skolem terms).
    pub fn is_original(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Maximum Skolem nesting depth over the arguments.
    pub fn term_depth(&self) -> usize {
        self.args.iter().map(|t| t.depth()).max().unwrap_or(0)
    }
}

impl PartialEq for FactRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.pred == other.pred && self.args == other.args
    }
}

impl Eq for FactRef<'_> {}

impl PartialEq<Fact> for FactRef<'_> {
    fn eq(&self, other: &Fact) -> bool {
        self.pred == other.pred && *self.args == *other.args
    }
}

impl PartialEq<FactRef<'_>> for Fact {
    fn eq(&self, other: &FactRef<'_>) -> bool {
        other == self
    }
}

impl fmt::Display for FactRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for FactRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An O(1) marker of an instance prefix, for [`Instance::restore`] /
/// [`Instance::truncated`]. Valid as long as the marked state is still a
/// prefix of the instance (facts are append-only, so any snapshot taken
/// earlier on the same growth path qualifies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstanceSnapshot {
    inner: Snapshot,
}

impl InstanceSnapshot {
    /// Number of facts in the marked prefix.
    pub fn facts(&self) -> usize {
        self.inner.facts()
    }

    /// Number of distinct domain terms in the marked prefix. The domain is
    /// append-only, so `domain()[..snap.terms()]` is exactly the active
    /// domain at snapshot time.
    pub fn terms(&self) -> usize {
        self.inner.domain()
    }
}

/// A finite set of facts with join indexes, backed by the columnar
/// `qr-storage` fact store.
#[derive(Clone, Default)]
pub struct Instance {
    store: FactStore<TermId>,
    /// Dense `PredId` → `Pred`, in first-occurrence order.
    preds: Vec<Pred>,
    pred_ids: HashMap<Pred, PredId>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Builds an instance from an iterator of facts (duplicates ignored).
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Instance {
        let mut inst = Instance::new();
        inst.extend(facts);
        inst
    }

    fn pred_id(&mut self, pred: Pred) -> PredId {
        if let Some(&id) = self.pred_ids.get(&pred) {
            return id;
        }
        let id = self.store.register_pred(pred.arity());
        self.preds.push(pred);
        self.pred_ids.insert(pred, id);
        id
    }

    /// Inserts a fact; returns `Some(idx)` with the assigned index if it
    /// was not already present, `None` for duplicates. Indices are dense
    /// and insertion-ordered, so the facts of one chase round always form
    /// a contiguous index range (the chase's delta indexes rely on this).
    pub fn insert(&mut self, fact: Fact) -> Option<FactIdx> {
        let pid = self.pred_id(fact.pred);
        self.store.insert(pid, &fact.args).map(|i| i as FactIdx)
    }

    /// Inserts all facts from the iterator.
    pub fn extend(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for f in facts {
            self.insert(f);
        }
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.index_of(fact).is_some()
    }

    /// The index of a fact, if present (O(1) hash lookups; this is how the
    /// chase records provenance without re-probing positional indexes).
    pub fn index_of(&self, fact: &Fact) -> Option<FactIdx> {
        let pid = *self.pred_ids.get(&fact.pred)?;
        self.store.lookup(pid, &fact.args).map(|i| i as FactIdx)
    }

    fn contains_ref(&self, fact: FactRef<'_>) -> bool {
        match self.pred_ids.get(&fact.pred) {
            Some(&pid) => self.store.lookup(pid, fact.args).is_some(),
            None => false,
        }
    }

    /// Number of distinct terms in the active domain. Like fact indices,
    /// the domain grows append-only, so callers can delimit "terms new
    /// since length `n`" as the suffix `domain()[n..]`.
    pub fn domain_len(&self) -> usize {
        self.store.domain().len()
    }

    /// The fact at a given index (insertion order).
    pub fn fact(&self, idx: FactIdx) -> FactRef<'_> {
        FactRef {
            pred: self.preds[self.store.pred_of(idx).index()],
            args: self.store.args(idx),
        }
    }

    /// Iterates over all facts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = FactRef<'_>> {
        (0..self.len()).map(move |i| self.fact(i))
    }

    /// Indexes of all facts with the given predicate (as `u32`, matching
    /// the store's compact postings; cast to [`FactIdx`] to address
    /// [`Instance::fact`]).
    pub fn with_pred(&self, pred: Pred) -> &[u32] {
        self.pred_ids
            .get(&pred)
            .map_or(&[], |&pid| self.store.with_pred(pid))
    }

    /// Indexes of all facts with `pred` whose argument at `pos` is `term`.
    pub fn with_pred_pos_term(&self, pred: Pred, pos: u32, term: TermId) -> &[u32] {
        self.pred_ids
            .get(&pred)
            .map_or(&[], |&pid| self.store.with_pred_pos_term(pid, pos, term))
    }

    /// The active domain, in first-occurrence order.
    pub fn domain(&self) -> &[TermId] {
        self.store.domain()
    }

    /// `true` iff `term` occurs in some fact.
    pub fn contains_term(&self, term: TermId) -> bool {
        self.store.contains_element(term)
    }

    /// All predicates that occur in the instance, in first-occurrence
    /// order.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.preds.iter().copied()
    }

    /// `true` iff every fact of `self` is a fact of `other`.
    pub fn subset_of(&self, other: &Instance) -> bool {
        self.len() <= other.len() && self.iter().all(|f| other.contains_ref(f))
    }

    /// Set union of two instances.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        out.extend(other.iter().map(|f| f.to_fact()));
        out
    }

    /// In-place set union: inserts every fact of `other` (duplicates
    /// ignored), preserving `other`'s insertion order for the new facts.
    /// This is the merge half of [`Instance::split_by`].
    pub fn union_in_place(&mut self, other: &Instance) {
        self.extend(other.iter().map(|f| f.to_fact()));
    }

    /// Partitions the facts into `shards` instances: fact `i` goes to
    /// shard `shard_of[i]`, keeping insertion order within each shard (so
    /// each part's fact `j` corresponds to the `j`-th index `i` with
    /// `shard_of[i]` equal to the part — the chase sharder's local→global
    /// renumbering relies on this). `shard_of` must cover every fact and
    /// name shards below `shards`.
    pub fn split_by(&self, shard_of: &[usize], shards: usize) -> Vec<Instance> {
        assert_eq!(shard_of.len(), self.len(), "one shard per fact");
        let mut parts = vec![Instance::new(); shards];
        for (i, &s) in shard_of.iter().enumerate() {
            let prev = parts[s].insert(self.fact(i).to_fact());
            debug_assert!(prev.is_some(), "facts of one instance are distinct");
        }
        parts
    }

    /// The substructure induced on the complement of `banned` terms: all
    /// facts that mention no banned term (the paper's `M_F`, Definition 36).
    pub fn without_terms(&self, banned: &HashSet<TermId>) -> Instance {
        Instance::from_facts(
            self.iter()
                .filter(|f| f.terms().all(|t| !banned.contains(&t)))
                .map(|f| f.to_fact()),
        )
    }

    /// The substructure induced on `kept` terms: all facts whose terms all
    /// belong to `kept`.
    pub fn induced(&self, kept: &HashSet<TermId>) -> Instance {
        Instance::from_facts(
            self.iter()
                .filter(|f| f.terms().all(|t| kept.contains(&t)))
                .map(|f| f.to_fact()),
        )
    }

    /// The facts whose terms are all constants (the "original" part).
    pub fn original_part(&self) -> Instance {
        Instance::from_facts(
            self.iter()
                .filter(FactRef::is_original)
                .map(|f| f.to_fact()),
        )
    }

    /// Removes one fact by value, returning a new instance (used for
    /// minimal-support computation).
    pub fn without_fact(&self, fact: &Fact) -> Instance {
        Instance::from_facts(self.iter().filter(|f| f != fact).map(|f| f.to_fact()))
    }

    /// Maximum Skolem nesting depth over all facts (0 for original instances).
    pub fn max_term_depth(&self) -> usize {
        self.iter().map(|f| f.term_depth()).max().unwrap_or(0)
    }

    /// Logical memory footprint of the backing store; see
    /// [`StorageStats`]. Byte counters are deterministic across platforms
    /// and `QR_THREADS` settings.
    pub fn stats(&self) -> StorageStats {
        self.store.stats()
    }

    /// What the same fact set would cost in the pre-S20 layout
    /// (`Vec<Fact>` with a boxed argument slice per fact, a `Fact`-keyed
    /// dedup map cloning every tuple, one global `(pred, pos, term)` index
    /// map, 64-bit `FactIdx` postings), using the same logical-bytes
    /// accounting as [`Instance::stats`]. Kept as the baseline for the
    /// storage regression tests.
    ///
    /// Per fact: 24 (`Fact` in the vec) plus 32 (dedup entry fixed part)
    /// plus 8 (`by_pred` posting); per argument: 4 + 4 (two tuple copies)
    /// plus 8 (index posting); per predicate: 8 (key) + 24 (list header);
    /// per index key: 16 (key) + 24 (list header).
    pub fn legacy_layout_bytes(&self) -> usize {
        let s = self.stats();
        s.facts * 64 + s.postings * 16 + self.preds.len() * 32 + s.index_keys * 40
    }

    /// Takes an O(1) snapshot of the current state; see
    /// [`InstanceSnapshot`].
    pub fn snapshot(&self) -> InstanceSnapshot {
        InstanceSnapshot {
            inner: self.store.snapshot(),
        }
    }

    /// Restores the instance to a snapshot state in place, popping the
    /// facts (and terms, tuples, predicates) inserted since in reverse
    /// order. Cost is O(facts dropped). The memory high-water mark
    /// (`stats().peak_facts`) is kept; use [`Instance::truncated`] for a
    /// fresh-looking prefix copy.
    pub fn restore(&mut self, snap: &InstanceSnapshot) {
        self.store.restore(&snap.inner);
        for pred in self.preds.drain(snap.inner.preds()..) {
            self.pred_ids.remove(&pred);
        }
    }

    /// A copy of this instance restored to `snap` — bit-identical (facts,
    /// indices, domain, stats) to an instance freshly built from the
    /// prefix insertion sequence, but O(suffix) instead of O(n). This is
    /// what makes mid-chase prefix views cheap.
    pub fn truncated(&self, snap: &InstanceSnapshot) -> Instance {
        let mut out = Instance {
            store: self.store.truncated(&snap.inner),
            preds: self.preds[..snap.inner.preds()].to_vec(),
            pred_ids: HashMap::new(),
        };
        for (i, &pred) in out.preds.iter().enumerate() {
            out.pred_ids.insert(pred, out.store.pred_id(i));
        }
        out
    }

    /// Serializes the instance to the versioned `QRIN` checkpoint format:
    /// magic + version, predicate table, topologically-ordered term table
    /// (constants and Skolem terms), then the fact stream in insertion
    /// order. Std-only, deterministic, and platform-independent.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.raw(CHECKPOINT_MAGIC);
        w.varint(CHECKPOINT_VERSION);
        w.varint(self.preds.len() as u64);
        for pred in &self.preds {
            w.str(pred.name().as_str());
            w.varint(pred.arity() as u64);
        }
        // Close the domain under Skolem subterms (a domain term's
        // arguments need not occur in any fact), then order by global
        // arena index: arguments are always interned before the terms
        // using them, so this order is topological.
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut terms: Vec<TermId> = Vec::new();
        let mut stack: Vec<TermId> = self.domain().to_vec();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            terms.push(t);
            if let TermData::Skolem(_, args) = t.data() {
                stack.extend(args);
            }
        }
        terms.sort_by_key(|t| t.index());
        let local: HashMap<TermId, u64> = terms
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        w.varint(terms.len() as u64);
        for &t in &terms {
            match t.data() {
                TermData::Const(name) => {
                    w.varint(0);
                    w.str(name.as_str());
                }
                TermData::Skolem(f, args) => {
                    w.varint(1);
                    w.str(f.tag().as_str());
                    w.varint(args.len() as u64);
                    for a in args {
                        w.varint(local[&a]);
                    }
                }
            }
        }
        w.varint(self.len() as u64);
        for fact in self.iter() {
            w.varint(self.pred_ids[&fact.pred].index() as u64);
            for t in fact.terms() {
                w.varint(local[&t]);
            }
        }
        w.into_vec()
    }

    /// Decodes a checkpoint produced by [`Instance::to_bytes`]. Within one
    /// process the round-trip is bit-identical (same `FactIdx` stream,
    /// domain order, indices, and stats), because terms re-intern to the
    /// same ids and facts are replayed in insertion order.
    pub fn from_bytes(bytes: &[u8]) -> Result<Instance, DecodeError> {
        let mut r = ByteReader::new(bytes);
        if r.raw(CHECKPOINT_MAGIC.len())? != CHECKPOINT_MAGIC {
            return Err(DecodeError::at(0, DecodeErrorKind::BadMagic));
        }
        let at = r.pos();
        let version = r.varint()?;
        if version != CHECKPOINT_VERSION {
            return Err(DecodeError::at(
                at,
                DecodeErrorKind::UnsupportedVersion(version),
            ));
        }
        let pred_count = r.varint()? as usize;
        let mut preds: Vec<Pred> = Vec::with_capacity(pred_count);
        for _ in 0..pred_count {
            let name = r.str()?;
            let at = r.pos();
            let arity = r.varint()?;
            let arity = u32::try_from(arity)
                .map_err(|_| DecodeError::at(at, DecodeErrorKind::Malformed("arity overflow")))?;
            preds.push(Pred::new(Symbol::intern(name), arity));
        }
        let term_count = r.varint()? as usize;
        let mut terms: Vec<TermId> = Vec::with_capacity(term_count);
        for _ in 0..term_count {
            let at = r.pos();
            match r.varint()? {
                0 => terms.push(TermId::constant(Symbol::intern(r.str()?))),
                1 => {
                    let tag = Symbol::intern(r.str()?);
                    let argc = r.varint()? as usize;
                    let mut args = Vec::with_capacity(argc);
                    for _ in 0..argc {
                        let at = r.pos();
                        let a = r.varint()? as usize;
                        let &t = terms.get(a).ok_or(DecodeError::at(
                            at,
                            DecodeErrorKind::Malformed("forward term reference"),
                        ))?;
                        args.push(t);
                    }
                    let f = SkolemFn::intern(tag, argc as u32);
                    terms.push(TermId::skolem(f, &args));
                }
                _ => {
                    return Err(DecodeError::at(
                        at,
                        DecodeErrorKind::Malformed("unknown term tag"),
                    ))
                }
            }
        }
        let fact_count = r.varint()? as usize;
        let mut inst = Instance::new();
        for _ in 0..fact_count {
            let at = r.pos();
            let p = r.varint()? as usize;
            let pred = *preds.get(p).ok_or(DecodeError::at(
                at,
                DecodeErrorKind::Malformed("predicate id out of range"),
            ))?;
            let mut args = Vec::with_capacity(pred.arity() as usize);
            for _ in 0..pred.arity() {
                let at = r.pos();
                let a = r.varint()? as usize;
                let &t = terms.get(a).ok_or(DecodeError::at(
                    at,
                    DecodeErrorKind::Malformed("term id out of range"),
                ))?;
                args.push(t);
            }
            if inst.insert(Fact::new(pred, args)).is_none() {
                return Err(DecodeError::at(
                    at,
                    DecodeErrorKind::Malformed("duplicate fact in stream"),
                ));
            }
        }
        if !r.is_at_end() {
            return Err(r.error(DecodeErrorKind::Malformed("trailing bytes")));
        }
        Ok(inst)
    }
}

const CHECKPOINT_MAGIC: &[u8] = b"QRIN";
const CHECKPOINT_VERSION: u64 = 1;

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.subset_of(other)
    }
}

impl Eq for Instance {}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        Instance::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    fn e(a: &str, b: &str) -> Fact {
        Fact::new(Pred::new("e", 2), vec![c(a), c(b)])
    }

    #[test]
    fn insert_dedups_and_indexes() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert(e("a", "b")), Some(0));
        assert_eq!(inst.insert(e("a", "b")), None);
        assert_eq!(inst.insert(e("b", "c")), Some(1));
        assert_eq!(inst.index_of(&e("a", "b")), Some(0));
        assert_eq!(inst.index_of(&e("b", "c")), Some(1));
        assert_eq!(inst.index_of(&e("c", "a")), None);
        assert_eq!(inst.domain_len(), 3);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.with_pred(Pred::new("e", 2)).len(), 2);
        assert_eq!(
            inst.with_pred_pos_term(Pred::new("e", 2), 0, c("b")),
            &[1u32]
        );
        assert_eq!(inst.domain(), &[c("a"), c("b"), c("c")]);
    }

    #[test]
    fn set_equality_ignores_order() {
        let i1 = Instance::from_facts([e("a", "b"), e("b", "c")]);
        let i2 = Instance::from_facts([e("b", "c"), e("a", "b")]);
        assert_eq!(i1, i2);
        let i3 = Instance::from_facts([e("a", "b")]);
        assert_ne!(i1, i3);
        assert!(i3.subset_of(&i1));
        assert!(!i1.subset_of(&i3));
    }

    #[test]
    fn induced_and_banned_substructures() {
        let inst = Instance::from_facts([e("a", "b"), e("b", "c"), e("c", "a")]);
        let banned: HashSet<_> = [c("c")].into_iter().collect();
        let m = inst.without_terms(&banned);
        assert_eq!(m, Instance::from_facts([e("a", "b")]));
        let kept: HashSet<_> = [c("a"), c("b")].into_iter().collect();
        assert_eq!(inst.induced(&kept), Instance::from_facts([e("a", "b")]));
    }

    #[test]
    fn split_by_partitions_in_order_and_merges_back() {
        let inst = Instance::from_facts([e("a", "b"), e("c", "d"), e("b", "a"), e("x", "y")]);
        let parts = inst.split_by(&[0, 1, 0, 2], 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], Instance::from_facts([e("a", "b"), e("b", "a")]));
        // Insertion order inside a part follows the original stream.
        assert_eq!(parts[0].fact(0), e("a", "b"));
        assert_eq!(parts[0].fact(1), e("b", "a"));
        assert_eq!(parts[1], Instance::from_facts([e("c", "d")]));
        assert_eq!(parts[2], Instance::from_facts([e("x", "y")]));
        let mut merged = Instance::new();
        for p in &parts {
            merged.union_in_place(p);
        }
        assert_eq!(merged, inst);
    }

    #[test]
    fn union_and_without_fact() {
        let i1 = Instance::from_facts([e("a", "b")]);
        let i2 = Instance::from_facts([e("b", "c")]);
        let u = i1.union(&i2);
        assert_eq!(u.len(), 2);
        assert_eq!(u.without_fact(&e("a", "b")), i2);
    }

    #[test]
    fn fact_refs_compare_and_render_like_facts() {
        let inst = Instance::from_facts([e("a", "b")]);
        let fr = inst.fact(0);
        let owned = e("a", "b");
        assert!(fr == owned);
        assert!(owned == fr);
        assert!(fr != e("b", "a"));
        assert_eq!(format!("{fr}"), format!("{owned}"));
        assert_eq!(fr.to_fact(), owned);
        assert!(fr.is_original());
        assert_eq!(fr.term_depth(), 0);
    }

    #[test]
    fn snapshot_truncated_equals_fresh_prefix() {
        let mut inst = Instance::from_facts([e("a", "b"), e("b", "c")]);
        let snap = inst.snapshot();
        assert_eq!(snap.facts(), 2);
        assert_eq!(snap.terms(), 3); // a, b, c
        inst.extend([e("c", "a"), e("c", "c")]);
        assert_eq!(&inst.domain()[..snap.terms()], &[c("a"), c("b"), c("c")]);
        let trunc = inst.truncated(&snap);
        let fresh = Instance::from_facts([e("a", "b"), e("b", "c")]);
        assert_eq!(trunc.len(), 2);
        assert_eq!(trunc.domain(), fresh.domain());
        assert_eq!(trunc.stats(), fresh.stats());
        assert_eq!(trunc, fresh);
        // The truncated copy is fully functional: inserts resume with
        // dense indices and correct indexing.
        let mut t = trunc;
        assert_eq!(t.insert(e("c", "a")), Some(2));
        assert_eq!(t.with_pred_pos_term(Pred::new("e", 2), 0, c("c")), &[2u32]);
        // The original is untouched.
        assert_eq!(inst.len(), 4);
    }

    #[test]
    fn restore_drops_late_predicates() {
        let mut inst = Instance::from_facts([e("a", "b")]);
        let snap = inst.snapshot();
        inst.insert(Fact::new(Pred::new("p", 1), vec![c("z")]));
        inst.restore(&snap);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.preds().count(), 1);
        assert!(!inst.contains_term(c("z")));
        // peak_facts survives an in-place restore.
        assert_eq!(inst.stats().peak_facts, 2);
        // The freed predicate can be re-registered cleanly.
        assert_eq!(
            inst.insert(Fact::new(Pred::new("p", 1), vec![c("z")])),
            Some(1)
        );
        assert_eq!(inst.with_pred(Pred::new("p", 1)), &[1u32]);
    }

    #[test]
    fn stats_beat_legacy_layout() {
        let mut inst = Instance::new();
        for i in 0..50 {
            inst.insert(e(&format!("v{i}"), &format!("v{}", (i + 1) % 50)));
        }
        let s = inst.stats();
        assert_eq!(s.facts, 50);
        assert_eq!(s.postings, 100);
        assert!(s.bytes_total() < inst.legacy_layout_bytes());
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_identical() {
        let f = SkolemFn::intern(Symbol::intern("sk_inst_test"), 1);
        let sk = TermId::skolem(f, &[c("a")]);
        let sksk = TermId::skolem(f, &[sk]);
        let mut inst = Instance::from_facts([e("a", "b")]);
        inst.insert(Fact::new(Pred::new("r", 2), vec![c("a"), sksk]));
        let bytes = inst.to_bytes();
        let back = Instance::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), inst.len());
        let orig: Vec<Fact> = inst.iter().map(|f| f.to_fact()).collect();
        let dec: Vec<Fact> = back.iter().map(|f| f.to_fact()).collect();
        assert_eq!(orig, dec);
        assert_eq!(back.domain(), inst.domain());
        assert_eq!(back.stats(), inst.stats());
        assert_eq!(
            back.with_pred_pos_term(Pred::new("r", 2), 1, sksk),
            inst.with_pred_pos_term(Pred::new("r", 2), 1, sksk)
        );
    }

    #[test]
    fn checkpoint_decode_rejects_garbage() {
        assert_eq!(
            Instance::from_bytes(b"nope"),
            Err(DecodeError::at(0, DecodeErrorKind::BadMagic))
        );
        assert_eq!(
            Instance::from_bytes(b"QRI"),
            Err(DecodeError::at(0, DecodeErrorKind::UnexpectedEof))
        );
        let mut bytes = Instance::from_facts([e("a", "b")]).to_bytes();
        let end = bytes.len();
        bytes.push(0);
        assert_eq!(
            Instance::from_bytes(&bytes),
            Err(DecodeError::at(
                end,
                DecodeErrorKind::Malformed("trailing bytes")
            ))
        );
        // Bump the version byte (right after the 4-byte magic).
        let mut vbytes = Instance::new().to_bytes();
        vbytes[4] = 9;
        assert_eq!(
            Instance::from_bytes(&vbytes),
            Err(DecodeError::at(4, DecodeErrorKind::UnsupportedVersion(9)))
        );
    }
}
