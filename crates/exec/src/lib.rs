//! `qr-exec`: a deterministic, dependency-free parallel execution
//! subsystem on `std::thread::scope`.
//!
//! The workloads of this workspace share one fan-out shape: a list of
//! independent work items whose results must be reduced **in submission
//! order** so the combined output is bit-identical to a sequential run —
//! per-rule trigger enumeration in the chase (every rule sees the same
//! immutable prefix `Ch_{i-1}`), piece-rewriting candidate generation over
//! a saturation frontier, and disjunct-vs-set containment sweeps. The
//! toolchain is offline, so rayon is out of reach; an [`Executor`] covers
//! the same ground with scoped threads only:
//!
//! * **chunked work queue** — workers claim contiguous index chunks from a
//!   shared atomic cursor, so load imbalance between items is absorbed
//!   without any per-item locking;
//! * **ordered reduction** — [`Executor::map`] returns results in item
//!   order regardless of which worker computed what, and
//!   [`Executor::reduce`] folds them in that order, so callers replay the
//!   exact sequential merge;
//! * **panic propagation** — a panic on any worker is re-raised on the
//!   caller with its original payload once all workers have stopped;
//! * **configuration** — a [`Builder`] sets the thread count explicitly;
//!   otherwise the `QR_THREADS` environment variable overrides the default
//!   of [`std::thread::available_parallelism`].
//!
//! With one thread every primitive runs inline on the caller — no threads
//! are spawned, no locks are taken — which is what makes `--threads 1`
//! byte-identical to the historical sequential engines *by construction*
//! rather than by test.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the environment variable overriding the default thread count.
pub const THREADS_ENV: &str = "QR_THREADS";

/// Builds an [`Executor`]. Resolution order for the thread count:
/// explicit [`threads`](Builder::threads) call, then the `QR_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Builder {
    threads: Option<usize>,
}

impl Builder {
    /// Sets the worker count explicitly (clamped to at least 1). This wins
    /// over `QR_THREADS`.
    pub fn threads(mut self, n: usize) -> Builder {
        self.threads = Some(n.max(1));
        self
    }

    /// Resolves the configuration into an executor.
    pub fn build(self) -> Executor {
        let threads = self
            .threads
            .or_else(threads_from_env)
            .unwrap_or_else(default_parallelism);
        Executor { threads }
    }
}

fn threads_from_env() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) => Some(n.max(1)),
        Err(_) => None,
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A reusable handle for running deterministic parallel jobs.
///
/// The executor holds configuration only — worker threads are scoped to
/// each call (`std::thread::scope`), so an `Executor` is `Copy`, needs no
/// shutdown, and borrows freely from the caller's stack.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

impl Executor {
    /// A builder for explicit configuration.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// An executor that runs everything inline on the caller thread.
    pub fn sequential() -> Executor {
        Executor { threads: 1 }
    }

    /// An executor configured from the environment: `QR_THREADS` if set,
    /// otherwise the machine's available parallelism.
    pub fn from_env() -> Executor {
        Executor::builder().build()
    }

    /// An executor with exactly `n` workers (clamped to at least 1).
    pub fn with_threads(n: usize) -> Executor {
        Executor::builder().threads(n).build()
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` iff this executor runs inline (one worker).
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Applies `f` to every item and returns the results **in item order**
    /// (the ordered reduction half of the determinism contract: the caller
    /// can fold the returned vector exactly as a sequential loop would).
    ///
    /// `f` must be deterministic per item for the whole job to be
    /// deterministic; it may be called from any worker, in any temporal
    /// order, but each `items[i]` is evaluated exactly once.
    pub fn map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        self.map_indexed(items, |_, item| f(item))
    }

    /// [`map`](Executor::map) with the item index passed to the worker.
    pub fn map_indexed<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        if self.is_sequential() || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let workers = self.threads.min(n);
        let chunk = chunk_size(n, workers);
        let cursor = AtomicUsize::new(0);
        let slots = Mutex::new(Vec::with_capacity(n));
        run_workers(workers, || {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                    local.push((i, f(i, item)));
                }
            }
            let mut slots = slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.extend(local);
        });
        let mut pairs = slots.into_inner().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(pairs.len(), n, "every item is computed exactly once");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// Maps all items, then folds the results into `init` **in item
    /// order** on the caller thread.
    pub fn reduce<T: Sync, R: Send, A>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
        init: A,
        mut fold: impl FnMut(A, R) -> A,
    ) -> A {
        let mut acc = init;
        for r in self.map(items, f) {
            acc = fold(acc, r);
        }
        acc
    }

    /// `true` iff `pred` holds for some item. The predicate must be pure:
    /// the *result* is deterministic (a disjunction is order-independent),
    /// though which items are inspected after a hit is not — workers stop
    /// claiming chunks once a witness is found.
    pub fn any<T: Sync>(&self, items: &[T], pred: impl Fn(&T) -> bool + Sync) -> bool {
        let n = items.len();
        if self.is_sequential() || n <= 1 {
            return items.iter().any(pred);
        }
        let workers = self.threads.min(n);
        let chunk = chunk_size(n, workers);
        let cursor = AtomicUsize::new(0);
        let found = AtomicBool::new(false);
        run_workers(workers, || {
            while !found.load(Ordering::Relaxed) {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for item in &items[start..end] {
                    if pred(item) {
                        found.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
        });
        found.into_inner()
    }

    /// `true` iff `pred` holds for every item (dual of [`any`](Self::any)).
    pub fn all<T: Sync>(&self, items: &[T], pred: impl Fn(&T) -> bool + Sync) -> bool {
        !self.any(items, |item| !pred(item))
    }
}

/// Chunk size for `n` items over `workers` workers: about four claims per
/// worker, so stragglers are rebalanced without hammering the cursor.
fn chunk_size(n: usize, workers: usize) -> usize {
    n.div_ceil(workers * 4).max(1)
}

/// Runs `job` on `workers` scoped threads and joins them all, re-raising
/// the first panic payload on the caller after every worker has stopped.
fn run_workers(workers: usize, job: impl Fn() + Sync) {
    let mut first_panic = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| catch_unwind(AssertUnwindSafe(&job))))
            .collect();
        for handle in handles {
            let joined = handle.join().unwrap_or_else(Err);
            if let Err(payload) = joined {
                first_panic.get_or_insert(payload);
            }
        }
    });
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_explicit_threads_win() {
        assert_eq!(Executor::builder().threads(3).build().threads(), 3);
        assert_eq!(Executor::builder().threads(0).build().threads(), 1);
        assert_eq!(Executor::with_threads(7).threads(), 7);
        assert!(Executor::sequential().is_sequential());
    }

    #[test]
    fn from_env_defaults_to_available_parallelism() {
        // QR_THREADS is unset in the test environment, so the default is
        // the machine's parallelism (>= 1 by construction).
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(Executor::from_env().threads(), default_parallelism());
        }
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 9] {
            let exec = Executor::with_threads(threads);
            let out = exec.map(&items, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_sees_true_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let exec = Executor::with_threads(3);
        let out = exec.map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let exec = Executor::with_threads(4);
        assert!(exec.map(&[] as &[u8], |_| 0u8).is_empty());
        assert_eq!(exec.map(&[41u8], |&x| x + 1), vec![42]);
    }

    #[test]
    fn reduce_folds_in_submission_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 4] {
            let exec = Executor::with_threads(threads);
            let out = exec.reduce(
                &items,
                |&x| x.to_string(),
                String::new(),
                |mut acc, s| {
                    acc.push_str(&s);
                    acc.push(',');
                    acc
                },
            );
            let expected: String = items.iter().map(|x| format!("{x},")).collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn any_and_all_are_exact() {
        let items: Vec<usize> = (0..10_000).collect();
        for threads in [1, 2, 4] {
            let exec = Executor::with_threads(threads);
            assert!(exec.any(&items, |&x| x == 9_999));
            assert!(!exec.any(&items, |&x| x > 9_999));
            assert!(exec.all(&items, |&x| x < 10_000));
            assert!(!exec.all(&items, |&x| x != 5_000));
            assert!(!exec.any(&[] as &[usize], |_| true));
            assert!(exec.all(&[] as &[usize], |_| false));
        }
    }

    #[test]
    fn worker_panics_propagate_with_payload() {
        let items: Vec<usize> = (0..64).collect();
        let exec = Executor::with_threads(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.map(&items, |&x| {
                if x == 33 {
                    panic!("boom at {x}");
                }
                x
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 33"), "original payload kept: {msg}");
    }

    #[test]
    fn uneven_work_is_rebalanced() {
        // Heavy items at the front; ordered output must be unaffected.
        let items: Vec<u64> = (0..200).map(|i| if i < 4 { 200_000 } else { 10 }).collect();
        let spin = |n: u64| -> u64 { (0..n).fold(0, |a, b| a ^ b.wrapping_mul(31)) };
        let exec = Executor::with_threads(4);
        let par = exec.map(&items, |&n| spin(n));
        let seq: Vec<u64> = items.iter().map(|&n| spin(n)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn chunking_covers_every_item_exactly_once() {
        let items: Vec<usize> = (0..4097).collect();
        let counter = AtomicUsize::new(0);
        let exec = Executor::with_threads(8);
        let out = exec.map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.into_inner(), items.len());
        assert_eq!(out, items);
    }
}
