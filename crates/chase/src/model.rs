//! Model checking: does a finite instance satisfy a theory?
//!
//! `M ⊨ T` iff for every rule `β(x̄,ȳ) ⇒ ∃w̄ α(ȳ,w̄)` and every
//! homomorphism `σ` of the body into `M` there is an extension of `σ|ȳ`
//! matching the head inside `M`. This is the test behind the paper's
//! Definition 20 of core termination.

use qr_hom::matcher::{exists_match, for_each_match};
use qr_syntax::query::{QTerm, Var};
use qr_syntax::{Instance, TermId, Tgd, Theory};

/// `true` iff every rule of `theory` is satisfied in `inst`.
pub fn is_model(inst: &Instance, theory: &Theory) -> bool {
    theory.rules().iter().all(|r| rule_satisfied(inst, r))
}

/// `true` iff rule `r` is satisfied in `inst`; on failure
/// [`violating_trigger`] can produce a witness.
pub fn rule_satisfied(inst: &Instance, r: &Tgd) -> bool {
    violating_trigger(inst, r).is_none()
}

/// Finds a body homomorphism with no head witness, if any.
pub fn violating_trigger(inst: &Instance, r: &Tgd) -> Option<Vec<Option<TermId>>> {
    let nvars = r.var_names().len();
    let frontier = r.frontier();
    let mut violation = None;
    for_each_match(r.body(), nvars, inst, &[], |asg| {
        let fixed: Vec<(Var, TermId)> = frontier
            .iter()
            .map(|v| (*v, asg[v.index()].expect("frontier bound by body match")))
            .collect();
        if exists_match(r.head(), nvars, inst, &fixed) {
            true
        } else {
            violation = Some(asg.clone());
            false
        }
    });
    violation
}

/// Counts rule violations (distinct body triggers lacking a head witness),
/// up to `limit`. Useful in diagnostics and tests.
pub fn count_violations(inst: &Instance, theory: &Theory, limit: usize) -> usize {
    let mut count = 0;
    for r in theory.rules() {
        let nvars = r.var_names().len();
        let frontier = r.frontier();
        for_each_match(r.body(), nvars, inst, &[], |asg| {
            let fixed: Vec<(Var, TermId)> = frontier
                .iter()
                .map(|v| (*v, asg[v.index()].expect("frontier bound")))
                .collect();
            if !exists_match(r.head(), nvars, inst, &fixed) {
                count += 1;
            }
            limit == 0 || count < limit
        });
        if limit != 0 && count >= limit {
            return count;
        }
    }
    count
}

/// `true` iff the (ground) head of a Datalog trigger is present — a special
/// case of [`rule_satisfied`] exposed for clarity in tests.
pub fn datalog_trigger_satisfied(inst: &Instance, r: &Tgd, asg: &[Option<TermId>]) -> bool {
    debug_assert!(r.is_datalog());
    r.head().iter().all(|a| {
        let fact = qr_syntax::Fact::new(
            a.pred,
            a.args
                .iter()
                .map(|t| match t {
                    QTerm::Var(v) => asg[v.index()].expect("datalog head vars are frontier"),
                    QTerm::Const(c) => TermId::constant(*c),
                })
                .collect::<Vec<_>>(),
        );
        inst.contains(&fact)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_instance, parse_theory};

    #[test]
    fn closed_world_is_model() {
        let t = parse_theory("e(X,Y) -> e(Y,X).").unwrap();
        let m = parse_instance("e(a,b). e(b,a).").unwrap();
        assert!(is_model(&m, &t));
        let not_m = parse_instance("e(a,b).").unwrap();
        assert!(!is_model(&not_m, &t));
    }

    #[test]
    fn existential_witness_found() {
        let t = parse_theory("human(X) -> mother(X,Y).").unwrap();
        let m = parse_instance("human(abel). mother(abel, eve).").unwrap();
        assert!(is_model(&m, &t));
        let m2 = parse_instance("human(abel). mother(cain, eve).").unwrap();
        assert!(!is_model(&m2, &t));
    }

    #[test]
    fn loop_satisfies_infinite_demand() {
        // E(x,y) -> ∃z E(y,z) is satisfied by a single loop.
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let m = parse_instance("e(a,a).").unwrap();
        assert!(is_model(&m, &t));
    }

    #[test]
    fn dom_rule_checked_on_whole_domain() {
        let t = parse_theory("dom(X) -> r(X,Z).").unwrap();
        let m = parse_instance("r(a,b). r(b,b).").unwrap();
        assert!(is_model(&m, &t));
        let m2 = parse_instance("r(a,b). p(c).").unwrap();
        assert!(!is_model(&m2, &t)); // b and c lack outgoing r-edges
    }

    #[test]
    fn empty_body_rule_demands_witness() {
        let t = parse_theory("true -> r(X,X).").unwrap();
        assert!(is_model(&parse_instance("r(a,a).").unwrap(), &t));
        assert!(!is_model(&parse_instance("r(a,b).").unwrap(), &t));
    }

    #[test]
    fn violation_count() {
        let t = parse_theory("e(X,Y) -> e(Y,X).").unwrap();
        let m = parse_instance("e(a,b). e(c,d).").unwrap();
        assert_eq!(count_violations(&m, &t, 0), 2);
        assert_eq!(count_violations(&m, &t, 1), 1);
    }
}
