//! Rewriting workloads behind `BENCH_rewrite.json`.
//!
//! Two families, mirroring the chase workloads in `e11_chase_engine`:
//!
//! * **Saturation fixtures** — the (theory, query, budget) triples pinned
//!   by `qr-rewrite`'s engine tests, plus a wider transitive-closure run
//!   whose BFS windows are broad enough for the pipelined engine to
//!   overlap generation with merging. Each fixture runs once in barrier
//!   mode (the reference wall time) and once pipelined (the reported run,
//!   whose [`qr_rewrite::RewriteStats`] counters are thread-invariant).
//! * **Marked-query runs** — `rewrite_td` on the paper's `φ_R^n` queries,
//!   reporting the frontier counters of the marked process.

use std::sync::Arc;
use std::time::Instant;

use qr_core::marked::rewrite_td;
use qr_core::theories::phi_r_n;
use qr_exec::Executor;
use qr_hom::kernel::{HomKernel, QueryEntry};
use qr_rewrite::{rewrite_with_mode, RewriteBudget, SaturationMode};
use qr_syntax::{parse_query, parse_theory, ConjunctiveQuery};

use crate::report::{HomReport, MarkedCounters, RewriteRun};

/// The saturation fixtures: label, theory, query, budget. All but
/// `tc-wide` are exactly the engine's pinned-fixture suite; `tc-wide`
/// scales the transitive-closure run up until its windows hold dozens of
/// queries.
pub fn fixtures() -> Vec<(&'static str, &'static str, &'static str, RewriteBudget)> {
    vec![
        (
            "t_a",
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            "?(X) :- mother(X, M).",
            RewriteBudget::default(),
        ),
        (
            "t_p",
            "e(X,Y) -> e(Y,Z).",
            "?(A) :- e(A,B), e(B,C).",
            RewriteBudget::default(),
        ),
        (
            "ex39",
            "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
            "?(A,D) :- e(A,B,C,D).",
            RewriteBudget::default(),
        ),
        (
            "guarded",
            "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
            "? :- p(A).",
            RewriteBudget::default(),
        ),
        (
            "tc-budget",
            "e(X,Y), e(Y,Z) -> e(X,Z).",
            "? :- e(a, b).",
            RewriteBudget {
                max_queries: 64,
                max_generated: 2_000,
                max_atoms: 12,
            },
        ),
        (
            "tc-wide",
            "e(X,Y), e(Y,Z) -> e(X,Z).",
            "? :- e(a, b).",
            RewriteBudget {
                max_queries: 256,
                max_generated: 8_000,
                max_atoms: 16,
            },
        ),
        // Pins the eviction-to-dead-skip path in the committed baseline:
        // the first rule's accepted candidate is evicted by the second
        // rule's more general one before its requeued item merges, so
        // `dead_skipped` is nonzero here (it is zero on every workload
        // above).
        (
            "evict-requeue",
            "q(X), b(X) -> p(X).\nq(X) -> p(X).",
            "? :- p(a).",
            RewriteBudget::default(),
        ),
    ]
}

/// Runs one saturation fixture in both engine modes and reports the
/// pipelined run (counters are identical either way; the barrier wall is
/// kept as the overlap reference).
fn saturation_run(
    label: &str,
    theory_src: &str,
    query_src: &str,
    budget: RewriteBudget,
    exec: &Executor,
) -> RewriteRun {
    let theory = parse_theory(theory_src).expect("fixture theory parses");
    let query = parse_query(query_src).expect("fixture query parses");
    // Two timed runs per mode, keeping the faster wall: single samples on
    // a shared box swing more than the barrier/pipelined gap being
    // compared (counters are run-invariant, so only the walls need the
    // second sample; the first barrier run doubles as process warmup).
    let time_mode = |mode: SaturationMode| {
        let t0 = Instant::now();
        let first =
            rewrite_with_mode(&theory, &query, budget, exec, mode).expect("no builtin bodies");
        let first_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let r = rewrite_with_mode(&theory, &query, budget, exec, mode).expect("no builtin bodies");
        let wall_ms = (t1.elapsed().as_secs_f64() * 1e3).min(first_ms);
        assert_eq!(first.outcome, r.outcome, "{label}: reruns disagree");
        (r, wall_ms)
    };
    let (barrier, barrier_ms) = time_mode(SaturationMode::Barrier);
    let (r, wall_ms) = time_mode(SaturationMode::Pipelined);
    assert_eq!(barrier.outcome, r.outcome, "{label}: modes disagree");
    // Regression guard on the speculation machinery: the pipelined engine
    // must never generate more candidates than the barrier engine on the
    // same fixture (they are identical by construction).
    assert!(
        r.generated <= barrier.generated,
        "{label}: pipelined generated {} > barrier {}",
        r.generated,
        barrier.generated
    );
    RewriteRun {
        workload: label.to_owned(),
        engine: "saturation",
        threads: exec.threads(),
        wall_ms,
        barrier_wall_ms: Some(barrier_ms),
        outcome: format!("{:?}", r.outcome),
        disjuncts: r.ucq.len(),
        rs: r.rs(),
        generated: r.generated,
        oversized_discarded: r.oversized_discarded,
        depth: r.depth,
        stats: Some(r.stats),
        process: None,
        // The engine runs its own kernel; only the cache/prefilter tier is
        // deterministic under the parallel sweeps, so `full` stays off.
        hom: Some(HomReport {
            stats: r.hom,
            full: false,
        }),
    }
}

/// Runs `rewrite_td` on `φ_R^n` and reports the process counters, plus a
/// sequential pairwise containment sweep over the query and the produced
/// disjuncts on a fresh [`HomKernel`] — the equivalence-assertion pattern
/// of the `T_d` experiments, and fully sequential, so every kernel counter
/// is deterministic and emitted.
fn marked_run(n: usize) -> RewriteRun {
    let query = phi_r_n(n);
    let t0 = Instant::now();
    let mr = rewrite_td(&query, 10_000_000).expect("process terminates");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let kernel = HomKernel::new();
    let mut all: Vec<&ConjunctiveQuery> = vec![&query];
    all.extend(
        mr.disjuncts
            .iter()
            .filter(|d| d.answer_vars().len() == query.answer_vars().len()),
    );
    for (i, phi) in all.iter().enumerate() {
        for (j, psi) in all.iter().enumerate() {
            if i != j {
                kernel.contains_queries(phi, psi);
            }
        }
    }
    RewriteRun {
        workload: format!("T_d marked phi_R^{n}"),
        engine: "marked",
        threads: 1,
        wall_ms,
        barrier_wall_ms: None,
        outcome: "Complete".into(),
        disjuncts: mr.disjuncts.len(),
        rs: mr.max_disjunct_size(),
        generated: 0,
        oversized_discarded: 0,
        depth: 0,
        stats: None,
        process: Some(MarkedCounters {
            steps: mr.stats.steps,
            max_frontier: mr.stats.max_frontier,
            dropped: mr.stats.dropped,
            has_true: mr.has_true_disjunct,
        }),
        hom: Some(HomReport {
            stats: kernel.stats(),
            full: true,
        }),
    }
}

/// The `hom` microbench: a repeated subsumption sweep over a pinned
/// kept-set on a fresh sequential kernel, so kernel regressions show up
/// independently of saturation scheduling noise. The kept-set mirrors the
/// transitive-closure shape (the ground edge `e(a,b)` plus anchored chains
/// of every length up to 12); the extra probes pin the component plan
/// cache and the core cache.
pub fn hom_microbench() -> RewriteRun {
    const CHAIN_MAX: usize = 12;
    const ROUNDS: usize = 40;
    let exec = Executor::sequential();
    let kernel = HomKernel::new();
    let mut kept: Vec<ConjunctiveQuery> = vec![parse_query("? :- e(a, b).").unwrap()];
    for k in 2..=CHAIN_MAX {
        let atoms: Vec<String> = (0..k)
            .map(|i| {
                let src = if i == 0 { "a".into() } else { format!("U{i}") };
                let dst = if i + 1 == k {
                    "b".into()
                } else {
                    format!("U{}", i + 1)
                };
                format!("e({src}, {dst})")
            })
            .collect();
        kept.push(parse_query(&format!("? :- {}.", atoms.join(", "))).unwrap());
    }
    let t0 = Instant::now();
    let entries: Vec<Arc<QueryEntry>> = kept.iter().map(|q| kernel.entry(q)).collect();
    let refs: Vec<&Arc<QueryEntry>> = entries.iter().collect();
    let mut subsumed = 0usize;
    for _ in 0..ROUNDS {
        for q in &kept {
            let cand = kernel.entry(q);
            if kernel.subsumed_by_any(&exec, &cand, &refs) {
                subsumed += 1;
            }
        }
    }
    // Multi-component probes sharing one component shape: pins the
    // cross-query plan cache.
    let mc1 = parse_query("? :- e(X,Y), e(Y,Z), f(W,W).").unwrap();
    let mc2 = parse_query("? :- e(X,Y), e(Y,Z), g(W,W).").unwrap();
    kernel.contains_queries(&mc1, &mc2);
    kernel.contains_queries(&mc2, &mc1);
    // Repeated core of a redundant query: pins the core cache.
    let redundant = parse_query("?(X) :- e(X,Y), e(X,Z).").unwrap();
    let c1 = kernel.query_core(&redundant);
    let c2 = kernel.query_core(&redundant);
    assert_eq!(c1, c2, "core cache returns the cached core");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    RewriteRun {
        workload: "hom kernel microbench".into(),
        engine: "hom",
        threads: 1,
        wall_ms,
        barrier_wall_ms: None,
        outcome: "Complete".into(),
        disjuncts: kept.len(),
        rs: CHAIN_MAX,
        generated: subsumed,
        oversized_discarded: 0,
        depth: 0,
        stats: None,
        process: None,
        hom: Some(HomReport {
            stats: kernel.stats(),
            full: true,
        }),
    }
}

/// All rewrite runs for `BENCH_rewrite.json`: every saturation fixture on
/// `exec`'s pool, the marked-query runs for `n = 1..=3`, then the `hom`
/// kernel microbench.
pub fn stats_runs(exec: &Executor) -> Vec<RewriteRun> {
    let mut out: Vec<RewriteRun> = fixtures()
        .into_iter()
        .map(|(label, t, q, budget)| saturation_run(label, t, q, budget, exec))
        .collect();
    out.extend((1..=3).map(marked_run));
    out.push(hom_microbench());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cheap fixtures only (debug-mode friendly): counters must be
    /// identical across pool widths, and the run's totals must reconcile
    /// with the returned rewriting.
    #[test]
    fn counters_thread_invariant_on_cheap_fixtures() {
        for (label, t, q, budget) in fixtures().into_iter().take(4) {
            let seq = saturation_run(label, t, q, budget, &Executor::sequential());
            let par = saturation_run(label, t, q, budget, &Executor::with_threads(3));
            assert_eq!(seq.outcome, par.outcome, "{label}");
            assert_eq!(seq.disjuncts, par.disjuncts, "{label}");
            assert_eq!(seq.generated, par.generated, "{label}");
            let (ss, ps) = (seq.stats.unwrap(), par.stats.unwrap());
            assert_eq!(ss.windows.len(), ps.windows.len(), "{label}");
            for (a, b) in ss.windows.iter().zip(&ps.windows) {
                assert_eq!(
                    (a.window, a.items, a.merged, a.generated, a.accepted, a.kept),
                    (b.window, b.items, b.merged, b.generated, b.accepted, b.kept),
                    "{label}: window counters"
                );
            }
            assert_eq!(ss.generated(), seq.generated, "{label}: totals reconcile");
        }
    }

    /// The `evict-requeue` fixture exists to keep the eviction-to-dead-skip
    /// propagation observable in the committed baseline: exactly one
    /// requeued item must be found dead at its merge turn.
    #[test]
    fn evict_requeue_fixture_pins_nonzero_dead_skipped() {
        let (label, t, q, budget) = fixtures().pop().unwrap();
        assert_eq!(label, "evict-requeue");
        for exec in [Executor::sequential(), Executor::with_threads(3)] {
            let r = saturation_run(label, t, q, budget, &exec);
            let s = r.stats.unwrap();
            assert_eq!(s.dead_skipped(), 1, "{label}: dead skip must fire");
            assert_eq!(s.evictions(), 1, "{label}");
        }
    }

    #[test]
    fn marked_run_reports_process_counters() {
        let r = marked_run(1);
        assert_eq!(r.engine, "marked");
        assert!(r.disjuncts > 0);
        let p = r.process.unwrap();
        assert!(p.steps > 0);
        assert!(p.max_frontier > 0);
        // The pairwise containment sweep is fully sequential and must
        // exercise the kernel's caches and prefilters (acceptance gate for
        // the T_d marked workloads).
        let h = r.hom.unwrap();
        assert!(h.full);
        assert!(h.stats.freezes > 0);
        assert!(h.stats.freeze_cache_hits > 0, "entries are re-acquired");
        assert!(
            h.stats.prefilter_rejects > 0,
            "g-only disjuncts cannot absorb the r/g query"
        );
    }

    /// Acceptance gate for `tc-wide` (run here on the structurally
    /// identical `tc-budget` shrink so debug-mode CI stays fast): the
    /// saturation engine's kernel must report cache hits and prefilter
    /// rejects, and the cache tier must be thread-invariant.
    #[test]
    fn saturation_runs_report_hom_cache_activity() {
        let (label, t, q, budget) = fixtures().remove(4);
        assert_eq!(label, "tc-budget");
        let seq = saturation_run(label, t, q, budget, &Executor::sequential());
        let h = seq.hom.as_ref().unwrap();
        assert!(!h.full, "saturation sweeps may run on a pool");
        assert!(h.stats.freezes > 0);
        assert!(h.stats.freeze_cache_hits > 0, "{label}: cache hits");
        assert!(
            h.stats.prefilter_rejects > 0,
            "{label}: the ground seed rejects chain candidates"
        );
        let par = saturation_run(label, t, q, budget, &Executor::with_threads(3));
        let hp = par.hom.as_ref().unwrap();
        assert_eq!(
            (
                h.stats.freezes,
                h.stats.freeze_cache_hits,
                h.stats.plan_compiles,
                h.stats.plan_cache_hits,
                h.stats.prefilter_rejects,
                h.stats.components,
            ),
            (
                hp.stats.freezes,
                hp.stats.freeze_cache_hits,
                hp.stats.plan_compiles,
                hp.stats.plan_cache_hits,
                hp.stats.prefilter_rejects,
                hp.stats.components,
            ),
            "{label}: cache tier is thread-invariant"
        );
    }

    #[test]
    fn hom_microbench_exercises_every_cache() {
        let r = hom_microbench();
        assert_eq!(r.engine, "hom");
        let h = r.hom.unwrap();
        assert!(h.full, "the microbench is fully sequential");
        let s = h.stats;
        assert!(s.freezes > 0);
        assert!(s.freeze_cache_hits > 0, "sweep re-acquires pinned entries");
        assert!(s.plan_compiles > 0);
        assert!(s.plan_cache_hits > 0, "shared component shape is reused");
        assert!(
            s.prefilter_rejects > 0,
            "the ground edge rejects longer chains by anchored probe"
        );
        assert!(s.components > 0);
        assert!(s.searches > 0);
        assert!(s.core_cache_hits > 0, "repeated core hits the core cache");
        // Deterministic end to end: a second run reports identical counters.
        let r2 = hom_microbench();
        assert_eq!(s, r2.hom.unwrap().stats);
        assert_eq!(r.generated, r2.generated);
    }
}
