//! **E11 — Observation 8 / Section 3**: engine properties.
//!
//! * Semi-naive vs naive chase: identical `Ch_i` prefixes, measured
//!   speedup on Datalog transitive closure over random graphs.
//! * Observation 8: for random `F` with `D ⊆ F ⊆ Ch(T,D)`, the chases of
//!   `F` and `D` coincide **literally** (same Skolem terms, same facts).

use std::time::Instant;

use qr_chase::{chase, chase_naive, chase_with, ChaseBudget};
use qr_core::theories::{t_a, t_d};
use qr_exec::Executor;
use qr_syntax::{parse_theory, Fact, Instance, Pred, Symbol, TermId, Theory};

use crate::report::ChaseRun;
use crate::Table;

/// A pseudo-random edge instance over `n` vertices with `m` edges
/// (deterministic LCG so the harness is reproducible).
pub fn random_graph(n: usize, m: usize, seed: u64) -> Instance {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let e = Pred::new("e", 2);
    let mut inst = Instance::new();
    while inst.len() < m {
        let a = next() % n;
        let b = next() % n;
        inst.insert(Fact::new(
            e,
            vec![
                TermId::constant(Symbol::intern(&format!("v{a}"))),
                TermId::constant(Symbol::intern(&format!("v{b}"))),
            ],
        ));
    }
    inst
}

fn measured_run(
    label: &str,
    theory: &Theory,
    db: &Instance,
    budget: ChaseBudget,
    exec: &Executor,
) -> ChaseRun {
    let t0 = Instant::now();
    let ch = chase_with(theory, db, budget, exec);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ChaseRun {
        workload: label.to_owned(),
        engine: "semi-naive",
        wall_ms,
        facts_out: ch.instance.len(),
        rounds_run: ch.rounds,
        stats: ch.stats,
    }
}

/// The chase workloads E11 measures, re-run with the semi-naive engine on
/// `exec` and their per-round [`qr_chase::ChaseStats`] captured — this is
/// what the harness's `--json` mode writes to `BENCH_chase.json`. The
/// counters are thread-count-independent by the engine's determinism
/// contract; only the wall times vary.
pub fn stats_runs(exec: &Executor) -> Vec<ChaseRun> {
    let mut out = Vec::new();
    let tc = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").expect("parses");
    for (n, m) in [(24usize, 40usize), (40, 80), (60, 120)] {
        let db = random_graph(n, m, 0xC0FFEE + n as u64);
        let budget = ChaseBudget {
            max_rounds: 12,
            max_facts: 2_000_000,
        };
        out.push(measured_run(
            &format!("TC on G({n},{m})"),
            &tc,
            &db,
            budget,
            exec,
        ));
    }
    let db = qr_syntax::parse_instance("human(abel). human(cain).").expect("parses");
    out.push(measured_run(
        "T_a chain depth 12",
        &t_a(),
        &db,
        ChaseBudget {
            max_rounds: 12,
            max_facts: 2_000_000,
        },
        exec,
    ));
    // The grid workload: T_d (Definition 45) grows a grid of fresh terms —
    // heavy on dom-delta sweeps and existential head application.
    let db = random_graph(6, 9, 0xD_0D0);
    out.push(measured_run(
        "T_d grid depth 5",
        &t_d(),
        &db,
        ChaseBudget {
            max_rounds: 5,
            max_facts: 2_000_000,
        },
        exec,
    ));
    out
}

/// The E11 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E11  Obs. 8 / §3 — engine properties: semi-naive speedup, literal chase equality",
        "identical prefixes; semi-naive faster on recursive Datalog; Obs. 8 holds on all samples",
        &[
            "workload",
            "facts out",
            "naive ms",
            "semi-naive ms",
            "equal prefixes",
            "Obs.8 ok",
        ],
    );
    let tc = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").expect("parses");
    for (n, m) in [(24usize, 40usize), (40, 80), (60, 120)] {
        let db = random_graph(n, m, 0xC0FFEE + n as u64);
        let budget = ChaseBudget {
            max_rounds: 12,
            max_facts: 2_000_000,
        };
        let t0 = Instant::now();
        let slow = chase_naive(&tc, &db, budget);
        let naive_ms = t0.elapsed().as_millis();
        let t1 = Instant::now();
        let fast = chase(&tc, &db, budget);
        let fast_ms = t1.elapsed().as_millis();
        let equal = (0..=fast.rounds.max(slow.rounds)).all(|i| fast.prefix(i) == slow.prefix(i));
        // Observation 8 on this theory: pick F = Ch_1(D).
        let f = fast.prefix(1);
        let chf = chase(&tc, &f, budget);
        let obs8 = chf.instance == fast.instance;
        t.row(vec![
            format!("TC on G({n},{m})"),
            fast.instance.len().to_string(),
            naive_ms.to_string(),
            fast_ms.to_string(),
            equal.to_string(),
            obs8.to_string(),
        ]);
    }
    // Existential theory: the mother chain (infinite chase, fixed depth).
    let db = qr_syntax::parse_instance("human(abel). human(cain).").expect("parses");
    let budget = ChaseBudget {
        max_rounds: 12,
        max_facts: 2_000_000,
    };
    let t0 = Instant::now();
    let slow = chase_naive(&t_a(), &db, budget);
    let naive_ms = t0.elapsed().as_millis();
    let t1 = Instant::now();
    let fast = chase(&t_a(), &db, budget);
    let fast_ms = t1.elapsed().as_millis();
    let equal = (0..=fast.rounds).all(|i| fast.prefix(i) == slow.prefix(i));
    let f = fast.prefix(3);
    let chf = chase(&t_a(), &f, budget);
    // F is 3 rounds ahead, so compare on the common deep prefix.
    let obs8 = fast.instance.subset_of(&chf.instance);
    t.row(vec![
        "T_a chain depth 12".into(),
        fast.instance.len().to_string(),
        naive_ms.to_string(),
        fast_ms.to_string(),
        equal.to_string(),
        obs8.to_string(),
    ]);
    // The grid workload: T_d's (grid) rule joins two delta-heavy atoms, so
    // it exercises the multi-delta trigger dedup and the dom-delta sweeps.
    let db = random_graph(6, 9, 0xD_0D0);
    let budget = ChaseBudget {
        max_rounds: 5,
        max_facts: 2_000_000,
    };
    let t0 = Instant::now();
    let slow = chase_naive(&t_d(), &db, budget);
    let naive_ms = t0.elapsed().as_millis();
    let t1 = Instant::now();
    let fast = chase(&t_d(), &db, budget);
    let fast_ms = t1.elapsed().as_millis();
    let equal = (0..=fast.rounds.max(slow.rounds)).all(|i| fast.prefix(i) == slow.prefix(i));
    let f = fast.prefix(1);
    let chf = chase(&t_d(), &f, budget);
    let obs8 = fast.instance.subset_of(&chf.instance);
    t.row(vec![
        "T_d grid depth 5".into(),
        fast.instance.len().to_string(),
        naive_ms.to_string(),
        fast_ms.to_string(),
        equal.to_string(),
        obs8.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic() {
        assert_eq!(random_graph(10, 20, 7), random_graph(10, 20, 7));
        assert_eq!(random_graph(10, 20, 7).len(), 20);
    }

    #[test]
    fn semi_naive_matches_naive_on_random_graphs() {
        let tc = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        for seed in 0..4u64 {
            let db = random_graph(12, 20, seed);
            let budget = ChaseBudget::rounds(8);
            let fast = chase(&tc, &db, budget);
            let slow = chase_naive(&tc, &db, budget);
            assert_eq!(fast.instance, slow.instance, "seed {seed}");
        }
    }

    #[test]
    fn stats_runs_carry_round_counters() {
        let runs = stats_runs(&Executor::sequential());
        assert_eq!(runs.len(), 5);
        assert!(runs.iter().any(|r| r.workload.starts_with("T_d grid")));
        for r in &runs {
            assert!(!r.stats.rounds.is_empty(), "{} has rounds", r.workload);
            assert!(r.stats.triggers() > 0, "{} enumerated triggers", r.workload);
            assert_eq!(
                r.stats.facts_added() + runs_input_len(&r.workload),
                r.facts_out
            );
        }
    }

    /// Input sizes of the `stats_runs` workloads, keyed by label.
    fn runs_input_len(workload: &str) -> usize {
        match workload {
            "TC on G(24,40)" => 40,
            "TC on G(40,80)" => 80,
            "TC on G(60,120)" => 120,
            "T_a chain depth 12" => 2,
            "T_d grid depth 5" => 9,
            other => panic!("unknown workload {other}"),
        }
    }

    #[test]
    fn observation_8_on_random_prefixes() {
        let tc = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let db = random_graph(6, 8, 3);
        let budget = ChaseBudget::rounds(6);
        let ch = chase(&tc, &db, budget);
        for i in 0..=2usize {
            let f = ch.prefix(i);
            let chf = chase(&tc, &f, budget);
            assert!(ch.instance.subset_of(&chf.instance));
        }
    }
}
