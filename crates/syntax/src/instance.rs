//! Indexed database instances (fact sets).
//!
//! An [`Instance`] is a finite set of ground facts with join indexes:
//! by predicate, and by (predicate, position, term). Insertion order is
//! preserved (the chase relies on this to delimit rounds), duplicates are
//! ignored, and equality is *set* equality.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::atom::{Fact, Pred};
use crate::term::TermId;

/// Index of a fact within an instance (dense, insertion-ordered).
pub type FactIdx = usize;

/// A finite set of facts with join indexes.
#[derive(Clone, Default)]
pub struct Instance {
    facts: Vec<Fact>,
    positions: HashMap<Fact, FactIdx>,
    by_pred: HashMap<Pred, Vec<FactIdx>>,
    by_pred_pos_term: HashMap<(Pred, u32, TermId), Vec<FactIdx>>,
    domain: Vec<TermId>,
    domain_set: HashSet<TermId>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Builds an instance from an iterator of facts (duplicates ignored).
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Instance {
        let mut inst = Instance::new();
        inst.extend(facts);
        inst
    }

    /// Inserts a fact; returns `Some(idx)` with the assigned index if it
    /// was not already present, `None` for duplicates. Indices are dense
    /// and insertion-ordered, so the facts of one chase round always form
    /// a contiguous index range (the chase's delta indexes rely on this).
    pub fn insert(&mut self, fact: Fact) -> Option<FactIdx> {
        if self.positions.contains_key(&fact) {
            return None;
        }
        let idx = self.facts.len();
        for t in fact.terms() {
            if self.domain_set.insert(t) {
                self.domain.push(t);
            }
        }
        self.by_pred.entry(fact.pred).or_default().push(idx);
        for (pos, t) in fact.terms().enumerate() {
            self.by_pred_pos_term
                .entry((fact.pred, pos as u32, t))
                .or_default()
                .push(idx);
        }
        self.positions.insert(fact.clone(), idx);
        self.facts.push(fact);
        Some(idx)
    }

    /// Inserts all facts from the iterator.
    pub fn extend(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for f in facts {
            self.insert(f);
        }
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.positions.contains_key(fact)
    }

    /// The index of a fact, if present (O(1) hash lookup; this is how the
    /// chase records provenance without re-probing positional indexes).
    pub fn index_of(&self, fact: &Fact) -> Option<FactIdx> {
        self.positions.get(fact).copied()
    }

    /// Number of distinct terms in the active domain. Like fact indices,
    /// the domain grows append-only, so callers can delimit "terms new
    /// since length `n`" as the suffix `domain()[n..]`.
    pub fn domain_len(&self) -> usize {
        self.domain.len()
    }

    /// The fact at a given index (insertion order).
    pub fn fact(&self, idx: FactIdx) -> &Fact {
        &self.facts[idx]
    }

    /// Iterates over all facts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// Indexes of all facts with the given predicate.
    pub fn with_pred(&self, pred: Pred) -> &[FactIdx] {
        self.by_pred.get(&pred).map_or(&[], Vec::as_slice)
    }

    /// Indexes of all facts with `pred` whose argument at `pos` is `term`.
    pub fn with_pred_pos_term(&self, pred: Pred, pos: u32, term: TermId) -> &[FactIdx] {
        self.by_pred_pos_term
            .get(&(pred, pos, term))
            .map_or(&[], Vec::as_slice)
    }

    /// The active domain, in first-occurrence order.
    pub fn domain(&self) -> &[TermId] {
        &self.domain
    }

    /// `true` iff `term` occurs in some fact.
    pub fn contains_term(&self, term: TermId) -> bool {
        self.domain_set.contains(&term)
    }

    /// All predicates that occur in the instance.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.by_pred.keys().copied()
    }

    /// `true` iff every fact of `self` is a fact of `other`.
    pub fn subset_of(&self, other: &Instance) -> bool {
        self.len() <= other.len() && self.iter().all(|f| other.contains(f))
    }

    /// Set union of two instances.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        out.extend(other.iter().cloned());
        out
    }

    /// The substructure induced on the complement of `banned` terms: all
    /// facts that mention no banned term (the paper's `M_F`, Definition 36).
    pub fn without_terms(&self, banned: &HashSet<TermId>) -> Instance {
        Instance::from_facts(
            self.iter()
                .filter(|f| f.terms().all(|t| !banned.contains(&t)))
                .cloned(),
        )
    }

    /// The substructure induced on `kept` terms: all facts whose terms all
    /// belong to `kept`.
    pub fn induced(&self, kept: &HashSet<TermId>) -> Instance {
        Instance::from_facts(
            self.iter()
                .filter(|f| f.terms().all(|t| kept.contains(&t)))
                .cloned(),
        )
    }

    /// The facts whose terms are all constants (the "original" part).
    pub fn original_part(&self) -> Instance {
        Instance::from_facts(self.iter().filter(|f| f.is_original()).cloned())
    }

    /// Removes one fact by value, returning a new instance (used for
    /// minimal-support computation).
    pub fn without_fact(&self, fact: &Fact) -> Instance {
        Instance::from_facts(self.iter().filter(|f| *f != fact).cloned())
    }

    /// Maximum Skolem nesting depth over all facts (0 for original instances).
    pub fn max_term_depth(&self) -> usize {
        self.iter().map(Fact::term_depth).max().unwrap_or(0)
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.subset_of(other)
    }
}

impl Eq for Instance {}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        Instance::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    fn e(a: &str, b: &str) -> Fact {
        Fact::new(Pred::new("e", 2), vec![c(a), c(b)])
    }

    #[test]
    fn insert_dedups_and_indexes() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert(e("a", "b")), Some(0));
        assert_eq!(inst.insert(e("a", "b")), None);
        assert_eq!(inst.insert(e("b", "c")), Some(1));
        assert_eq!(inst.index_of(&e("a", "b")), Some(0));
        assert_eq!(inst.index_of(&e("b", "c")), Some(1));
        assert_eq!(inst.index_of(&e("c", "a")), None);
        assert_eq!(inst.domain_len(), 3);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.with_pred(Pred::new("e", 2)).len(), 2);
        assert_eq!(inst.with_pred_pos_term(Pred::new("e", 2), 0, c("b")), &[1]);
        assert_eq!(inst.domain(), &[c("a"), c("b"), c("c")]);
    }

    #[test]
    fn set_equality_ignores_order() {
        let i1 = Instance::from_facts([e("a", "b"), e("b", "c")]);
        let i2 = Instance::from_facts([e("b", "c"), e("a", "b")]);
        assert_eq!(i1, i2);
        let i3 = Instance::from_facts([e("a", "b")]);
        assert_ne!(i1, i3);
        assert!(i3.subset_of(&i1));
        assert!(!i1.subset_of(&i3));
    }

    #[test]
    fn induced_and_banned_substructures() {
        let inst = Instance::from_facts([e("a", "b"), e("b", "c"), e("c", "a")]);
        let banned: HashSet<_> = [c("c")].into_iter().collect();
        let m = inst.without_terms(&banned);
        assert_eq!(m, Instance::from_facts([e("a", "b")]));
        let kept: HashSet<_> = [c("a"), c("b")].into_iter().collect();
        assert_eq!(inst.induced(&kept), Instance::from_facts([e("a", "b")]));
    }

    #[test]
    fn union_and_without_fact() {
        let i1 = Instance::from_facts([e("a", "b")]);
        let i2 = Instance::from_facts([e("b", "c")]);
        let u = i1.union(&i2);
        assert_eq!(u.len(), 2);
        assert_eq!(u.without_fact(&e("a", "b")), i2);
    }
}
