//! The compiled homomorphism kernel: memoized query freezing, compiled
//! per-component join plans, necessary-condition prefilters, and a
//! fold-based query core.
//!
//! Every containment check in the paper is a Chandra–Merlin homomorphism
//! search `ψ → freeze(φ)` fixing the answer variables positionally. The
//! one-shot path ([`crate::containment::contains`] before this kernel)
//! paid the full setup on every call: freezing `φ` into a fresh interned,
//! indexed [`Instance`], and re-planning the join order for `ψ`'s atoms.
//! A saturation run makes *thousands* of checks against the *same* few
//! hundred queries, so the kernel memoizes both sides:
//!
//! * **Frozen-query cache** — each [`ConjunctiveQuery`] freezes once per
//!   structural key (a name-independent canonical form); the cached
//!   [`QueryEntry`] carries the frozen instance, the answer-variable
//!   images, and everything below.
//! * **Compiled-plan cache** — `ψ`'s atoms are compiled to [`JoinPlan`]s
//!   once per *component shape* (see below) and shared across all queries
//!   with an isomorphic component, keyed by a locally-renumbered canonical
//!   form that embeds which positions are anchored by which answer index.
//! * **Prefilters** — cheap necessary conditions checked before any
//!   backtracking: a 64-bit predicate-occupancy mask and sorted predicate
//!   set (`preds(ψ) ⊆ preds(φ)` is necessary — as *sets*, since a
//!   homomorphism may collapse atoms), plus anchored-atom probes: an atom
//!   of `ψ` with a constant or answer variable in position `i` must map to
//!   a fact with that exact term in position `i`, so an empty
//!   `(pred, pos, term)` postings list refutes the check without search.
//! * **Component decomposition** — `ψ`'s atoms split into connected
//!   components under shared *existential* variables (answer variables
//!   and constants are fixed pointwise, so they do not connect). Each
//!   component matches independently; one exponential search becomes a
//!   product of small ones.
//! * **Fold-based core** — [`HomKernel::query_core`] freezes the query
//!   once per round and searches for a retraction that avoids the frozen
//!   image of one atom ([`matcher::exists_match_excluding`]); atoms proven
//!   undroppable stay marked across rounds (undroppability is monotone
//!   under retraction: if `h` avoids atom `k` after dropping atom `j` via
//!   `g`, then `h ∘ g` avoids it in the original). Results are cached per
//!   canonical form.
//!
//! All results are **identical** to the one-shot path — same booleans,
//! same cores up to the canonical form the old code returned — and the
//! deterministic counters of [`HomStats`] are identical at every thread
//! count (see the field docs for which counters are only meaningful on
//! sequential sweeps).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use qr_exec::Executor;
use qr_syntax::query::{ConjunctiveQuery, QAtom, QTerm, Var};
use qr_syntax::{Instance, Pred, Symbol, TermId};

use crate::matcher::{self, JoinPlan, MatchCounters};

/// Caps on the kernel's memo tables: when a table reaches its cap it is
/// cleared (results are unaffected — the caches are pure memoization).
/// Sized far above any saturation run's working set.
const ENTRY_CACHE_CAP: usize = 16_384;
const PLAN_CACHE_CAP: usize = 16_384;
const CORE_CACHE_CAP: usize = 16_384;

/// Postings lists longer than this are not scanned by the anchored-atom
/// prefilter (the probe degrades to "non-empty", which is still sound).
const ANCHOR_SCAN_CAP: usize = 64;

/// A name-independent structural key for a query: atoms canonicalized with
/// variables renumbered by first occurrence (answer variables first, in
/// answer order) and constants kept as themselves. Equal keys imply
/// isomorphic queries that fix answer positions identically, so every
/// containment-style check gives the same boolean for key-equal queries —
/// which is exactly what sharing a [`QueryEntry`] requires.
#[derive(Clone, PartialEq, Eq, Hash)]
struct FreezeKey {
    answer: Vec<u32>,
    atoms: Vec<(Pred, Box<[KeyTerm]>)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum KeyTerm {
    Var(u32),
    Const(Symbol),
}

/// A query's name-independent structural key, exposed as an opaque,
/// hashable value: the same `FreezeKey` the entry cache is keyed by.
/// Equal keys imply isomorphic queries fixing answer positions
/// identically, so two key-equal queries give the same boolean in every
/// containment-style check. The rewrite engine's generation-side dedup
/// keeps a seen-set of these to drop isomorphic re-generations before any
/// homomorphism search.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CanonicalKey(FreezeKey);

/// Computes the [`CanonicalKey`] of `q`. Pure: touches no cache, bumps no
/// counter — cheap enough to run on the generation side for every
/// candidate.
pub fn canonical_key(q: &ConjunctiveQuery) -> CanonicalKey {
    CanonicalKey(freeze_key(q))
}

/// The bit the kernel's 64-bit predicate-occupancy prefilter assigns to
/// `p`. Exposed so `qr-rewrite`'s piece-unifier index builds rule-head and
/// query masks that agree with the kernel's.
pub fn pred_mask_bit(p: &Pred) -> u64 {
    pred_bit(p)
}

fn freeze_key(q: &ConjunctiveQuery) -> FreezeKey {
    let mut atoms: Vec<(Pred, Box<[KeyTerm]>)> = q
        .atoms()
        .iter()
        .map(|a| {
            (
                a.pred,
                a.args
                    .iter()
                    .map(|t| match t {
                        QTerm::Var(v) => KeyTerm::Var(v.0),
                        QTerm::Const(c) => KeyTerm::Const(*c),
                    })
                    .collect(),
            )
        })
        .collect();
    let mut answer: Vec<u32> = q.answer_vars().iter().map(|v| v.0).collect();
    // Two renumber/sort rounds, mirroring `ConjunctiveQuery::canonical`.
    for _ in 0..2 {
        atoms.sort();
        atoms.dedup();
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let touch = |v: u32, remap: &mut HashMap<u32, u32>| {
            let next = remap.len() as u32;
            *remap.entry(v).or_insert(next)
        };
        for v in &answer {
            touch(*v, &mut remap);
        }
        for (_, args) in &atoms {
            for t in args.iter() {
                if let KeyTerm::Var(v) = t {
                    touch(*v, &mut remap);
                }
            }
        }
        for (_, args) in atoms.iter_mut() {
            for t in args.iter_mut() {
                if let KeyTerm::Var(v) = t {
                    *t = KeyTerm::Var(remap[v]);
                }
            }
        }
        answer = answer.iter().map(|v| remap[v]).collect();
    }
    atoms.sort();
    atoms.dedup();
    FreezeKey { answer, atoms }
}

/// A term of a locally-renumbered component atom, the unit of the plan
/// cache key: answer anchors keep their answer *index* (so two components
/// only share a plan when the same positions are pinned to the same
/// answer slots), existential variables are renumbered by first
/// occurrence, constants stay themselves.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum LTerm {
    /// Anchored by answer variable `answer[i]`.
    Ans(u32),
    /// Locally-renumbered existential variable.
    Ex(u32),
    /// A constant.
    Con(Symbol),
}

type PlanKey = Vec<(Pred, Box<[LTerm]>)>;

/// A compiled component: a [`JoinPlan`] over locally-renumbered atoms plus
/// the anchor list mapping local variables back to answer indices. Shared
/// across every query with an isomorphic component.
struct CompiledComponent {
    plan: JoinPlan,
    /// `(local variable, answer index)`: before running the plan, each
    /// local anchor variable is fixed to the corresponding answer term.
    anchors: Vec<(Var, u32)>,
}

/// One atom's anchored positions, for the prefilter: positions holding a
/// constant or an answer variable, resolved against the target's answer
/// tuple at check time.
struct AnchoredAtom {
    pred: Pred,
    bound: Vec<(u32, AnchorTerm)>,
}

#[derive(Clone, Copy)]
enum AnchorTerm {
    Const(TermId),
    Ans(u32),
}

/// Everything the kernel precomputes about one query (shared by all
/// queries with the same structural `FreezeKey`).
pub struct QueryEntry {
    answer_len: usize,
    /// The query frozen into its canonical instance (φ-side material).
    frozen: Instance,
    /// Images of the answer variables under the freeze, in answer order.
    answer_terms: Vec<TermId>,
    /// 64-bit occupancy mask over the hashes of the body's non-`dom`
    /// predicates (ψ ⊆ φ on masks is necessary for a homomorphism ψ → φ).
    mask: u64,
    /// Sorted, deduplicated non-`dom` body predicates with occurrence
    /// counts (the counts are informational; only *set* inclusion is a
    /// sound prefilter, since homomorphisms collapse atoms).
    preds: Vec<(Pred, u32)>,
    /// Atoms with at least one constant- or answer-anchored position.
    anchored: Vec<AnchoredAtom>,
    /// Pairs of answer indices sharing one variable: a hom target must
    /// present equal terms at these index pairs.
    conflicts: Vec<(u32, u32)>,
    /// Connected components of the body under shared existential
    /// variables (ψ-side material).
    components: Vec<Arc<CompiledComponent>>,
}

impl QueryEntry {
    /// The frozen canonical instance of the query.
    pub fn frozen(&self) -> &Instance {
        &self.frozen
    }

    /// Number of answer variables.
    pub fn answer_len(&self) -> usize {
        self.answer_len
    }

    /// Number of connected components the body split into.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The sorted, deduplicated non-`dom` body predicates — the pred-set
    /// the kernel's set-inclusion prefilter compares. Exposed so callers
    /// can organize entries by predicate set (the rewrite engine's
    /// subsumption trie) without recomputing it.
    pub fn pred_set(&self) -> impl Iterator<Item = Pred> + '_ {
        self.preds.iter().map(|(p, _)| *p)
    }
}

fn pred_bit(p: &Pred) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    p.hash(&mut h);
    1 << (h.finish() % 64)
}

/// Deterministic counters surfacing what the kernel saved.
///
/// The first six (`freezes` through `components`) are incremented only at
/// entry acquisition and compilation — single-threaded points even in a
/// parallel saturation run (entries are acquired on the merge thread, in
/// merge order), so they are identical at every thread count and both
/// saturation modes. The search and core counters are incremented inside
/// sweeps that may run on the worker pool with an early-exiting `any`, so
/// they are only deterministic for fully sequential workloads (the `hom`
/// microbench and the marked pairwise sweep) and are only emitted there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HomStats {
    /// Queries frozen and profiled (entry-cache misses).
    pub freezes: u64,
    /// Entry-cache hits: checks that skipped freezing entirely.
    pub freeze_cache_hits: u64,
    /// Component plans compiled (plan-cache misses).
    pub plan_compiles: u64,
    /// Plan-cache hits: components that reused a compiled join order.
    pub plan_cache_hits: u64,
    /// Checks refuted by a prefilter before any backtracking search.
    pub prefilter_rejects: u64,
    /// Total connected components across all frozen queries.
    pub components: u64,
    /// Per-component backtracking searches launched.
    pub searches: u64,
    /// Candidate facts (or domain terms) scanned across all searches,
    /// including the core fold's retraction searches.
    pub search_candidates: u64,
    /// Freeze rounds executed by the core fold.
    pub core_rounds: u64,
    /// Retraction searches attempted by the core fold.
    pub core_searches: u64,
    /// Core-cache hits: cores returned without any search.
    pub core_cache_hits: u64,
}

#[derive(Default)]
struct Counters {
    freezes: AtomicU64,
    freeze_cache_hits: AtomicU64,
    plan_compiles: AtomicU64,
    plan_cache_hits: AtomicU64,
    prefilter_rejects: AtomicU64,
    components: AtomicU64,
    searches: AtomicU64,
    search_candidates: AtomicU64,
    core_rounds: AtomicU64,
    core_searches: AtomicU64,
    core_cache_hits: AtomicU64,
}

/// The kernel: three memo tables plus counters. Cheap to create; safe to
/// share across threads (`&HomKernel` is `Sync`). The free functions of
/// [`crate::containment`] and [`crate::qcore`] delegate to a global
/// instance; the rewrite engine and the bench harness create their own so
/// their [`HomStats`] describe exactly one run.
#[derive(Default)]
pub struct HomKernel {
    entries: Mutex<HashMap<FreezeKey, Arc<QueryEntry>>>,
    plans: Mutex<HashMap<PlanKey, Arc<CompiledComponent>>>,
    cores: Mutex<HashMap<ConjunctiveQuery, ConjunctiveQuery>>,
    c: Counters,
}

impl HomKernel {
    /// A fresh kernel with empty caches and zeroed counters.
    pub fn new() -> HomKernel {
        HomKernel::default()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> HomStats {
        HomStats {
            freezes: self.c.freezes.load(Relaxed),
            freeze_cache_hits: self.c.freeze_cache_hits.load(Relaxed),
            plan_compiles: self.c.plan_compiles.load(Relaxed),
            plan_cache_hits: self.c.plan_cache_hits.load(Relaxed),
            prefilter_rejects: self.c.prefilter_rejects.load(Relaxed),
            components: self.c.components.load(Relaxed),
            searches: self.c.searches.load(Relaxed),
            search_candidates: self.c.search_candidates.load(Relaxed),
            core_rounds: self.c.core_rounds.load(Relaxed),
            core_searches: self.c.core_searches.load(Relaxed),
            core_cache_hits: self.c.core_cache_hits.load(Relaxed),
        }
    }

    /// The cached entry for `q`, freezing and compiling on first sight of
    /// its structural key.
    pub fn entry(&self, q: &ConjunctiveQuery) -> Arc<QueryEntry> {
        self.entry_with_key(canonical_key(q), q)
    }

    /// [`entry`](Self::entry) when the caller already holds `q`'s
    /// [`CanonicalKey`] (the rewrite engine's dedup path computes it for
    /// every candidate anyway, so the key is not recomputed here). `key`
    /// must be `canonical_key(q)`.
    pub fn entry_with_key(&self, key: CanonicalKey, q: &ConjunctiveQuery) -> Arc<QueryEntry> {
        let CanonicalKey(key) = key;
        {
            let cache = self.entries.lock().unwrap();
            if let Some(e) = cache.get(&key) {
                self.c.freeze_cache_hits.fetch_add(1, Relaxed);
                return Arc::clone(e);
            }
        }
        let entry = Arc::new(self.build_entry(q));
        let mut cache = self.entries.lock().unwrap();
        if cache.len() >= ENTRY_CACHE_CAP {
            cache.clear();
        }
        Arc::clone(cache.entry(key).or_insert(entry))
    }

    fn build_entry(&self, q: &ConjunctiveQuery) -> QueryEntry {
        self.c.freezes.fetch_add(1, Relaxed);
        let (frozen, var_map) = q.freeze();
        let answer_terms: Vec<TermId> = q.answer_vars().iter().map(|v| var_map[v]).collect();

        // Predicate profile over non-dom atoms (`dom` needs no matching
        // fact, so it must not constrain the target's predicate set).
        let mut pred_list: Vec<Pred> = q
            .atoms()
            .iter()
            .filter(|a| !a.pred.is_dom())
            .map(|a| a.pred)
            .collect();
        pred_list.sort();
        let mut preds: Vec<(Pred, u32)> = Vec::new();
        for p in pred_list {
            match preds.last_mut() {
                Some((q, n)) if *q == p => *n += 1,
                _ => preds.push((p, 1)),
            }
        }
        let mask = preds.iter().fold(0u64, |m, (p, _)| m | pred_bit(p));

        // First answer index of each answer variable, plus the conflict
        // pairs a duplicated answer variable induces.
        let mut ans_index: HashMap<Var, u32> = HashMap::new();
        let mut conflicts: Vec<(u32, u32)> = Vec::new();
        for (i, v) in q.answer_vars().iter().enumerate() {
            match ans_index.get(v) {
                Some(&first) => conflicts.push((first, i as u32)),
                None => {
                    ans_index.insert(*v, i as u32);
                }
            }
        }

        // Anchored-atom templates for the prefilter.
        let mut anchored: Vec<AnchoredAtom> = Vec::new();
        for a in q.atoms() {
            if a.pred.is_dom() {
                continue;
            }
            let bound: Vec<(u32, AnchorTerm)> = a
                .args
                .iter()
                .enumerate()
                .filter_map(|(pos, t)| match t {
                    QTerm::Const(c) => Some((pos as u32, AnchorTerm::Const(TermId::constant(*c)))),
                    QTerm::Var(v) => ans_index.get(v).map(|&i| (pos as u32, AnchorTerm::Ans(i))),
                })
                .collect();
            if !bound.is_empty() {
                anchored.push(AnchoredAtom {
                    pred: a.pred,
                    bound,
                });
            }
        }

        // Connected components under shared existential variables.
        let n = q.atoms().len();
        let mut uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut Vec<usize>, i: usize) -> usize {
            if uf[i] != i {
                let r = find(uf, uf[i]);
                uf[i] = r;
                return r;
            }
            i
        }
        let mut owner: HashMap<Var, usize> = HashMap::new();
        for (i, a) in q.atoms().iter().enumerate() {
            for v in a.vars() {
                if ans_index.contains_key(&v) {
                    continue;
                }
                match owner.get(&v) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut uf, i), find(&mut uf, j));
                        uf[ri] = rj;
                    }
                    None => {
                        owner.insert(v, i);
                    }
                }
            }
        }
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_of: HashMap<usize, usize> = HashMap::new();
        for i in 0..n {
            let r = find(&mut uf, i);
            match group_of.get(&r) {
                Some(&g) => groups[g].push(i),
                None => {
                    group_of.insert(r, groups.len());
                    groups.push(vec![i]);
                }
            }
        }
        let components: Vec<Arc<CompiledComponent>> = groups
            .iter()
            .map(|idxs| self.compile_component(q, idxs, &ans_index))
            .collect();
        self.c
            .components
            .fetch_add(components.len() as u64, Relaxed);

        QueryEntry {
            answer_len: q.answer_vars().len(),
            frozen,
            answer_terms,
            mask,
            preds,
            anchored,
            conflicts,
            components,
        }
    }

    /// Compiles (or fetches from the plan cache) the join plan for one
    /// component of `q`, given the atom indices of the component.
    fn compile_component(
        &self,
        q: &ConjunctiveQuery,
        idxs: &[usize],
        ans_index: &HashMap<Var, u32>,
    ) -> Arc<CompiledComponent> {
        // Locally-renumbered canonical key: two renumber/sort rounds over
        // the component's atoms, answer anchors kept as answer indices.
        let mut atoms: Vec<(Pred, Box<[LTerm]>)> = idxs
            .iter()
            .map(|&i| {
                let a = &q.atoms()[i];
                (
                    a.pred,
                    a.args
                        .iter()
                        .map(|t| match t {
                            QTerm::Const(c) => LTerm::Con(*c),
                            QTerm::Var(v) => match ans_index.get(v) {
                                Some(&ai) => LTerm::Ans(ai),
                                None => LTerm::Ex(v.0),
                            },
                        })
                        .collect(),
                )
            })
            .collect();
        for _ in 0..2 {
            atoms.sort();
            atoms.dedup();
            let mut remap: HashMap<u32, u32> = HashMap::new();
            for (_, args) in &atoms {
                for t in args.iter() {
                    if let LTerm::Ex(v) = t {
                        let next = remap.len() as u32;
                        remap.entry(*v).or_insert(next);
                    }
                }
            }
            for (_, args) in atoms.iter_mut() {
                for t in args.iter_mut() {
                    if let LTerm::Ex(v) = t {
                        *t = LTerm::Ex(remap[v]);
                    }
                }
            }
        }
        atoms.sort();
        atoms.dedup();
        let key: PlanKey = atoms;
        {
            let plans = self.plans.lock().unwrap();
            if let Some(c) = plans.get(&key) {
                self.c.plan_cache_hits.fetch_add(1, Relaxed);
                return Arc::clone(c);
            }
        }
        self.c.plan_compiles.fetch_add(1, Relaxed);
        // Build the local atom list: local variables are assigned by first
        // occurrence over the canonical key, so every holder of this key
        // computes the identical variable numbering and anchor list.
        let mut local_of_ans: HashMap<u32, Var> = HashMap::new();
        let mut local_of_ex: HashMap<u32, Var> = HashMap::new();
        let mut nvars: u32 = 0;
        let mut anchors: Vec<(Var, u32)> = Vec::new();
        let mut local_atoms: Vec<QAtom> = Vec::with_capacity(key.len());
        for (pred, args) in &key {
            let qargs: Vec<QTerm> = args
                .iter()
                .map(|t| match t {
                    LTerm::Con(c) => QTerm::Const(*c),
                    LTerm::Ans(ai) => {
                        let v = *local_of_ans.entry(*ai).or_insert_with(|| {
                            let v = Var(nvars);
                            nvars += 1;
                            anchors.push((v, *ai));
                            v
                        });
                        QTerm::Var(v)
                    }
                    LTerm::Ex(xi) => {
                        let v = *local_of_ex.entry(*xi).or_insert_with(|| {
                            let v = Var(nvars);
                            nvars += 1;
                            v
                        });
                        QTerm::Var(v)
                    }
                })
                .collect();
            local_atoms.push(QAtom::new(*pred, qargs));
        }
        let bound: Vec<Var> = anchors.iter().map(|(v, _)| *v).collect();
        let plan = JoinPlan::compile(local_atoms, nvars as usize, &bound);
        let compiled = Arc::new(CompiledComponent { plan, anchors });
        let mut plans = self.plans.lock().unwrap();
        if plans.len() >= PLAN_CACHE_CAP {
            plans.clear();
        }
        Arc::clone(plans.entry(key).or_insert(compiled))
    }

    /// The prefilter for entry-vs-entry containment: necessary conditions
    /// for a homomorphism `ψ → freeze(φ)` fixing answer positions. Sound:
    /// `false` is only returned when no homomorphism can exist.
    fn passes_prefilter(psi: &QueryEntry, phi: &QueryEntry) -> bool {
        if psi.mask & !phi.mask != 0 {
            return false;
        }
        // Set-inclusion over the sorted predicate profiles (counts are
        // deliberately ignored: homomorphisms collapse atoms).
        let mut it = phi.preds.iter();
        if !psi
            .preds
            .iter()
            .all(|(p, _)| it.by_ref().any(|(q, _)| q == p))
        {
            return false;
        }
        Self::anchors_possible(psi, &phi.frozen, &phi.answer_terms)
    }

    /// The instance-side prefilter: necessary conditions for
    /// `inst ⊨ ψ(ans)`. Used both entry-vs-entry (with `inst` the frozen
    /// target) and for [`holds`](Self::holds) over arbitrary instances.
    fn anchors_possible(psi: &QueryEntry, inst: &Instance, ans: &[TermId]) -> bool {
        for &(i, j) in &psi.conflicts {
            if ans[i as usize] != ans[j as usize] {
                return false;
            }
        }
        for a in &psi.anchored {
            let resolve = |t: AnchorTerm| match t {
                AnchorTerm::Const(c) => c,
                AnchorTerm::Ans(i) => ans[i as usize],
            };
            let mut best: Option<&[u32]> = None;
            for &(pos, t) in &a.bound {
                let list = inst.with_pred_pos_term(a.pred, pos, resolve(t));
                if list.is_empty() {
                    return false;
                }
                if best.is_none_or(|b| list.len() < b.len()) {
                    best = Some(list);
                }
            }
            if a.bound.len() > 1 {
                let list = best.expect("anchored atoms have at least one bound position");
                if list.len() <= ANCHOR_SCAN_CAP {
                    let ok = list.iter().any(|&f| {
                        let fact = inst.fact(f as usize);
                        a.bound
                            .iter()
                            .all(|&(pos, t)| fact.args[pos as usize] == resolve(t))
                    });
                    if !ok {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Pred-presence prefilter for arbitrary instances (the entry-vs-entry
    /// path gets this for free from the predicate-set inclusion test).
    fn preds_present(psi: &QueryEntry, inst: &Instance) -> bool {
        psi.preds
            .iter()
            .all(|(p, _)| !inst.with_pred(*p).is_empty())
    }

    /// Evaluates `inst ⊨ ψ(ans)` by running each compiled component plan,
    /// anchors fixed to the answer tuple. No prefilter, no counting of
    /// rejects — callers decide where rejects are counted so the
    /// deterministic counters stay deterministic.
    fn eval(&self, psi: &QueryEntry, inst: &Instance, ans: &[TermId]) -> bool {
        debug_assert_eq!(ans.len(), psi.answer_len);
        for &(i, j) in &psi.conflicts {
            if ans[i as usize] != ans[j as usize] {
                return false;
            }
        }
        let mut fixed: Vec<(Var, TermId)> = Vec::new();
        for comp in &psi.components {
            self.c.searches.fetch_add(1, Relaxed);
            fixed.clear();
            fixed.extend(comp.anchors.iter().map(|&(v, i)| (v, ans[i as usize])));
            let mut mc = MatchCounters::default();
            let completed = comp.plan.for_each_match(inst, &fixed, &mut mc, |_| false);
            self.c.search_candidates.fetch_add(mc.candidates, Relaxed);
            if completed {
                // Ran to completion without being stopped: no match.
                return false;
            }
        }
        true
    }

    /// `true` iff `phi` contains `psi` ([`crate::containment::contains`]
    /// semantics), both sides given as cached entries. Prefilter rejects
    /// are counted here — call this only from sequential contexts when the
    /// counters matter.
    pub fn contains_entries(&self, phi: &QueryEntry, psi: &QueryEntry) -> bool {
        assert_eq!(
            phi.answer_len, psi.answer_len,
            "containment requires equal answer arity"
        );
        if !Self::passes_prefilter(psi, phi) {
            self.c.prefilter_rejects.fetch_add(1, Relaxed);
            return false;
        }
        self.eval(psi, &phi.frozen, &phi.answer_terms)
    }

    /// [`contains_entries`](Self::contains_entries) acquiring both entries
    /// from the cache.
    pub fn contains_queries(&self, phi: &ConjunctiveQuery, psi: &ConjunctiveQuery) -> bool {
        let pe = self.entry(phi);
        let se = self.entry(psi);
        self.contains_entries(&pe, &se)
    }

    /// Diagnostic: `true` iff the prefilter alone would refute
    /// `contains(phi, psi)`. Counts nothing; exposed so tests can pin the
    /// prefilter's (set-based, collapse-tolerant) semantics.
    pub fn prefilter_rejects_pair(&self, phi: &ConjunctiveQuery, psi: &ConjunctiveQuery) -> bool {
        let pe = self.entry(phi);
        let se = self.entry(psi);
        !Self::passes_prefilter(&se, &pe)
    }

    /// `true` iff `inst ⊨ q(ans)` ([`crate::matcher::holds`] semantics).
    pub fn holds(&self, q: &ConjunctiveQuery, inst: &Instance, ans: &[TermId]) -> bool {
        assert_eq!(
            ans.len(),
            q.answer_vars().len(),
            "answer tuple arity mismatch"
        );
        let e = self.entry(q);
        if !Self::preds_present(&e, inst) || !Self::anchors_possible(&e, inst, ans) {
            self.c.prefilter_rejects.fetch_add(1, Relaxed);
            return false;
        }
        self.eval(&e, inst, ans)
    }

    /// Parallel disjunct-vs-set sweep: `true` iff some entry in `kept`
    /// subsumes `cand` — i.e. `contains(cand, r)` for some `r`. The
    /// prefilter pass runs sequentially on the calling thread (rejects are
    /// counted deterministically); only the surviving entries go to the
    /// early-exiting parallel `any`, whose boolean is schedule-independent.
    pub fn subsumed_by_any(
        &self,
        exec: &Executor,
        cand: &QueryEntry,
        kept: &[&Arc<QueryEntry>],
    ) -> bool {
        let survivors: Vec<&QueryEntry> = kept
            .iter()
            .map(|e| e.as_ref())
            .filter(|r| {
                debug_assert_eq!(r.answer_len, cand.answer_len);
                if Self::passes_prefilter(r, cand) {
                    true
                } else {
                    self.c.prefilter_rejects.fetch_add(1, Relaxed);
                    false
                }
            })
            .collect();
        exec.any(&survivors, |r| {
            self.eval(r, &cand.frozen, &cand.answer_terms)
        })
    }

    /// Parallel set-vs-disjunct sweep: one flag per entry in `kept`,
    /// `true` iff `contains(r, cand)` — `r` is covered by `cand` and can
    /// be evicted. Flags come back in `kept` order. Prefilter rejects are
    /// counted sequentially, as in
    /// [`subsumed_by_any`](Self::subsumed_by_any).
    pub fn covered_by(
        &self,
        exec: &Executor,
        kept: &[&Arc<QueryEntry>],
        cand: &QueryEntry,
    ) -> Vec<bool> {
        let mut flags = vec![false; kept.len()];
        let mut work: Vec<(usize, &QueryEntry)> = Vec::new();
        for (i, r) in kept.iter().enumerate() {
            debug_assert_eq!(r.answer_len, cand.answer_len);
            if Self::passes_prefilter(cand, r) {
                work.push((i, r.as_ref()));
            } else {
                self.c.prefilter_rejects.fetch_add(1, Relaxed);
            }
        }
        let res = exec.map(&work, |&(_, r)| self.eval(cand, &r.frozen, &r.answer_terms));
        for (&(i, _), ok) in work.iter().zip(res) {
            flags[i] = ok;
        }
        flags
    }

    /// An equivalent subquery from which no atom can be dropped
    /// ([`crate::qcore::query_core`] semantics — same result, found by a
    /// retraction fold instead of n² full `equivalent` round-trips).
    ///
    /// Per round the canonical query is frozen **once** (atom `i` becomes
    /// fact `i` — canonical atoms are sorted and deduplicated, so the
    /// correspondence is 1:1) and each droppable atom is tested with a
    /// single banned-fact search: `ψ` retracts onto `ψ ∖ {atom k}` iff
    /// some homomorphism `ψ → freeze(ψ)` fixing the answer variables
    /// avoids fact `k` (the reverse containment is the identity
    /// embedding). Undroppable atoms stay marked across drops:
    /// undroppability is monotone under retraction (compose the old
    /// witness with the new retraction), exactly like the answer-orphan
    /// condition.
    pub fn query_core(&self, q: &ConjunctiveQuery) -> ConjunctiveQuery {
        let mut current = q.canonical();
        {
            let cores = self.cores.lock().unwrap();
            if let Some(c) = cores.get(&current) {
                self.c.core_cache_hits.fetch_add(1, Relaxed);
                return c.clone();
            }
        }
        let key = current.clone();
        if current.atoms().iter().any(|a| a.pred.is_dom()) {
            // The banned-fact trick is unsound for `dom` atoms (a banned
            // fact's terms stay in the frozen domain); fall back to the
            // greedy equivalent-based loop on this rare input.
            let core = self.query_core_greedy(current);
            return self.cache_core(key, core);
        }
        let mut undroppable = vec![false; current.size()];
        loop {
            if current.size() <= 1 {
                break;
            }
            self.c.core_rounds.fetch_add(1, Relaxed);
            let (frozen, var_map) = current.freeze();
            let fixed: Vec<(Var, TermId)> = current
                .answer_vars()
                .iter()
                .map(|v| (*v, var_map[v]))
                .collect();
            let nvars = current.var_names().len();
            let mut dropped = None;
            for (skip, undrop) in undroppable.iter_mut().enumerate() {
                if *undrop {
                    continue;
                }
                // Dropping an atom may orphan an answer variable; such
                // removals cannot preserve equivalence. The condition is
                // monotone under further drops, so mark rather than skip.
                if !current.answer_vars().iter().all(|v| {
                    current
                        .atoms()
                        .iter()
                        .enumerate()
                        .any(|(i, a)| i != skip && a.mentions(*v))
                }) {
                    *undrop = true;
                    continue;
                }
                self.c.core_searches.fetch_add(1, Relaxed);
                let mut mc = MatchCounters::default();
                let found = matcher::exists_match_excluding(
                    current.atoms(),
                    nvars,
                    &frozen,
                    &fixed,
                    skip,
                    &mut mc,
                );
                self.c.search_candidates.fetch_add(mc.candidates, Relaxed);
                if found {
                    dropped = Some(skip);
                    break;
                }
                *undrop = true;
            }
            let Some(skip) = dropped else {
                break;
            };
            let atoms: Vec<QAtom> = current
                .atoms()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, a)| a.clone())
                .collect();
            let candidate = ConjunctiveQuery::new(
                current.answer_vars().to_vec(),
                atoms,
                current.var_names().to_vec(),
            );
            let (canon, map) = candidate.canonical_with_map();
            let mut marks = vec![false; canon.size()];
            for (ci, &ni) in map.iter().enumerate() {
                let oi = if ci < skip { ci } else { ci + 1 };
                if undroppable[oi] {
                    marks[ni] = true;
                }
            }
            current = canon;
            undroppable = marks;
        }
        self.cache_core(key, current)
    }

    /// The historical greedy core loop (kept for `dom`-mentioning queries,
    /// where the fold's banned-fact trick does not apply).
    fn query_core_greedy(&self, mut current: ConjunctiveQuery) -> ConjunctiveQuery {
        'outer: loop {
            if current.size() <= 1 {
                return current;
            }
            for skip in 0..current.size() {
                let atoms: Vec<QAtom> = current
                    .atoms()
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, a)| a.clone())
                    .collect();
                if !current
                    .answer_vars()
                    .iter()
                    .all(|v| atoms.iter().any(|a| a.mentions(*v)))
                {
                    continue;
                }
                let candidate = ConjunctiveQuery::new(
                    current.answer_vars().to_vec(),
                    atoms,
                    current.var_names().to_vec(),
                );
                if self.contains_queries(&current, &candidate)
                    && self.contains_queries(&candidate, &current)
                {
                    current = candidate.canonical();
                    continue 'outer;
                }
            }
            return current;
        }
    }

    fn cache_core(&self, key: ConjunctiveQuery, core: ConjunctiveQuery) -> ConjunctiveQuery {
        let mut cores = self.cores.lock().unwrap();
        if cores.len() >= CORE_CACHE_CAP {
            cores.clear();
        }
        cores.insert(key, core.clone());
        core
    }
}

/// The process-wide kernel behind the free functions of
/// [`crate::containment`], [`crate::qcore`] and [`crate::matcher::holds`].
/// Its stats are never emitted (concurrent callers would make them
/// meaningless); workloads that report [`HomStats`] create their own
/// kernel.
pub fn global_kernel() -> &'static HomKernel {
    static GLOBAL: OnceLock<HomKernel> = OnceLock::new();
    GLOBAL.get_or_init(HomKernel::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::parser::{parse_instance, parse_query};

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    #[test]
    fn entry_cache_hits_on_isomorphic_queries() {
        let k = HomKernel::new();
        let q1 = parse_query("?(X) :- e(X,Y), e(Y,Z).").unwrap();
        let q2 = parse_query("?(A) :- e(B,C), e(A,B).").unwrap();
        let e1 = k.entry(&q1);
        let e2 = k.entry(&q2);
        assert!(Arc::ptr_eq(&e1, &e2), "isomorphic queries share an entry");
        let s = k.stats();
        assert_eq!(s.freezes, 1);
        assert_eq!(s.freeze_cache_hits, 1);
    }

    #[test]
    fn distinct_structures_get_distinct_entries() {
        let k = HomKernel::new();
        let path = k.entry(&parse_query("? :- e(X,Y), e(Y,Z).").unwrap());
        let fork = k.entry(&parse_query("? :- e(X,Y), e(X,Z).").unwrap());
        assert!(!Arc::ptr_eq(&path, &fork));
        // Constants are part of the structure.
        let ka = k.entry(&parse_query("? :- p(a).").unwrap());
        let kb = k.entry(&parse_query("? :- p(b).").unwrap());
        assert!(!Arc::ptr_eq(&ka, &kb));
        let kx = k.entry(&parse_query("? :- p(X).").unwrap());
        assert!(!Arc::ptr_eq(&ka, &kx));
    }

    #[test]
    fn answer_anchoring_distinguishes_entries() {
        // Same body, different answer tuples: must not share an entry.
        let k = HomKernel::new();
        let e1 = k.entry(&parse_query("?(X,Y) :- e(X,Y).").unwrap());
        let e2 = k.entry(&parse_query("?(Y,X) :- e(X,Y).").unwrap());
        assert!(!Arc::ptr_eq(&e1, &e2));
    }

    #[test]
    fn components_split_on_existential_connectivity() {
        let k = HomKernel::new();
        // Two existential islands.
        let e = k.entry(&parse_query("? :- e(X,Y), f(Z,W).").unwrap());
        assert_eq!(e.component_count(), 2);
        // An answer variable does not connect (it is fixed pointwise).
        let e = k.entry(&parse_query("?(A) :- e(A,Y), f(A,Z).").unwrap());
        assert_eq!(e.component_count(), 2);
        // An existential variable does.
        let e = k.entry(&parse_query("? :- e(X,Y), f(Y,Z).").unwrap());
        assert_eq!(e.component_count(), 1);
    }

    #[test]
    fn plan_cache_shares_component_shapes_across_queries() {
        let k = HomKernel::new();
        // Both queries contain the same e-chain component shape next to a
        // different second component.
        k.entry(&parse_query("? :- e(X,Y), e(Y,Z), f(W,W).").unwrap());
        k.entry(&parse_query("? :- e(X,Y), e(Y,Z), g(W,W).").unwrap());
        let s = k.stats();
        assert_eq!(s.freezes, 2);
        assert!(s.plan_cache_hits >= 1, "the shared e-chain plan is reused");
    }

    #[test]
    fn contains_matches_reference_on_basics() {
        let k = HomKernel::new();
        let p2 = parse_query("?(X) :- e(X,Y), e(Y,Z).").unwrap();
        let p1 = parse_query("?(X) :- e(X,Y).").unwrap();
        assert!(k.contains_queries(&p2, &p1));
        assert!(!k.contains_queries(&p1, &p2));
        // Collapse through the prefilter: 2-path into self-loop.
        let path = parse_query("? :- e(X,Y), e(Y,Z).").unwrap();
        let selfloop = parse_query("? :- e(A,A).").unwrap();
        assert!(k.contains_queries(&selfloop, &path));
        assert!(!k.contains_queries(&path, &selfloop));
        // Constants.
        let qa = parse_query("? :- p(a).").unwrap();
        let qx = parse_query("? :- p(X).").unwrap();
        assert!(k.contains_queries(&qa, &qx));
        assert!(!k.contains_queries(&qx, &qa));
        // Rigid answer variables.
        let q1 = parse_query("?(X,Y) :- e(X,Y).").unwrap();
        let q2 = parse_query("?(X,Y) :- e(Y,X).").unwrap();
        assert!(!k.contains_queries(&q1, &q2));
        assert!(!k.contains_queries(&q2, &q1));
    }

    #[test]
    fn prefilter_is_a_set_not_a_multiset() {
        // A homomorphism may collapse atoms: the 2-path maps into the
        // self-loop even though the source uses `e` twice and the target
        // once. The prefilter must not prune this.
        let k = HomKernel::new();
        let path = parse_query("? :- e(X,Y), e(Y,Z).").unwrap();
        let selfloop = parse_query("? :- e(A,A).").unwrap();
        assert!(!k.prefilter_rejects_pair(&selfloop, &path));
        assert!(!k.prefilter_rejects_pair(&path, &selfloop));
        // Disjoint predicates are pruned in both directions.
        let other = parse_query("? :- f(X,Y).").unwrap();
        assert!(k.prefilter_rejects_pair(&path, &other));
        assert!(k.prefilter_rejects_pair(&other, &path));
        // Strict subset works one way only.
        let mixed = parse_query("? :- e(X,Y), f(Y,Z).").unwrap();
        assert!(!k.prefilter_rejects_pair(&mixed, &path));
        assert!(k.prefilter_rejects_pair(&path, &mixed));
    }

    #[test]
    fn anchored_prefilter_rejects_mismatched_constants() {
        let k = HomKernel::new();
        let qa = parse_query("? :- p(a).").unwrap();
        let qb = parse_query("? :- p(b).").unwrap();
        assert!(k.prefilter_rejects_pair(&qa, &qb));
        let s0 = k.stats().prefilter_rejects;
        assert!(!k.contains_queries(&qa, &qb));
        assert!(k.stats().prefilter_rejects > s0, "reject was counted");
    }

    #[test]
    fn duplicate_answer_variables_require_equal_terms() {
        let k = HomKernel::new();
        let qxx = parse_query("?(X,X) :- e(X,X).").unwrap();
        let inst = parse_instance("e(a,a). e(a,b).").unwrap();
        assert!(k.holds(&qxx, &inst, &[c("a"), c("a")]));
        assert!(!k.holds(&qxx, &inst, &[c("a"), c("b")]));
    }

    #[test]
    fn holds_matches_reference() {
        let k = HomKernel::new();
        let inst = parse_instance("e(a,b). e(b,c).").unwrap();
        let q = parse_query("?(X) :- e(X,Y), e(Y,Z).").unwrap();
        assert!(k.holds(&q, &inst, &[c("a")]));
        assert!(!k.holds(&q, &inst, &[c("b")]));
        // Prefilter path: predicate absent from the instance.
        let qf = parse_query("?(X) :- f(X,Y).").unwrap();
        assert!(!k.holds(&qf, &inst, &[c("a")]));
    }

    #[test]
    fn fold_core_matches_greedy_semantics() {
        let k = HomKernel::new();
        for (src, size) in [
            ("?(X) :- e(X,Y), e(X,Z).", 1),
            ("? :- e(X,X), e(X,Y), e(Y,Z), e(Z,W).", 1),
            ("?(X) :- e(X,Y), e(Y,Z).", 2),
            ("?(A) :- e(A,B), e(X,X).", 2),
            (
                "? :- e(A,B), e(B,C), e(C,D), e(D,E), e(E,F), e(F,A), \
                      e(T1,T2), e(T2,T3), e(T3,T1).",
                3,
            ),
        ] {
            let q = parse_query(src).unwrap();
            let core = k.query_core(&q);
            assert_eq!(core.size(), size, "{src}");
            assert!(
                k.contains_queries(&q, &core) && k.contains_queries(&core, &q),
                "{src}: core is equivalent"
            );
        }
    }

    #[test]
    fn core_cache_hits_on_repeat() {
        let k = HomKernel::new();
        let q = parse_query("?(X) :- e(X,Y), e(X,Z).").unwrap();
        let c1 = k.query_core(&q);
        let c2 = k.query_core(&q);
        assert_eq!(c1, c2);
        assert_eq!(k.stats().core_cache_hits, 1);
    }
}
