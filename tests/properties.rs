//! Property-based tests for the core invariants: chase monotonicity and
//! Observation 8, containment as a preorder, query cores, instance cores,
//! and soundness of the marked-query operations against the chase
//! (Lemma 52 on random green paths).

use qr_testkit::{check, Rng};
use query_rewritability::chase::{chase, ChaseBudget};
use query_rewritability::core::marked::{ColorMap, MarkedQuery, StepResult};
use query_rewritability::core::theories::t_d;
use query_rewritability::hom::containment::{contains, equivalent};
use query_rewritability::hom::qcore::query_core;
use query_rewritability::hom::{holds, structure::structure_core};
use query_rewritability::prelude::*;

/// A random small edge instance over `e/2`.
fn edge_instance(rng: &mut Rng) -> Instance {
    let n = rng.range(1, 10);
    let mut src = String::new();
    for _ in 0..n {
        let a = rng.below(6);
        let b = rng.below(6);
        src.push_str(&format!("e(v{a}, v{b}).\n"));
    }
    parse_instance(&src).unwrap()
}

/// A random connected-ish Boolean path/tree query over `e/2`.
fn small_query(rng: &mut Rng) -> ConjunctiveQuery {
    let n = rng.range(1, 6);
    let atoms: Vec<String> = (0..n)
        .map(|_| format!("e(X{}, X{})", rng.below(5), rng.below(5)))
        .collect();
    parse_query(&format!("? :- {}.", atoms.join(", "))).unwrap()
}

#[test]
fn chase_is_monotone() {
    check("chase_is_monotone", 48, |rng| {
        let db = edge_instance(rng);
        let extra = edge_instance(rng);
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let big = db.union(&extra);
        let ch_small = chase(&t, &db, ChaseBudget::rounds(4));
        let ch_big = chase(&t, &big, ChaseBudget::rounds(4));
        assert!(ch_small.instance.subset_of(&ch_big.instance));
    });
}

#[test]
fn observation_8_literal() {
    check("observation_8_literal", 48, |rng| {
        // D ⊆ F ⊆ Ch(T,D) ⇒ Ch(T,F) = Ch(T,D) — literally, thanks to the
        // Skolem naming convention. On bounded prefixes: Ch_k(D) ⊆ Ch_k(F).
        let db = edge_instance(rng);
        let cut = rng.below(3);
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let ch = chase(&t, &db, ChaseBudget::rounds(6));
        let f = ch.prefix(cut);
        let ch_f = chase(&t, &f, ChaseBudget::rounds(6));
        assert!(ch.instance.subset_of(&ch_f.instance));
    });
}

#[test]
fn containment_is_reflexive_transitive() {
    check("containment_is_reflexive_transitive", 48, |rng| {
        let q1 = small_query(rng);
        let q2 = small_query(rng);
        let q3 = small_query(rng);
        assert!(contains(&q1, &q1));
        if contains(&q1, &q2) && contains(&q2, &q3) {
            assert!(contains(&q1, &q3));
        }
    });
}

#[test]
fn query_core_is_equivalent_and_minimal() {
    check("query_core_is_equivalent_and_minimal", 48, |rng| {
        let q = small_query(rng);
        let core = query_core(&q);
        assert!(equivalent(&q, &core));
        assert!(core.size() <= q.size());
        // Minimality: dropping any single atom changes the semantics
        // (unless it orphans nothing — query_core guarantees this).
        if core.size() > 1 {
            for skip in 0..core.size() {
                let atoms: Vec<_> = core
                    .atoms()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, a)| a.clone())
                    .collect();
                let smaller = ConjunctiveQuery::new(vec![], atoms, core.var_names().to_vec());
                assert!(!equivalent(&core, &smaller));
            }
        }
    });
}

#[test]
fn structure_core_retracts() {
    check("structure_core_retracts", 48, |rng| {
        let db = edge_instance(rng);
        let (core, retraction) = structure_core(&db, &Default::default());
        assert!(core.subset_of(&db));
        // The retraction maps every domain term into the core's domain.
        for t in db.domain() {
            assert!(core.domain().contains(&retraction[t]));
        }
        // Idempotence.
        let (core2, _) = structure_core(&core, &Default::default());
        assert_eq!(core2, core);
    });
}

#[test]
fn marked_operations_sound_on_green_paths() {
    check("marked_operations_sound_on_green_paths", 48, |rng| {
        // Lemma 52 on concrete data: applying one operation to a marked
        // version of the path query preserves satisfaction over the chase
        // of a small green path.
        let len = rng.range(1, 5);
        let seed_marking = rng.below(16);
        let colors = ColorMap::td();
        let atoms: Vec<String> = (0..len).map(|i| format!("g(X{i}, X{})", i + 1)).collect();
        let q = parse_query(&format!("?(X0) :- {}.", atoms.join(", "))).unwrap();
        let markings = MarkedQuery::markings_of(&q, &colors).unwrap();
        let mq = &markings[seed_marking % markings.len()];

        let (db, a, _) = query_rewritability::core::theories::green_path(3, "pp");
        let ch = chase(
            &t_d(),
            &db,
            ChaseBudget {
                max_rounds: 4,
                max_facts: 100_000,
            },
        );

        let satisfied = |m: &MarkedQuery| -> bool {
            match m.to_cq(&colors) {
                None => true,
                Some(cq) => {
                    // Approximate Definition 48 by plain CQ satisfaction
                    // restricted soundness check: if the *replaced* set is
                    // satisfied, the original must be too, and vice versa
                    // under the full marked semantics; for the path query
                    // the marked and unmarked semantics coincide on
                    // disjuncts whose answers are D-constants.
                    holds(&cq, &ch.instance, &[a])
                }
            }
        };
        if mq.is_live() {
            if let StepResult::Replaced(qs) = mq.step() {
                // Soundness direction we can check with plain satisfaction:
                // every replacement satisfied ⇒ original satisfied.
                if qs.iter().any(satisfied) {
                    assert!(satisfied(mq), "replacement satisfied but original not");
                }
            }
        }
    });
}

#[test]
fn canonical_forms_are_stable() {
    // Regression guard: canonicalization is idempotent.
    let q = parse_query("? :- e(A,B), e(B,C), e(C,A).").unwrap();
    assert_eq!(q.canonical(), q.canonical().canonical());
}
