//! Predicates and ground facts.

use std::fmt;

use crate::symbol::Symbol;
use crate::term::TermId;

/// A predicate: an interned name together with an arity.
///
/// Two predicates with the same name but different arities are distinct;
/// the parser rejects inconsistent arities within one input.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    name: Symbol,
    arity: u32,
}

impl Pred {
    /// Creates (or looks up) the predicate `name/arity`.
    pub fn new(name: impl Into<Symbol>, arity: u32) -> Pred {
        Pred {
            name: name.into(),
            arity,
        }
    }

    /// The builtin unary domain predicate `dom/1`.
    ///
    /// `dom(x)` holds for every term of the active domain of the structure
    /// being chased; it models the paper's rules of the form
    /// `∀x (true ⇒ ∃z R(x,z))` (Definition 45). It never occurs in facts.
    pub fn dom() -> Pred {
        Pred::new("dom", 1)
    }

    /// `true` iff this is the builtin domain predicate.
    pub fn is_dom(self) -> bool {
        self == Pred::dom()
    }

    /// Predicate name.
    pub fn name(self) -> Symbol {
        self.name
    }

    /// Predicate arity.
    pub fn arity(self) -> u32 {
        self.arity
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A ground fact `p(t₁,…,tₖ)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The predicate.
    pub pred: Pred,
    /// The argument terms; `args.len() == pred.arity()`.
    pub args: Box<[TermId]>,
}

impl Fact {
    /// Creates a fact, checking the arity.
    pub fn new(pred: Pred, args: impl Into<Box<[TermId]>>) -> Fact {
        let args = args.into();
        assert_eq!(
            args.len(),
            pred.arity() as usize,
            "arity mismatch constructing fact for {pred:?}"
        );
        Fact { pred, args }
    }

    /// Iterates over the terms of the fact.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + '_ {
        self.args.iter().copied()
    }

    /// `true` iff every argument is a constant (i.e. no chase-invented term).
    pub fn is_original(&self) -> bool {
        self.terms().all(TermId::is_const)
    }

    /// Maximum Skolem nesting depth among the arguments.
    pub fn term_depth(&self) -> usize {
        self.terms().map(|t| t.depth()).max().unwrap_or(0)
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> TermId {
        TermId::constant(Symbol::intern(name))
    }

    #[test]
    fn fact_equality_is_structural() {
        let p = Pred::new("e", 2);
        let f1 = Fact::new(p, vec![c("a"), c("b")]);
        let f2 = Fact::new(p, vec![c("a"), c("b")]);
        assert_eq!(f1, f2);
        let f3 = Fact::new(p, vec![c("b"), c("a")]);
        assert_ne!(f1, f3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn fact_arity_checked() {
        let p = Pred::new("e", 2);
        let _ = Fact::new(p, vec![c("a")]);
    }

    #[test]
    fn dom_predicate_is_recognised() {
        assert!(Pred::dom().is_dom());
        assert!(!Pred::new("dom", 2).is_dom());
        assert!(!Pred::new("e", 1).is_dom());
    }

    #[test]
    fn display() {
        let p = Pred::new("mother", 2);
        let f = Fact::new(p, vec![c("abel"), c("eve")]);
        assert_eq!(format!("{f}"), "mother(abel,eve)");
    }
}
