//! Versioned binary formats for certificate bundles.
//!
//! Two formats, built on the same std-only varint codec as the `QRIN`
//! instance checkpoints in `qr-syntax`:
//!
//! * `QRRC` v1 — rewriting certificate bundles. Queries are encoded
//!   structurally (variable names, answer indices, atoms with
//!   predicate name/arity and var/const-tagged arguments) and re-
//!   interned on decode, so a decoded bundle compares `Eq` to the
//!   original within one process.
//! * `QRCC` v1 — chase certificate bundles. Pure index data (fact,
//!   rule, trigger, and witness indices); the instance itself travels
//!   separately (or not at all — the harness replays in-memory).
//!
//! Decoders never panic: every structural violation that would trip a
//! `ConjunctiveQuery::new` assertion (empty body, out-of-range variable,
//! unsafe answer variable) is caught first and reported as a located
//! [`DecodeError`].

use qr_chase::{ChaseCert, ChaseCertBundle};
use qr_rewrite::{RewriteCert, RewriteCertBundle, RewriteStep};
use qr_storage::{ByteReader, ByteWriter, DecodeError, DecodeErrorKind};
use qr_syntax::{ConjunctiveQuery, Pred, QAtom, QTerm, Symbol, Var};

/// Magic bytes of the rewriting-certificate format.
pub const QRRC_MAGIC: &[u8; 4] = b"QRRC";
/// Magic bytes of the chase-certificate format.
pub const QRCC_MAGIC: &[u8; 4] = b"QRCC";
const VERSION: u64 = 1;

fn write_query(w: &mut ByteWriter, q: &ConjunctiveQuery) {
    w.varint(q.var_names().len() as u64);
    for s in q.var_names() {
        w.str(s.as_str());
    }
    w.varint(q.answer_vars().len() as u64);
    for v in q.answer_vars() {
        w.varint(v.index() as u64);
    }
    w.varint(q.atoms().len() as u64);
    for a in q.atoms() {
        w.str(a.pred.name().as_str());
        w.varint(u64::from(a.pred.arity()));
        for t in a.args.iter() {
            write_term(w, t);
        }
    }
}

fn write_term(w: &mut ByteWriter, t: &QTerm) {
    match t {
        QTerm::Var(v) => {
            w.varint(0);
            w.varint(v.index() as u64);
        }
        QTerm::Const(c) => {
            w.varint(1);
            w.str(c.as_str());
        }
    }
}

fn write_terms(w: &mut ByteWriter, ts: &[QTerm]) {
    w.varint(ts.len() as u64);
    for t in ts {
        write_term(w, t);
    }
}

/// Encodes a rewriting certificate bundle as `QRRC` v1 bytes.
pub fn encode_rewrite_certs(bundle: &RewriteCertBundle) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.raw(QRRC_MAGIC);
    w.varint(VERSION);
    w.varint(bundle.certs.len() as u64);
    for cert in &bundle.certs {
        match &cert.step {
            None => w.varint(0),
            Some(step) => {
                w.varint(1);
                w.varint(u64::from(step.parent));
                w.varint(u64::from(step.rule));
                w.varint(step.unified.len() as u64);
                for &(a, h) in &step.unified {
                    w.varint(u64::from(a));
                    w.varint(u64::from(h));
                }
            }
        }
        write_query(&mut w, &cert.query);
        write_terms(&mut w, &cert.to_query);
        write_terms(&mut w, &cert.from_query);
    }
    w.varint(bundle.final_disjuncts.len() as u64);
    for &n in &bundle.final_disjuncts {
        w.varint(u64::from(n));
    }
    w.into_vec()
}

fn read_u32(r: &mut ByteReader) -> Result<u32, DecodeError> {
    let at = r.pos();
    let v = r.varint()?;
    u32::try_from(v)
        .map_err(|_| DecodeError::at(at, DecodeErrorKind::Malformed("index overflows u32")))
}

fn read_len(r: &mut ByteReader, what: &'static str) -> Result<usize, DecodeError> {
    let at = r.pos();
    let v = r.varint()?;
    // A length can never exceed the remaining stream (every element is at
    // least one byte) — reject absurd counts before allocating.
    usize::try_from(v)
        .ok()
        .filter(|&n| n <= (1 << 32))
        .ok_or(DecodeError::at(at, DecodeErrorKind::Malformed(what)))
}

fn read_term(r: &mut ByteReader, nvars: usize) -> Result<QTerm, DecodeError> {
    let at = r.pos();
    match r.varint()? {
        0 => {
            let at = r.pos();
            let v = r.varint()? as usize;
            if v >= nvars {
                return Err(DecodeError::at(
                    at,
                    DecodeErrorKind::Malformed("variable index out of range"),
                ));
            }
            Ok(QTerm::Var(Var(v as u32)))
        }
        1 => Ok(QTerm::Const(Symbol::intern(r.str()?))),
        _ => Err(DecodeError::at(
            at,
            DecodeErrorKind::Malformed("bad term tag"),
        )),
    }
}

fn read_query(r: &mut ByteReader) -> Result<ConjunctiveQuery, DecodeError> {
    let nvars = read_len(r, "variable count")?;
    let mut names = Vec::with_capacity(nvars.min(1024));
    for _ in 0..nvars {
        names.push(Symbol::intern(r.str()?));
    }
    let nanswers = read_len(r, "answer count")?;
    let mut answer = Vec::with_capacity(nanswers.min(1024));
    for _ in 0..nanswers {
        let at = r.pos();
        let v = r.varint()? as usize;
        if v >= nvars {
            return Err(DecodeError::at(
                at,
                DecodeErrorKind::Malformed("answer variable out of range"),
            ));
        }
        answer.push(Var(v as u32));
    }
    let at_atoms = r.pos();
    let natoms = read_len(r, "atom count")?;
    if natoms == 0 {
        return Err(DecodeError::at(
            at_atoms,
            DecodeErrorKind::Malformed("empty query body"),
        ));
    }
    let mut atoms = Vec::with_capacity(natoms.min(1024));
    for _ in 0..natoms {
        let name = Symbol::intern(r.str()?);
        let at = r.pos();
        let arity = r.varint()?;
        let arity = u32::try_from(arity)
            .ok()
            .filter(|&a| a <= (1 << 16))
            .ok_or(DecodeError::at(at, DecodeErrorKind::Malformed("bad arity")))?;
        let mut args = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            args.push(read_term(r, nvars)?);
        }
        atoms.push(QAtom::new(Pred::new(name, arity), args));
    }
    // `ConjunctiveQuery::new` asserts answer safety; report it as a
    // decode error instead of panicking on hostile bytes.
    for v in &answer {
        if !atoms.iter().any(|a| a.mentions(*v)) {
            return Err(DecodeError::at(
                at_atoms,
                DecodeErrorKind::Malformed("answer variable outside body"),
            ));
        }
    }
    Ok(ConjunctiveQuery::new(answer, atoms, names))
}

fn read_terms(r: &mut ByteReader, nvars: usize) -> Result<Vec<QTerm>, DecodeError> {
    let n = read_len(r, "term count")?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(read_term(r, nvars)?);
    }
    Ok(out)
}

fn read_header(r: &mut ByteReader, magic: &[u8; 4]) -> Result<(), DecodeError> {
    if r.raw(4).map_err(|e| DecodeError::at(0, e.kind))? != magic {
        return Err(DecodeError::at(0, DecodeErrorKind::BadMagic));
    }
    let at = r.pos();
    let version = r.varint()?;
    if version != VERSION {
        return Err(DecodeError::at(
            at,
            DecodeErrorKind::UnsupportedVersion(version),
        ));
    }
    Ok(())
}

fn finish(r: &ByteReader) -> Result<(), DecodeError> {
    if !r.is_at_end() {
        return Err(r.error(DecodeErrorKind::Malformed("trailing bytes")));
    }
    Ok(())
}

/// Decodes `QRRC` v1 bytes back into a rewriting certificate bundle.
pub fn decode_rewrite_certs(bytes: &[u8]) -> Result<RewriteCertBundle, DecodeError> {
    let mut r = ByteReader::new(bytes);
    read_header(&mut r, QRRC_MAGIC)?;
    let ncerts = read_len(&mut r, "certificate count")?;
    let mut certs = Vec::with_capacity(ncerts.min(1024));
    for _ in 0..ncerts {
        let at = r.pos();
        let step = match r.varint()? {
            0 => None,
            1 => {
                let parent = read_u32(&mut r)?;
                let rule = read_u32(&mut r)?;
                let npairs = read_len(&mut r, "unifier pair count")?;
                let mut unified = Vec::with_capacity(npairs.min(1024));
                for _ in 0..npairs {
                    let a = read_u32(&mut r)?;
                    let h = read_u32(&mut r)?;
                    unified.push((a, h));
                }
                Some(RewriteStep {
                    parent,
                    rule,
                    unified,
                })
            }
            _ => {
                return Err(DecodeError::at(
                    at,
                    DecodeErrorKind::Malformed("bad step tag"),
                ))
            }
        };
        let query = read_query(&mut r)?;
        // `to_query` maps into this cert's own query, so its variable
        // indices are bounded by it. `from_query` maps into the *raw*
        // rewriting, whose variable count is only known at replay time —
        // decode with the u32 bound; the checker's atom-image validation
        // is authoritative there.
        let to_query = read_terms(&mut r, query.var_names().len())?;
        let from_query = read_terms(&mut r, u32::MAX as usize + 1)?;
        certs.push(RewriteCert {
            step,
            query,
            to_query,
            from_query,
        });
    }
    let nfinals = read_len(&mut r, "final count")?;
    let mut final_disjuncts = Vec::with_capacity(nfinals.min(1024));
    for _ in 0..nfinals {
        final_disjuncts.push(read_u32(&mut r)?);
    }
    finish(&r)?;
    Ok(RewriteCertBundle {
        certs,
        final_disjuncts,
    })
}

/// Encodes a chase certificate bundle as `QRCC` v1 bytes.
pub fn encode_chase_certs(bundle: &ChaseCertBundle) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.raw(QRCC_MAGIC);
    w.varint(VERSION);
    w.varint(u64::from(bundle.base));
    w.varint(bundle.certs.len() as u64);
    for cert in &bundle.certs {
        w.varint(u64::from(cert.fact));
        w.varint(u64::from(cert.rule));
        w.varint(cert.trigger.len() as u64);
        for &t in &cert.trigger {
            w.varint(u64::from(t));
        }
        w.varint(cert.dom.len() as u64);
        for &(f, p) in &cert.dom {
            w.varint(u64::from(f));
            w.varint(u64::from(p));
        }
    }
    w.into_vec()
}

/// Decodes `QRCC` v1 bytes back into a chase certificate bundle.
pub fn decode_chase_certs(bytes: &[u8]) -> Result<ChaseCertBundle, DecodeError> {
    let mut r = ByteReader::new(bytes);
    read_header(&mut r, QRCC_MAGIC)?;
    let base = read_u32(&mut r)?;
    let ncerts = read_len(&mut r, "certificate count")?;
    let mut certs = Vec::with_capacity(ncerts.min(1024));
    for _ in 0..ncerts {
        let fact = read_u32(&mut r)?;
        let rule = read_u32(&mut r)?;
        let ntrig = read_len(&mut r, "trigger count")?;
        let mut trigger = Vec::with_capacity(ntrig.min(1024));
        for _ in 0..ntrig {
            trigger.push(read_u32(&mut r)?);
        }
        let ndom = read_len(&mut r, "dom witness count")?;
        let mut dom = Vec::with_capacity(ndom.min(1024));
        for _ in 0..ndom {
            let f = read_u32(&mut r)?;
            let p = read_u32(&mut r)?;
            dom.push((f, p));
        }
        certs.push(ChaseCert {
            fact,
            rule,
            trigger,
            dom,
        });
    }
    finish(&r)?;
    Ok(ChaseCertBundle { base, certs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_chase::{chase, emit_chase_certs, ChaseBudget};
    use qr_exec::Executor;
    use qr_rewrite::{rewrite_certified, RewriteBudget, SaturationMode};
    use qr_syntax::{parse_instance, parse_query, parse_theory};

    fn rewrite_bundle() -> RewriteCertBundle {
        let theory = parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap();
        let query = parse_query("?(X) :- mother(X, M).").unwrap();
        rewrite_certified(
            &theory,
            &query,
            RewriteBudget::default(),
            &Executor::sequential(),
            SaturationMode::Pipelined,
        )
        .unwrap()
        .1
    }

    fn chase_bundle() -> ChaseCertBundle {
        let theory = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let db = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let c = chase(&theory, &db, ChaseBudget::default());
        emit_chase_certs(&theory, &c)
    }

    #[test]
    fn rewrite_bundle_roundtrips() {
        let bundle = rewrite_bundle();
        let bytes = encode_rewrite_certs(&bundle);
        let decoded = decode_rewrite_certs(&bytes).unwrap();
        assert_eq!(decoded, bundle);
    }

    #[test]
    fn chase_bundle_roundtrips() {
        let bundle = chase_bundle();
        let bytes = encode_chase_certs(&bundle);
        let decoded = decode_chase_certs(&bytes).unwrap();
        assert_eq!(decoded, bundle);
    }

    #[test]
    fn wrong_magic_is_rejected_at_offset_zero() {
        let mut bytes = encode_rewrite_certs(&rewrite_bundle());
        bytes[0] = b'X';
        assert_eq!(
            decode_rewrite_certs(&bytes),
            Err(DecodeError::at(0, DecodeErrorKind::BadMagic))
        );
        // A chase stream is not a rewrite stream and vice versa.
        let chase_bytes = encode_chase_certs(&chase_bundle());
        assert_eq!(
            decode_rewrite_certs(&chase_bytes),
            Err(DecodeError::at(0, DecodeErrorKind::BadMagic))
        );
    }

    #[test]
    fn future_versions_are_rejected_at_the_version_byte() {
        let mut bytes = encode_chase_certs(&chase_bundle());
        bytes[4] = 9;
        assert_eq!(
            decode_chase_certs(&bytes),
            Err(DecodeError::at(4, DecodeErrorKind::UnsupportedVersion(9)))
        );
    }

    #[test]
    fn truncation_is_located_not_panicked() {
        let bytes = encode_rewrite_certs(&rewrite_bundle());
        for cut in [0, 3, 5, bytes.len() / 2, bytes.len() - 1] {
            let e = decode_rewrite_certs(&bytes[..cut]).unwrap_err();
            assert!(e.offset <= cut, "offset {} past cut {cut}", e.offset);
        }
        let bytes = encode_chase_certs(&chase_bundle());
        for cut in [0, 3, 5, bytes.len() / 2, bytes.len() - 1] {
            let e = decode_chase_certs(&bytes[..cut]).unwrap_err();
            assert!(e.offset <= cut);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_chase_certs(&chase_bundle());
        let end = bytes.len();
        bytes.push(0);
        assert_eq!(
            decode_chase_certs(&bytes),
            Err(DecodeError::at(
                end,
                DecodeErrorKind::Malformed("trailing bytes")
            ))
        );
    }
}
