//! Empirical probes for the paper's semantic notions.
//!
//! *Locality* (Definition 30), *bd-locality* (Definition 40) and
//! *distancing* (Definition 43) quantify over all instances, so they cannot
//! be decided; what the paper's examples actually exhibit are concrete
//! instance families on which the relevant quantity (minimal support size,
//! chase-vs-instance distance) grows without bound. These probes measure
//! exactly those quantities on given instances.

use std::collections::HashMap;

use qr_chase::engine::{chase, ChaseBudget};
use qr_chase::provenance::{minimal_subset, Provenance};
use qr_syntax::gaifman;
use qr_syntax::{Fact, Instance, TermId, Theory};

/// Maximum degree of the instance's Gaifman graph (Definition 40 restricts
/// attention to instances of bounded degree).
pub fn degree(db: &Instance) -> usize {
    gaifman::of_instance(db).max_degree()
}

/// Result of a locality probe on one instance.
#[derive(Clone, Debug)]
pub struct LocalityProfile {
    /// Chase depth used.
    pub depth: usize,
    /// The largest (inclusion-)minimal support over all derived facts — an
    /// empirical lower bound for the locality constant `l_T` on this
    /// instance.
    pub max_support: usize,
    /// A fact attaining `max_support`, with its support.
    pub witness: Option<(Fact, Instance)>,
    /// Gaifman degree of the instance (for bd-locality analyses).
    pub degree: usize,
}

/// Measures, for every fact of `Ch_depth(T,D)`, an inclusion-minimal subset
/// `F ⊆ D` with the fact still derivable from `F` at the same depth, and
/// returns the maximum. A local theory keeps this bounded by `l_T`
/// (Definition 30); the theories of Examples 39/42 and `T_d` do not.
pub fn empirical_locality(theory: &Theory, db: &Instance, depth: usize) -> LocalityProfile {
    let budget = ChaseBudget::rounds(depth);
    let ch = chase(theory, db, budget);
    let prov = Provenance::new(&ch);
    // The recorded ancestor set is *a* support, so its size bounds the
    // greedy minimal support from above. Process facts in descending
    // ancestor-size order and stop once no remaining fact can beat the
    // maximum found — this avoids re-chasing for the (typically many)
    // shallow facts.
    let mut candidates: Vec<(usize, Instance)> = ch
        .instance
        .iter()
        .enumerate()
        .filter(|(idx, _)| ch.round_of[*idx] != 0)
        .map(|(idx, _)| (idx, prov.ancestor_instance(idx)))
        .collect();
    candidates.sort_by_key(|(_, anc)| std::cmp::Reverse(anc.len()));
    let mut max_support = 0usize;
    let mut witness: Option<(Fact, Instance)> = None;
    for (idx, candidate) in candidates {
        if candidate.len() <= max_support {
            break;
        }
        let fact = ch.instance.fact(idx).to_fact();
        let derives = |f: &Instance| chase(theory, f, budget).instance.contains(&fact);
        let support = minimal_subset(&candidate, derives);
        if support.len() > max_support {
            max_support = support.len();
            witness = Some((fact, support));
        }
    }
    LocalityProfile {
        depth,
        max_support,
        witness,
        degree: degree(db),
    }
}

/// Runs [`empirical_locality`] over an instance family and reports the
/// per-instance support bounds; a theory is (empirically) non-local when
/// the sequence grows with the family parameter.
pub fn locality_profile(
    theory: &Theory,
    family: &[Instance],
    depth: usize,
) -> Vec<LocalityProfile> {
    family
        .iter()
        .map(|db| empirical_locality(theory, db, depth))
        .collect()
}

/// Result of a distancing probe (Definition 43).
#[derive(Clone, Debug)]
pub struct DistancingProfile {
    /// Chase depth used.
    pub depth: usize,
    /// The largest `dist_D(c,c') / dist_Ch(c,c')` over pairs of input
    /// constants that the chase brings closer together; `None` when no pair
    /// of input constants is connected in the chase.
    pub max_ratio: Option<f64>,
    /// The witnessing pair: `(c, c', dist_Ch, dist_D)`, with `dist_D = None`
    /// when `c` and `c'` are disconnected in `D` itself.
    pub worst: Option<(TermId, TermId, usize, Option<usize>)>,
}

/// Measures how much the chase contracts distances between input constants:
/// a distancing theory keeps `dist_D ≤ d_T · dist_Ch` (Definition 43), so a
/// growing `max_ratio` over an instance family refutes distancing — this is
/// the quantity behind the paper's Theorem 5(B).
pub fn distancing_profile(theory: &Theory, db: &Instance, depth: usize) -> DistancingProfile {
    let ch = chase(theory, db, ChaseBudget::rounds(depth));
    let g_ch = gaifman::of_instance(&ch.instance);
    let g_db = gaifman::of_instance(db);
    let mut max_ratio: Option<f64> = None;
    let mut worst = None;
    let dom = db.domain();
    for (i, &c) in dom.iter().enumerate() {
        let from_c_ch: HashMap<TermId, usize> = g_ch.distances_from(c);
        let from_c_db: HashMap<TermId, usize> = g_db.distances_from(c);
        for &c2 in dom.iter().skip(i + 1) {
            let Some(&d_ch) = from_c_ch.get(&c2) else {
                continue;
            };
            if d_ch == 0 {
                continue;
            }
            let d_db = from_c_db.get(&c2).copied();
            let ratio = match d_db {
                Some(d) => d as f64 / d_ch as f64,
                None => f64::INFINITY,
            };
            if max_ratio.is_none_or(|m| ratio > m) {
                max_ratio = Some(ratio);
                worst = Some((c, c2, d_ch, d_db));
            }
        }
    }
    DistancingProfile {
        depth,
        max_ratio,
        worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::parse_theory;

    /// Star instance of Example 39: one E-atom and `k` color atoms R(a,cᵢ).
    fn example_39_star(k: usize) -> Instance {
        let mut src = String::from("e(a, b1, b2, c1).\n");
        for i in 1..=k {
            src.push_str(&format!("r(a, c{i}).\n"));
        }
        qr_syntax::parse_instance(&src).unwrap()
    }

    /// Cycle instance of Example 42: E(a₁,a₂), …, E(aₙ,a₁).
    fn cycle(n: usize) -> Instance {
        let mut src = String::new();
        for i in 1..=n {
            let j = if i == n { 1 } else { i + 1 };
            src.push_str(&format!("e(a{i}, a{j}).\n"));
        }
        qr_syntax::parse_instance(&src).unwrap()
    }

    #[test]
    fn linear_theory_has_unit_supports() {
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let db = qr_syntax::parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let p = empirical_locality(&t, &db, 4);
        assert_eq!(p.max_support, 1);
    }

    #[test]
    fn example_39_supports_grow_with_colors() {
        // The sticky theory of Example 39 is BDD but not local: with k
        // colors, facts of depth k need k+1 input atoms.
        let t = parse_theory("e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).").unwrap();
        let p2 = empirical_locality(&t, &example_39_star(2), 2);
        let p3 = empirical_locality(&t, &example_39_star(3), 3);
        assert!(p3.max_support > p2.max_support);
        assert_eq!(p3.max_support, 4);
        // High degree is the culprit (vertex a sees all colors).
        assert!(p3.degree >= 3);
    }

    #[test]
    fn example_42_cycles_need_all_edges() {
        // T_c of Example 42 is BDD but not bd-local: degree-2 cycles D_n
        // contain atoms requiring all n input edges.
        let t = parse_theory(
            "e(X,Y) -> r(X,Y,X1,Y1).\n\
             r(X,Y,X1,Y1), e(Y,Z) -> r(Y,Z,Y1,Z1).",
        )
        .unwrap();
        let p3 = empirical_locality(&t, &cycle(3), 4);
        let p5 = empirical_locality(&t, &cycle(5), 6);
        assert_eq!(p3.degree, 2);
        assert_eq!(p5.degree, 2);
        assert_eq!(p3.max_support, 3);
        assert_eq!(p5.max_support, 5);
    }

    #[test]
    fn distancing_of_linear_theory_is_flat() {
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let db = qr_syntax::parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let p = distancing_profile(&t, &db, 4);
        // The chase only extends paths outwards; it cannot bring the input
        // constants closer, so the ratio stays 1.
        assert_eq!(p.max_ratio, Some(1.0));
    }

    #[test]
    fn degree_measure() {
        assert_eq!(degree(&cycle(5)), 2);
        assert_eq!(degree(&example_39_star(4)), 6); // a sees b1,b2,c1..c4
    }
}
