//! Observability for chase runs.
//!
//! Every [`run`](crate::engine::chase) fills a [`ChaseStats`] with one
//! [`RoundStats`] per completed (or attempted) round: how many triggers
//! were enumerated, how much raw matcher work was done, what the round
//! produced, and how long it took. The bench harness serializes these
//! counters to `BENCH_chase.json` so the repo's perf trajectory is
//! recorded as data, not anecdotes.

use std::time::Duration;

/// Counters for a single chase round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// The round number (1-based; round 0 is the input instance).
    pub round: usize,
    /// Complete body matches enumerated (trigger candidates passed to the
    /// head-application stage, before fact dedup).
    pub triggers: u64,
    /// Candidate facts / domain terms scanned by the matcher while
    /// extending partial assignments — the engine's raw work measure.
    pub candidates: u64,
    /// Facts newly added by this round.
    pub facts_added: usize,
    /// Distinct terms that first entered the active domain this round.
    pub terms_added: usize,
    /// Wall time spent enumerating and applying this round.
    pub wall: Duration,
}

/// Per-run chase statistics: one entry per round, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Per-round counters. The final entry may describe a round that added
    /// nothing (the fixpoint probe).
    pub rounds: Vec<RoundStats>,
}

impl ChaseStats {
    /// Total triggers enumerated across all rounds.
    pub fn triggers(&self) -> u64 {
        self.rounds.iter().map(|r| r.triggers).sum()
    }

    /// Total matcher candidates scanned across all rounds.
    pub fn candidates(&self) -> u64 {
        self.rounds.iter().map(|r| r.candidates).sum()
    }

    /// Total facts added by rule applications (excludes the input).
    pub fn facts_added(&self) -> usize {
        self.rounds.iter().map(|r| r.facts_added).sum()
    }

    /// Total fresh terms introduced by rule applications.
    pub fn terms_added(&self) -> usize {
        self.rounds.iter().map(|r| r.terms_added).sum()
    }

    /// Total wall time across all rounds.
    pub fn wall(&self) -> Duration {
        self.rounds.iter().map(|r| r.wall).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_rounds() {
        let stats = ChaseStats {
            rounds: vec![
                RoundStats {
                    round: 1,
                    triggers: 3,
                    candidates: 10,
                    facts_added: 2,
                    terms_added: 1,
                    wall: Duration::from_micros(5),
                },
                RoundStats {
                    round: 2,
                    triggers: 4,
                    candidates: 20,
                    facts_added: 0,
                    terms_added: 0,
                    wall: Duration::from_micros(7),
                },
            ],
        };
        assert_eq!(stats.triggers(), 7);
        assert_eq!(stats.candidates(), 30);
        assert_eq!(stats.facts_added(), 2);
        assert_eq!(stats.terms_added(), 1);
        assert_eq!(stats.wall(), Duration::from_micros(12));
    }
}
