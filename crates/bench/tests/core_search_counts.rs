//! Acceptance gate for the fold-based `query_core`: on the E12 fixture
//! queries and E6 (Example 41) rewriting disjuncts, the kernel performs
//! strictly fewer containment searches than the quadratic greedy
//! baseline, while producing the identical core.
//!
//! The greedy baseline is the pre-kernel loop: every drop attempt costs a
//! full `equivalent` round-trip (two one-shot freeze-and-search calls,
//! the first of which always succeeds via the identity embedding). The
//! fold replaces the round-trip with a single banned-fact retraction
//! search per attempt and carries undroppable marks across rounds, so it
//! can only ever search less.

use std::collections::HashMap;

use qr_core::theories::ex41;
use qr_hom::kernel::HomKernel;
use qr_hom::matcher::exists_match;
use qr_rewrite::{rewrite, RewriteBudget};
use qr_syntax::parse_query;
use qr_syntax::query::{ConjunctiveQuery, QAtom, Var};
use qr_syntax::{Instance, TermId};

/// One-shot containment check, counting each freeze-and-search call.
fn contains_counted(phi: &ConjunctiveQuery, psi: &ConjunctiveQuery, searches: &mut u64) -> bool {
    *searches += 1;
    let (frozen, var_map): (Instance, HashMap<Var, TermId>) = phi.freeze();
    let fixed: Vec<(Var, TermId)> = psi
        .answer_vars()
        .iter()
        .zip(phi.answer_vars())
        .map(|(sv, gv)| (*sv, var_map[gv]))
        .collect();
    exists_match(psi.atoms(), psi.var_names().len(), &frozen, &fixed)
}

/// The pre-kernel greedy core loop; returns the core and the number of
/// containment searches it spent.
fn greedy_core(q: &ConjunctiveQuery) -> (ConjunctiveQuery, u64) {
    let mut searches = 0u64;
    let mut current = q.canonical();
    'outer: loop {
        if current.size() <= 1 {
            return (current, searches);
        }
        for skip in 0..current.size() {
            let atoms: Vec<QAtom> = current
                .atoms()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, a)| a.clone())
                .collect();
            if !current
                .answer_vars()
                .iter()
                .all(|v| atoms.iter().any(|a| a.mentions(*v)))
            {
                continue;
            }
            let candidate = ConjunctiveQuery::new(
                current.answer_vars().to_vec(),
                atoms,
                current.var_names().to_vec(),
            );
            if contains_counted(&current, &candidate, &mut searches)
                && contains_counted(&candidate, &current, &mut searches)
            {
                current = candidate.canonical();
                continue 'outer;
            }
        }
        return (current, searches);
    }
}

#[test]
fn fold_core_searches_strictly_less_than_greedy_on_fixtures() {
    // The three E12 generic-engine fixture queries, plus an Example 41
    // one-step rewriting padded with a redundant second chain copy — that
    // one the core must actually shrink.
    let mut fixtures: Vec<ConjunctiveQuery> = vec![
        parse_query("?(A) :- e(A,B), e(B,C).").unwrap(), // T_p
        parse_query("?(X) :- mother(X, M).").unwrap(),   // T_a
        parse_query("?(A,D) :- e(A,B,C,D).").unwrap(),   // Ex.39
        parse_query("?(Y,Z) :- e(X,Y,Z), r(X,Z), e(W,Y,Z), r(W,Z).").unwrap(),
    ];
    // Real E6 rewriting output: chains of e-atoms in front of the r-atom.
    let r = rewrite(
        &ex41(),
        &parse_query("?(Y,Z) :- r(Y,Z).").unwrap(),
        RewriteBudget {
            max_queries: 64,
            max_generated: 10_000,
            max_atoms: 8,
        },
    )
    .expect("no builtin bodies");
    fixtures.extend(
        r.ucq
            .disjuncts()
            .iter()
            .filter(|d| d.size() >= 2)
            .take(4)
            .cloned(),
    );

    let (mut total_greedy, mut total_kernel) = (0u64, 0u64);
    let mut shrunk = false;
    for q in &fixtures {
        let (expect, greedy_searches) = greedy_core(q);
        let kernel = HomKernel::new();
        let got = kernel.query_core(q);
        let kernel_searches = kernel.stats().core_searches;
        assert_eq!(got, expect, "fold and greedy agree on {}", q.render());
        assert!(
            kernel_searches <= greedy_searches,
            "{}: kernel spent {kernel_searches}, greedy {greedy_searches}",
            q.render()
        );
        if got.size() < q.canonical().size() {
            shrunk = true;
        }
        total_greedy += greedy_searches;
        total_kernel += kernel_searches;
    }
    assert!(shrunk, "at least one fixture must have a non-trivial core");
    assert!(
        total_kernel < total_greedy,
        "fold must search strictly less: kernel {total_kernel}, greedy {total_greedy}"
    );
}
