//! Per-window saturation observability, mirroring `qr-chase`'s
//! `ChaseStats`.
//!
//! A *window* is one BFS generation of the saturation loop: the set of
//! queries that were queued together before any of their descendants (the
//! batch the barrier engine drains in one `queue.drain(..)`). The
//! pipelined engine reproduces the same boundaries from submission
//! sequence numbers, so window counters are identical across engines and
//! thread counts; only the wall splits vary with the schedule.
//!
//! Wall-split semantics:
//! * `gen_wall` — worker-side time generating piece rewritings + cores
//!   for the window's items (summed per item, so it can exceed the
//!   window's elapsed time when several workers overlap);
//! * `merge_wall` — caller-thread time spent on merge decisions
//!   (subsumption, eviction, budget accounting, tracing);
//! * `wait_wall` — caller-thread time stalled waiting for an item's
//!   speculative generation to arrive. Sequentially this equals
//!   `gen_wall`; under pipelining, `gen_wall - wait_wall` is the
//!   generation work hidden behind the merge ([`WindowStats::overlap_wall`]).

use std::time::Duration;

/// Counters and wall splits for one BFS window of the saturation loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Window index (0 = the seed query alone).
    pub window: usize,
    /// Queue depth at the window boundary: items submitted to this window.
    pub items: usize,
    /// Items of this window still alive when their merge turn came.
    pub merged: usize,
    /// Items skipped because an earlier arrival evicted them (their
    /// speculative candidates are discarded uncounted).
    pub dead_skipped: usize,
    /// Candidates counted against `max_generated` during this window.
    pub generated: usize,
    /// Candidates dropped because a kept query already subsumed them.
    pub subsumption_hits: usize,
    /// Kept queries evicted by more general candidates of this window.
    pub evictions: usize,
    /// Candidates discarded for exceeding `max_atoms`.
    pub oversized: usize,
    /// Candidates accepted into the kept set.
    pub accepted: usize,
    /// Alive kept-set size when the window closed.
    pub kept: usize,
    /// Worker-side generation time for this window's items (summed).
    pub gen_wall: Duration,
    /// Caller-thread merge-decision time.
    pub merge_wall: Duration,
    /// Caller-thread stall waiting for speculative generation results.
    pub wait_wall: Duration,
}

impl WindowStats {
    /// Generation work hidden behind the merge: `gen_wall - wait_wall`
    /// (saturating). Zero for a sequential run, where the caller waits out
    /// every generation in full.
    pub fn overlap_wall(&self) -> Duration {
        self.gen_wall.saturating_sub(self.wait_wall)
    }
}

/// Saturation-run statistics: the worker-pool width and one
/// [`WindowStats`] per BFS window, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Worker-pool width the run was configured with (wall times depend on
    /// it; every counter is identical across thread counts).
    pub threads: usize,
    /// Per-window counters, in window order.
    pub windows: Vec<WindowStats>,
}

impl RewriteStats {
    /// Total candidates counted against `max_generated`.
    pub fn generated(&self) -> usize {
        self.windows.iter().map(|w| w.generated).sum()
    }

    /// Total items merged while alive.
    pub fn merged(&self) -> usize {
        self.windows.iter().map(|w| w.merged).sum()
    }

    /// Total items skipped as evicted before their merge turn.
    pub fn dead_skipped(&self) -> usize {
        self.windows.iter().map(|w| w.dead_skipped).sum()
    }

    /// Total candidates dropped by subsumption.
    pub fn subsumption_hits(&self) -> usize {
        self.windows.iter().map(|w| w.subsumption_hits).sum()
    }

    /// Total kept queries evicted.
    pub fn evictions(&self) -> usize {
        self.windows.iter().map(|w| w.evictions).sum()
    }

    /// Total candidates discarded for exceeding `max_atoms`.
    pub fn oversized(&self) -> usize {
        self.windows.iter().map(|w| w.oversized).sum()
    }

    /// Total candidates accepted into the kept set.
    pub fn accepted(&self) -> usize {
        self.windows.iter().map(|w| w.accepted).sum()
    }

    /// Total worker-side generation time.
    pub fn gen_wall(&self) -> Duration {
        self.windows.iter().map(|w| w.gen_wall).sum()
    }

    /// Total caller-thread merge-decision time.
    pub fn merge_wall(&self) -> Duration {
        self.windows.iter().map(|w| w.merge_wall).sum()
    }

    /// Total caller-thread stall waiting for generation results.
    pub fn wait_wall(&self) -> Duration {
        self.windows.iter().map(|w| w.wait_wall).sum()
    }

    /// Total generation work hidden behind merges (see
    /// [`WindowStats::overlap_wall`]).
    pub fn overlap_wall(&self) -> Duration {
        self.windows.iter().map(|w| w.overlap_wall()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_windows() {
        let stats = RewriteStats {
            threads: 4,
            windows: vec![
                WindowStats {
                    window: 0,
                    items: 1,
                    merged: 1,
                    generated: 3,
                    subsumption_hits: 1,
                    accepted: 2,
                    kept: 3,
                    gen_wall: Duration::from_millis(10),
                    merge_wall: Duration::from_millis(2),
                    wait_wall: Duration::from_millis(4),
                    ..WindowStats::default()
                },
                WindowStats {
                    window: 1,
                    items: 2,
                    merged: 1,
                    dead_skipped: 1,
                    generated: 5,
                    evictions: 1,
                    oversized: 2,
                    accepted: 1,
                    kept: 3,
                    gen_wall: Duration::from_millis(6),
                    merge_wall: Duration::from_millis(1),
                    wait_wall: Duration::from_millis(6),
                    ..WindowStats::default()
                },
            ],
        };
        assert_eq!(stats.generated(), 8);
        assert_eq!(stats.merged(), 2);
        assert_eq!(stats.dead_skipped(), 1);
        assert_eq!(stats.subsumption_hits(), 1);
        assert_eq!(stats.evictions(), 1);
        assert_eq!(stats.oversized(), 2);
        assert_eq!(stats.accepted(), 3);
        assert_eq!(stats.gen_wall(), Duration::from_millis(16));
        assert_eq!(stats.merge_wall(), Duration::from_millis(3));
        assert_eq!(stats.wait_wall(), Duration::from_millis(10));
        // Window 0 hid 6ms of generation; window 1 hid none.
        assert_eq!(stats.overlap_wall(), Duration::from_millis(6));
    }
}
