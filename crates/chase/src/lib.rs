//! The semi-oblivious Skolem chase (Section 3 of the paper) and the
//! machinery built on top of it: provenance (birth atoms, ancestors,
//! minimal supports), model checking, `Core(T,D)` and the termination
//! taxonomy of Section 5 (core termination / FES, all-instances
//! termination).
//!
//! The chase is a semi-decision procedure: `Ch(T,D)` is infinite for most
//! theories studied in the paper, so every entry point takes an explicit
//! [`ChaseBudget`] and reports whether a fixpoint was reached or the budget
//! was exhausted.

pub mod cert;
pub mod core_term;
pub mod engine;
pub mod incremental;
pub mod model;
pub mod provenance;
pub mod sharded;
pub mod skolem;
pub mod stats;

pub use cert::{emit_chase_certs, ChaseCert, ChaseCertBundle};
pub use core_term::{
    all_instances_termination, core_of, core_termination, CoreTermBudget, CoreTermination,
};
pub use engine::{
    chase, chase_all, chase_all_with, chase_naive, chase_naive_with, chase_with, Chase,
    ChaseBudget, ChaseOutcome, Derivation,
};
pub use incremental::{
    chase_incremental, BatchMode, BatchStats, IncrementalChase, IncrementalStats, WriteBatch,
};
pub use model::is_model;
pub use provenance::{minimal_subset, minimal_support, Provenance};
pub use sharded::{
    chase_sharded, chase_sharded_opts, CrossShardPolicy, FrontierRejection, FrontierVerify,
    ShardMode, ShardOpts, ShardStats,
};
pub use skolem::SkolemizedRule;
pub use stats::{ChaseStats, RoundStats};

use qr_syntax::{ConjunctiveQuery, Instance, TermId, Theory};

/// `true` iff `Ch_budget(T,D) ⊨ φ(ā)` — i.e. the bounded chase entails the
/// query. Sound for entailment; complete up to the budget.
pub fn entails(
    theory: &Theory,
    db: &Instance,
    query: &ConjunctiveQuery,
    answer: &[TermId],
    budget: ChaseBudget,
) -> bool {
    let result = chase(theory, db, budget);
    qr_hom::holds(query, &result.instance, answer)
}

/// The smallest `n` such that `Ch_n(T,D) ⊨ φ(ā)`, if one exists within the
/// budget (the quantity the paper's `Enough(n, φ, D, T)` is about).
pub fn first_entailment_depth(
    theory: &Theory,
    db: &Instance,
    query: &ConjunctiveQuery,
    answer: &[TermId],
    budget: ChaseBudget,
) -> Option<usize> {
    let result = chase(theory, db, budget);
    (0..=result.rounds).find(|&n| qr_hom::holds(query, &result.prefix(n), answer))
}
