//! The termination taxonomy of Section 5: core termination (FES),
//! all-instances termination, and `Core(T,D)` (Definitions 18–24).
//!
//! Core termination of `T` on `D` asks for an `n` and a model `M` of `T`
//! with `D ⊆ M ⊆ Ch_n(T,D)` (Definition 20). This is undecidable in
//! general, so [`core_termination`] is a *probe*: it chases to depth
//! `max_depth + lookahead`, and for each candidate `n` searches for a
//! homomorphism `Ch_{max_depth+lookahead}(T,D) → Ch_n(T,D)` fixing
//! `dom(D)`; if the image is verified to be a model, the probe reports
//! success with a **verified** certificate. A negative answer only means
//! "not found within budget".

use std::collections::{HashMap, HashSet};

use qr_hom::structure::{apply_term_map, instance_hom, structure_core};
use qr_syntax::{Instance, TermId, Theory};

use crate::engine::{chase, ChaseBudget};
use crate::model::is_model;

/// Budget for the core-termination probe.
#[derive(Clone, Copy, Debug)]
pub struct CoreTermBudget {
    /// Largest chase depth `n` considered for `Core(T,D) ⊆ Ch_n(T,D)`.
    pub max_depth: usize,
    /// Extra rounds chased beyond `max_depth`; the fold source is the
    /// deepest prefix, so larger lookahead makes the probe stronger.
    pub lookahead: usize,
    /// Fact cap passed to the chase.
    pub max_facts: usize,
}

impl Default for CoreTermBudget {
    fn default() -> Self {
        CoreTermBudget {
            max_depth: 6,
            lookahead: 3,
            max_facts: 200_000,
        }
    }
}

/// Outcome of the core-termination probe.
///
/// The `CoreTerminates` variant carries the certificate instance and is
/// much larger than `Unknown`; values of this type are created a handful
/// of times per probe, so the size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum CoreTermination {
    /// A verified model `M` of `T` with `D ⊆ M ⊆ Ch_depth(T,D)` was found.
    /// `core` is `M` folded to a (relative) core — the paper's
    /// `Core(T,D)` up to the minimal-cardinality tie-break of Definition 24.
    CoreTerminates {
        /// The smallest probe depth at which a certificate was found (an
        /// upper bound for the paper's `c_{T,D}`).
        depth: usize,
        /// The certificate model.
        core: Instance,
    },
    /// No certificate found within budget (the theory may still core
    /// terminate on this instance).
    Unknown {
        /// The deepest `n` examined.
        checked_depth: usize,
    },
}

impl CoreTermination {
    /// `true` if a certificate was found.
    pub fn terminates(&self) -> bool {
        matches!(self, CoreTermination::CoreTerminates { .. })
    }

    /// The certificate depth, if any.
    pub fn depth(&self) -> Option<usize> {
        match self {
            CoreTermination::CoreTerminates { depth, .. } => Some(*depth),
            CoreTermination::Unknown { .. } => None,
        }
    }
}

/// Probes core termination of `theory` on `db` (see module docs).
pub fn core_termination(theory: &Theory, db: &Instance, budget: CoreTermBudget) -> CoreTermination {
    let total_rounds = budget.max_depth + budget.lookahead;
    let ch = chase(
        theory,
        db,
        ChaseBudget {
            max_rounds: total_rounds,
            max_facts: budget.max_facts,
        },
    );
    let full = &ch.instance;
    let fixed: HashMap<TermId, TermId> = db.domain().iter().map(|t| (*t, *t)).collect();
    let frozen: HashSet<TermId> = db.domain().iter().copied().collect();
    let deepest = ch.rounds.min(budget.max_depth);
    for n in 0..=deepest {
        let prefix = ch.prefix(n);
        if let Some(h) = instance_hom(full, &prefix, &fixed) {
            let image = apply_term_map(full, &h);
            // The matcher may return a hom whose image dangles (satisfies
            // the fact-preservation condition but is not a model). Folding
            // the image to its core relative to dom(D) repairs this in the
            // common case: the fold is a homomorphism into an induced
            // substructure of the image, so the folded facts stay inside
            // Ch_n(T,D) and dom(D) stays pointwise fixed.
            let (folded, _) = structure_core(&image, &frozen);
            for candidate in [folded, image] {
                if is_model(&candidate, theory) {
                    debug_assert!(db.subset_of(&candidate));
                    return CoreTermination::CoreTerminates {
                        depth: n,
                        core: candidate,
                    };
                }
            }
        }
    }
    CoreTermination::Unknown {
        checked_depth: deepest,
    }
}

/// `Core(T,D)` per Definition 24 (up to the size tie-break): the certificate
/// of the smallest depth found by the probe, or `None`.
pub fn core_of(
    theory: &Theory,
    db: &Instance,
    budget: CoreTermBudget,
) -> Option<(usize, Instance)> {
    match core_termination(theory, db, budget) {
        CoreTermination::CoreTerminates { depth, core } => Some((depth, core)),
        CoreTermination::Unknown { .. } => None,
    }
}

/// Detects all-instances termination on one instance: `Some(n)` iff the
/// chase reaches a fixpoint after `n` rounds within the budget
/// (Definition 21 quantifies over all instances; this is the per-instance
/// witness used by the experiments).
pub fn all_instances_termination(
    theory: &Theory,
    db: &Instance,
    max_rounds: usize,
) -> Option<usize> {
    let ch = chase(theory, db, ChaseBudget::rounds(max_rounds));
    ch.terminated().then_some(ch.rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_instance, parse_theory};

    #[test]
    fn exercise_22_t_p_is_not_fes() {
        // E(x,y) -> ∃z E(y,z): BDD but not core terminating.
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let r = core_termination(&t, &d, CoreTermBudget::default());
        assert!(!r.terminates());
    }

    #[test]
    fn exercise_23_fes_but_not_all_instances_terminating() {
        let t = parse_theory(
            "e(X,Y) -> e(Y,Z).\n\
             e(X,X1), e(X1,X2) -> e(X1,X1).",
        )
        .unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let r = core_termination(&t, &d, CoreTermBudget::default());
        match r {
            CoreTermination::CoreTerminates { depth, core } => {
                assert_eq!(depth, 2);
                assert!(is_model(&core, &t));
                assert!(d.subset_of(&core));
                // The core should fold down to {e(a,b), e(b,b)}.
                assert_eq!(core.len(), 2);
            }
            CoreTermination::Unknown { .. } => panic!("expected core termination"),
        }
        // ... but the chase itself never stops.
        assert_eq!(all_instances_termination(&t, &d, 12), None);
    }

    #[test]
    fn terminating_datalog_all_instances_terminates() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let n = all_instances_termination(&t, &d, 10).expect("datalog terminates");
        assert!(n <= 3);
        // All-instances termination implies core termination at depth ≤ n.
        let r = core_termination(&t, &d, CoreTermBudget::default());
        assert!(r.terminates());
    }

    #[test]
    fn model_input_is_its_own_core() {
        // Exercise 25: if D ⊨ T then Core(D) = D (at depth 0).
        let t = parse_theory("human(X) -> mother(X,Y).\nmother(X,Y) -> human(Y).").unwrap();
        let d = parse_instance("human(abel). mother(abel, eve). human(eve). mother(eve, eve).")
            .unwrap();
        let (depth, core) = core_of(&t, &d, CoreTermBudget::default()).unwrap();
        assert_eq!(depth, 0);
        assert_eq!(core, d);
    }

    #[test]
    fn core_of_core_is_core() {
        // Exercise 25, second part.
        let t = parse_theory(
            "e(X,Y) -> e(Y,Z).\n\
             e(X,X1), e(X1,X2) -> e(X1,X1).",
        )
        .unwrap();
        let d = parse_instance("e(a,b).").unwrap();
        let (_, core) = core_of(&t, &d, CoreTermBudget::default()).unwrap();
        let (depth2, core2) = core_of(&t, &core, CoreTermBudget::default()).unwrap();
        assert_eq!(depth2, 0);
        assert_eq!(core2, core);
    }
}
