//! A set-trie over sorted predicate sets, organizing the kept rewriting
//! set for the subsumption and eviction sweeps.
//!
//! The kernel's pred-set prefilter is a *necessary* condition for a
//! homomorphism `ψ → freeze(φ)`: `preds(ψ) ⊆ preds(φ)` (as sets — a
//! homomorphism may collapse atoms but never invents a predicate). The
//! sweeps therefore only need kept entries whose predicate set is a
//! subset (subsumption: some kept `r` with `preds(r) ⊆ preds(cand)` may
//! subsume `cand`) or a superset (eviction: only `r` with
//! `preds(r) ⊇ preds(cand)` can be covered by `cand`) of the candidate's.
//! Instead of issuing a per-pair kernel prefilter call for every alive
//! entry, the kept set files each entry under its sorted predicate set in
//! this trie and answers both probes by lattice descent: a candidate
//! touches only compatible entries.
//!
//! Nodes hold the slots of entries whose predicate set equals the path
//! from the root; children are kept sorted by predicate so subset probes
//! advance a two-pointer over the (sorted) query set and superset probes
//! can stop at the first child beyond the query's next element.

use qr_syntax::Pred;

/// The trie. Slots are caller-defined indices (the kept set's entry
/// slots); removal is by exact (path, slot) pair, so tombstoned entries
/// simply leave the trie and never surface in a probe again.
#[derive(Default)]
pub(crate) struct PredSetTrie {
    root: Node,
}

#[derive(Default)]
struct Node {
    /// Slots filed exactly at this path.
    slots: Vec<usize>,
    /// Children sorted by predicate.
    children: Vec<(Pred, Node)>,
}

impl PredSetTrie {
    /// Files `slot` under the sorted, deduplicated predicate set `preds`.
    pub(crate) fn insert(&mut self, preds: &[Pred], slot: usize) {
        debug_assert!(preds.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        let mut node = &mut self.root;
        for p in preds {
            let i = match node.children.binary_search_by(|(q, _)| q.cmp(p)) {
                Ok(i) => i,
                Err(i) => {
                    node.children.insert(i, (*p, Node::default()));
                    i
                }
            };
            node = &mut node.children[i].1;
        }
        node.slots.push(slot);
    }

    /// Removes `slot` from under `preds`. Empty nodes are left in place
    /// (predicate alphabets are small; probes skip them for free).
    pub(crate) fn remove(&mut self, preds: &[Pred], slot: usize) {
        let mut node = &mut self.root;
        for p in preds {
            let Ok(i) = node.children.binary_search_by(|(q, _)| q.cmp(p)) else {
                return;
            };
            node = &mut node.children[i].1;
        }
        node.slots.retain(|&s| s != slot);
    }

    /// Appends the slots of every entry whose predicate set is a *subset*
    /// of the sorted `query` set.
    pub(crate) fn subsets_into(&self, query: &[Pred], out: &mut Vec<usize>) {
        subsets(&self.root, query, out);
    }

    /// Appends the slots of every entry whose predicate set is a
    /// *superset* of the sorted `query` set.
    pub(crate) fn supersets_into(&self, query: &[Pred], out: &mut Vec<usize>) {
        supersets(&self.root, query, out);
    }
}

fn subsets(node: &Node, query: &[Pred], out: &mut Vec<usize>) {
    out.extend_from_slice(&node.slots);
    let mut qi = 0;
    for (p, child) in &node.children {
        while qi < query.len() && query[qi] < *p {
            qi += 1;
        }
        if qi == query.len() {
            break;
        }
        if query[qi] == *p {
            subsets(child, &query[qi + 1..], out);
        }
    }
}

fn supersets(node: &Node, query: &[Pred], out: &mut Vec<usize>) {
    let Some(q0) = query.first() else {
        // Everything below extends a superset of the (exhausted) query.
        collect(node, out);
        return;
    };
    for (p, child) in &node.children {
        if p < q0 {
            supersets(child, query, out);
        } else if p == q0 {
            supersets(child, &query[1..], out);
        } else {
            break;
        }
    }
}

fn collect(node: &Node, out: &mut Vec<usize>) {
    out.extend_from_slice(&node.slots);
    for (_, child) in &node.children {
        collect(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::Symbol;

    fn p(name: &str) -> Pred {
        Pred::new(Symbol::intern(name), 1)
    }

    fn sorted(mut preds: Vec<Pred>) -> Vec<Pred> {
        preds.sort();
        preds.dedup();
        preds
    }

    /// Slot sets as a reference model would compute them.
    fn probe(trie: &PredSetTrie, query: &[Pred], subset: bool) -> Vec<usize> {
        let mut out = Vec::new();
        if subset {
            trie.subsets_into(query, &mut out);
        } else {
            trie.supersets_into(query, &mut out);
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn subset_and_superset_probes() {
        let sets: Vec<Vec<Pred>> = vec![
            sorted(vec![p("e")]),
            sorted(vec![p("e"), p("f")]),
            sorted(vec![p("f")]),
            sorted(vec![p("e"), p("f"), p("g")]),
            vec![],
        ];
        let mut trie = PredSetTrie::default();
        for (i, s) in sets.iter().enumerate() {
            trie.insert(s, i);
        }
        let is_subset = |a: &[Pred], b: &[Pred]| a.iter().all(|x| b.contains(x));
        for query in [
            vec![],
            sorted(vec![p("e")]),
            sorted(vec![p("e"), p("f")]),
            sorted(vec![p("e"), p("g")]),
            sorted(vec![p("e"), p("f"), p("g")]),
            sorted(vec![p("h")]),
        ] {
            let want_sub: Vec<usize> = (0..sets.len())
                .filter(|&i| is_subset(&sets[i], &query))
                .collect();
            let want_sup: Vec<usize> = (0..sets.len())
                .filter(|&i| is_subset(&query, &sets[i]))
                .collect();
            assert_eq!(probe(&trie, &query, true), want_sub, "subsets of {query:?}");
            assert_eq!(
                probe(&trie, &query, false),
                want_sup,
                "supersets of {query:?}"
            );
        }
    }

    #[test]
    fn removal_hides_slots() {
        let mut trie = PredSetTrie::default();
        let ef = sorted(vec![p("e"), p("f")]);
        trie.insert(&ef, 0);
        trie.insert(&ef, 1);
        trie.remove(&ef, 0);
        assert_eq!(probe(&trie, &ef, true), vec![1]);
        trie.remove(&ef, 1);
        assert_eq!(probe(&trie, &ef, true), Vec::<usize>::new());
        // Removing an absent path is a no-op.
        trie.remove(&sorted(vec![p("g")]), 7);
    }

    #[test]
    fn duplicate_pred_sets_share_a_node() {
        let mut trie = PredSetTrie::default();
        trie.insert(&sorted(vec![p("e")]), 3);
        trie.insert(&sorted(vec![p("e")]), 5);
        assert_eq!(
            probe(&trie, &sorted(vec![p("e"), p("f")]), true),
            vec![3, 5]
        );
        assert_eq!(probe(&trie, &[], false), vec![3, 5]);
    }
}
