//! The fundamental soundness cross-check (Theorem 1): evaluating the UCQ
//! rewriting over `D` agrees with evaluating the query over the (bounded)
//! chase, across theories, queries and instances — including randomized
//! instances with a fixed seed.

use query_rewritability::chase::{chase, ChaseBudget};
use query_rewritability::hom::holds;
use query_rewritability::prelude::*;
use query_rewritability::rewrite::{rewrite, RewriteBudget};

/// Deterministic pseudo-random instance over binary predicate `e` and unary
/// `p` with `n` vertices.
fn random_instance(n: usize, edges: usize, seed: u64) -> Instance {
    let mut state = seed ^ 0x9E3779B97F4A7C15;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut src = String::new();
    for _ in 0..edges {
        src.push_str(&format!("e(n{}, n{}).\n", next() % n, next() % n));
    }
    src.push_str(&format!("p(n{}).\n", next() % n));
    parse_instance(&src).unwrap()
}

/// Asserts rewriting ≡ chase for every answer tuple over dom(D).
fn assert_equivalent(theory: &Theory, query_src: &str, db: &Instance, depth: usize) {
    let query = parse_query(query_src).unwrap();
    let r = rewrite(theory, &query, RewriteBudget::default()).unwrap();
    assert!(r.is_complete(), "rewriting must complete for {query_src}");
    let ch = chase(theory, db, ChaseBudget::rounds(depth));
    let arity = query.answer_vars().len();
    let dom = db.domain();
    let mut tuples: Vec<Vec<TermId>> = vec![vec![]];
    for _ in 0..arity {
        tuples = tuples
            .into_iter()
            .flat_map(|t| {
                dom.iter().map(move |c| {
                    let mut t2 = t.clone();
                    t2.push(*c);
                    t2
                })
            })
            .collect();
    }
    for tuple in tuples {
        let via_chase = holds(&query, &ch.instance, &tuple);
        let via_rw = r.ucq.disjuncts().iter().any(|d| holds(d, db, &tuple));
        assert_eq!(
            via_chase, via_rw,
            "disagreement on {query_src} at {tuple:?} over {db}"
        );
    }
}

#[test]
fn family_theory_random_instances() {
    let t = parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap();
    for seed in 0..4u64 {
        let mut db = random_instance(5, 4, seed);
        db.extend(
            parse_instance("human(n0). mother(n1, n2).")
                .unwrap()
                .iter()
                .map(|f| f.to_fact()),
        );
        assert_equivalent(&t, "?(X) :- mother(X, M).", &db, 6);
        assert_equivalent(&t, "?(X) :- human(X).", &db, 6);
        assert_equivalent(&t, "? :- mother(X, Y), human(Y).", &db, 6);
    }
}

#[test]
fn linear_path_theory_random_instances() {
    let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
    for seed in 0..6u64 {
        let db = random_instance(6, 7, 100 + seed);
        assert_equivalent(&t, "?(A) :- e(A,B), e(B,C).", &db, 7);
        assert_equivalent(&t, "?(A,B) :- e(A,X), e(B,X).", &db, 7);
        assert_equivalent(&t, "? :- e(X,Y), e(Y,Z), e(Z,W).", &db, 7);
    }
}

#[test]
fn guarded_propagation_theory() {
    let t = parse_theory("p(X), e(X,Y) -> q(Y).\nq(X) -> r(X,W).").unwrap();
    for seed in 0..4u64 {
        let db = random_instance(5, 6, 200 + seed);
        assert_equivalent(&t, "?(Y) :- q(Y).", &db, 5);
        assert_equivalent(&t, "?(Y) :- r(Y, Z).", &db, 5);
    }
}

#[test]
fn sticky_example_39_structured() {
    let t = parse_theory("e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).").unwrap();
    let db = parse_instance("e(a,b1,b2,c1). r(a,c1). r(a,c2). r(d,c1).").unwrap();
    assert_equivalent(&t, "?(A,D) :- e(A,B,C,D).", &db, 4);
    assert_equivalent(&t, "?(A) :- e(A,B,C,D), r(A,D).", &db, 4);
}

#[test]
fn multi_head_shared_existential() {
    let t = parse_theory("p(X) -> s(X,W), s2(W,X).").unwrap();
    let db = parse_instance("p(a). s(b,c). s2(c,b).").unwrap();
    assert_equivalent(&t, "?(X) :- s(X,W), s2(W,X).", &db, 3);
}

#[test]
fn datalog_transitivity_bounded_query() {
    // Unbounded Datalog is not BDD, but *some* queries still have complete
    // rewritings (e.g. single-edge queries rewrite to themselves plus
    // 2-step paths... in fact e is closed under nothing here: check a
    // query that the engine does complete).
    let t = parse_theory("e(X,Y), e(Y,Z) -> f(X,Z).").unwrap(); // non-recursive
    for seed in 0..4u64 {
        let db = random_instance(5, 6, 300 + seed);
        assert_equivalent(&t, "?(A,B) :- f(A,B).", &db, 3);
        assert_equivalent(&t, "? :- f(A,B), e(B,C).", &db, 3);
    }
}
