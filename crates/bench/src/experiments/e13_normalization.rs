//! **E13 — Appendix A (Theorem 3)**: the normalization algorithm.
//!
//! Example 66 shows that the raw theory's ancestor sets can be made
//! unboundedly large by an adversarial ancestor function (Lemma 65 is
//! false), while the normalized theory `T_NF` bounds the *connected*
//! ancestors of every chase tree (the Crucial Lemma 77) — the key step in
//! proving binary BDD theories local. We measure both bounds, and verify
//! Lemma 70 / Corollary 76 (the chases of `T` and `T_NF` agree) on every
//! instance.

use std::time::Instant;

use qr_core::normalize::{ancestor_bounds, corollary76_check, lemma70_check, normalize};
use qr_core::theories::ex66;
use qr_rewrite::RewriteBudget;
use qr_syntax::{parse_instance, Instance};

use crate::Table;

/// Example 66's instance: one `E`-edge plus `m` irrelevant `P`-atoms.
pub fn ex66_instance(m: usize) -> Instance {
    let mut src = String::from("e(a0, a1).\n");
    for i in 1..=m {
        src.push_str(&format!("p(b{i}).\n"));
    }
    parse_instance(&src).expect("instance parses")
}

/// The E13 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E13  App. A / Thm 3 — normalization bounds connected ancestors (Ex. 66)",
        "raw adversarial tree-ancestor union grows with |D|; T_NF connected union stays ≤ 2; Lemma 70 & Cor. 76 hold",
        &["m (P-atoms)", "depth", "raw anc union", "T_NF canc union", "Lemma 70", "Cor. 76", "ms"],
    );
    let theory = ex66();
    let n = normalize(&theory, RewriteBudget::default()).expect("Ex. 66 is BDD");
    for m in [1usize, 2, 4, 6] {
        let t0 = Instant::now();
        let db = ex66_instance(m);
        let depth = 2 * m + 2;
        let (raw, nf) = ancestor_bounds(&theory, &n, &db, depth);
        let l70 = lemma70_check(&theory, &n, &db, 4);
        let c76 = corollary76_check(&theory, &n, &db, 3);
        t.row(vec![
            m.to_string(),
            depth.to_string(),
            raw.to_string(),
            nf.to_string(),
            l70.to_string(),
            c76.to_string(),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_grows_nf_flat() {
        let theory = ex66();
        let n = normalize(&theory, RewriteBudget::default()).unwrap();
        let (raw2, nf2) = ancestor_bounds(&theory, &n, &ex66_instance(2), 6);
        let (raw4, nf4) = ancestor_bounds(&theory, &n, &ex66_instance(4), 10);
        assert!(raw4 > raw2);
        assert_eq!(nf2, nf4);
    }
}
