//! **E12 — Theorem 1**: the fundamental rewriting equivalence, checked
//! end-to-end: for every theory/query/instance/answer-tuple combination,
//! `D ⊨ rew(ψ)(ā)` iff `Ch(T,D) ⊨ ψ(ā)` (chase bounded well past the
//! query's entailment depth).
//!
//! For `T_d` the rewriting comes from the marked process (E3); for the
//! others from the generic piece-rewriting engine (all complete within
//! budget on these inputs).

use std::time::Instant;

use qr_chase::{chase, ChaseBudget};
use qr_core::marked::rewrite_td;
use qr_core::theories::{ex39, green_path, phi_r_n, t_a, t_p};
use qr_exec::Executor;
use qr_hom::{holds, holds_ucq_with};
use qr_rewrite::{rewrite_with, RewriteBudget};
use qr_syntax::{parse_instance, parse_query, ConjunctiveQuery, Instance, TermId, Theory, Ucq};

use crate::Table;

/// Checks the equivalence for one (theory, query, rewriting, instance):
/// returns `(agreements, disagreements)` over all answer tuples from
/// `dom(D)` (capped at 200 tuples). The rewriting-side disjunct sweep for
/// each tuple runs on `exec`'s worker pool.
pub fn check_equivalence(
    theory: &Theory,
    query: &ConjunctiveQuery,
    rewriting: &Ucq,
    rewriting_has_true: bool,
    db: &Instance,
    depth: usize,
    exec: &Executor,
) -> (usize, usize) {
    let ch = chase(
        theory,
        db,
        ChaseBudget {
            max_rounds: depth,
            max_facts: 2_000_000,
        },
    );
    let arity = query.answer_vars().len();
    let dom = db.domain();
    let mut tuples: Vec<Vec<TermId>> = vec![vec![]];
    for _ in 0..arity {
        tuples = tuples
            .into_iter()
            .flat_map(|t| {
                dom.iter().map(move |c| {
                    let mut t2 = t.clone();
                    t2.push(*c);
                    t2
                })
            })
            .collect();
        if tuples.len() > 200 {
            tuples.truncate(200);
        }
    }
    let (mut agree, mut disagree) = (0, 0);
    for tuple in tuples {
        let via_chase = holds(query, &ch.instance, &tuple);
        let via_rewriting = rewriting_has_true || holds_ucq_with(exec, rewriting, db, &tuple);
        if via_chase == via_rewriting {
            agree += 1;
        } else {
            disagree += 1;
        }
    }
    (agree, disagree)
}

/// The E12 table.
pub fn table(exec: &Executor) -> Table {
    let mut t = Table::new(
        "E12  Thm 1 — rewriting ≡ chase on every (theory, query, instance, tuple)",
        "zero disagreements everywhere",
        &["theory", "query", "instance", "tuples", "disagree", "ms"],
    );

    // Generic engine cases: (theory label, theory, query, named instances,
    // chase depth).
    type Case = (
        &'static str,
        Theory,
        ConjunctiveQuery,
        Vec<(&'static str, Instance)>,
        usize,
    );
    let cases: Vec<Case> = vec![
        (
            "T_a",
            t_a(),
            parse_query("?(X) :- mother(X, M).").expect("q"),
            vec![
                (
                    "family",
                    parse_instance("human(abel). mother(eve, abel).").expect("i"),
                ),
                ("humans", parse_instance("human(a). human(b).").expect("i")),
                ("empty-ish", parse_instance("p(z).").expect("i")),
            ],
            6,
        ),
        (
            "T_p",
            t_p(),
            parse_query("?(A) :- e(A,B), e(B,C).").expect("q"),
            vec![
                ("edge", parse_instance("e(a,b).").expect("i")),
                ("fork", parse_instance("e(a,b). e(c,b).").expect("i")),
                ("cycle", parse_instance("e(a,b). e(b,a).").expect("i")),
            ],
            6,
        ),
        (
            "Ex.39",
            ex39(),
            parse_query("?(A,D) :- e(A,B,C,D).").expect("q"),
            vec![
                ("star2", qr_core::theories::star_39(2)),
                ("star3", qr_core::theories::star_39(3)),
            ],
            5,
        ),
    ];
    for (name, theory, query, dbs, depth) in cases {
        let r = rewrite_with(&theory, &query, RewriteBudget::default(), exec).expect("supported");
        assert!(r.is_complete(), "{name} rewriting incomplete");
        for (iname, db) in dbs {
            let t0 = Instant::now();
            let (agree, disagree) =
                check_equivalence(&theory, &query, &r.ucq, false, &db, depth, exec);
            t.row(vec![
                name.into(),
                query.render(),
                iname.into(),
                (agree + disagree).to_string(),
                disagree.to_string(),
                t0.elapsed().as_millis().to_string(),
            ]);
        }
    }

    // T_d via the marked process.
    let td = qr_core::theories::t_d();
    for n in [1usize, 2] {
        let q = phi_r_n(n);
        let mr = rewrite_td(&q, 10_000_000).expect("process terminates");
        let ucq = mr.ucq();
        for m in [(1 << n) - 1, 1 << n, (1 << n) + 1] {
            if m == 0 {
                continue;
            }
            let (db, _, _) = green_path(m, &format!("e12x{n}x{m}x"));
            let t0 = Instant::now();
            let (agree, disagree) =
                check_equivalence(&td, &q, &ucq, mr.has_true_disjunct, &db, 2 * n + 2, exec);
            t.row(vec![
                "T_d (marked)".into(),
                format!("φ_R^{n}"),
                format!("G^{m}"),
                (agree + disagree).to_string(),
                disagree.to_string(),
                t0.elapsed().as_millis().to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_disagreements_small() {
        let theory = t_p();
        let query = parse_query("?(A) :- e(A,B), e(B,C).").unwrap();
        let exec = Executor::sequential();
        let r = rewrite_with(&theory, &query, RewriteBudget::default(), &exec).unwrap();
        let db = parse_instance("e(a,b). e(c,d). e(d,a).").unwrap();
        let (_, disagree) = check_equivalence(&theory, &query, &r.ucq, false, &db, 6, &exec);
        assert_eq!(disagree, 0);
    }

    #[test]
    fn t_d_marked_rewriting_agrees_with_chase() {
        let td = qr_core::theories::t_d();
        let q = phi_r_n(1);
        let mr = rewrite_td(&q, 1_000_000).unwrap();
        for m in 1..=3usize {
            let (db, _, _) = green_path(m, &format!("t12x{m}x"));
            let (_, disagree) = check_equivalence(
                &td,
                &q,
                &mr.ucq(),
                mr.has_true_disjunct,
                &db,
                4,
                &Executor::with_threads(2),
            );
            assert_eq!(disagree, 0, "G^{m}");
        }
    }
}
