//! Cross-cutting chase engine properties on randomized inputs: semi-naive
//! ≡ naive, determinism (Skolem naming), complete derivation recording,
//! and prefix monotonicity.

use qr_chase::{chase, chase_all, chase_naive, ChaseBudget, Provenance};
use qr_syntax::{parse_instance, parse_theory, Instance, Theory};
use qr_testkit::{check, Rng};

fn edge_instance(rng: &mut Rng) -> Instance {
    let n = rng.range(1, 8);
    let mut src = String::new();
    for _ in 0..n {
        let a = rng.below(5);
        let b = rng.below(5);
        src.push_str(&format!("e(w{a}, w{b}).\n"));
    }
    parse_instance(&src).unwrap()
}

/// A pool of small theories exercising every semi-naive enumeration path:
/// existential rules, Datalog joins (multi-delta-atom triggers), mutual
/// recursion, `dom`-scoped variables, and ground `dom` bodies.
fn small_theory(rng: &mut Rng) -> Theory {
    let sources = [
        "e(X,Y) -> e(Y,Z).",
        "e(X,Y), e(Y,Z) -> e(X,Z).",
        "e(X,Y) -> p(Y).\np(X) -> e(X,W).",
        "e(X,Y), e(Y,X) -> loopy(X).\nloopy(X) -> e(X,Z).",
        "true -> r(X,X).\ndom(X) -> r(X,Z).",
        // Ground-dom bodies: fire iff the constant enters the active domain.
        "dom(w1) -> p(w1).\np(X) -> e(X,W).",
        "e(X,Y) -> e(Y,Z).\ndom(w0), dom(X) -> q(X).",
        // Multi-delta-atom trigger shapes (both body atoms can be new).
        "e(X,Y), e(Y,Z) -> f(X,Z).\nf(X,Y), f(Y,Z) -> g(X,Z).",
    ];
    parse_theory(rng.pick::<&str>(&sources)).unwrap()
}

#[test]
fn semi_naive_equals_naive() {
    check("semi_naive_equals_naive", 60, |rng| {
        let theory = small_theory(rng);
        let db = edge_instance(rng);
        let budget = ChaseBudget {
            max_rounds: 4,
            max_facts: 50_000,
        };
        let fast = chase(&theory, &db, budget);
        let slow = chase_naive(&theory, &db, budget);
        assert_eq!(
            fast.rounds,
            slow.rounds,
            "theory {}\ndb {}",
            theory.render(),
            db
        );
        for i in 0..=fast.rounds {
            assert_eq!(
                fast.prefix(i),
                slow.prefix(i),
                "round {i} differs: theory {}\ndb {}",
                theory.render(),
                db
            );
        }
    });
}

#[test]
fn chase_is_deterministic() {
    check("chase_is_deterministic", 40, |rng| {
        let theory = small_theory(rng);
        let db = edge_instance(rng);
        let budget = ChaseBudget {
            max_rounds: 4,
            max_facts: 50_000,
        };
        let a = chase(&theory, &db, budget);
        let b = chase(&theory, &db, budget);
        // Literal equality, including fact order (Skolem naming makes the
        // run a pure function of (T, D, budget)).
        let fa: Vec<_> = a.instance.iter().collect();
        let fb: Vec<_> = b.instance.iter().collect();
        assert_eq!(fa, fb);
    });
}

#[test]
fn prefixes_are_monotone() {
    check("prefixes_are_monotone", 40, |rng| {
        let theory = small_theory(rng);
        let db = edge_instance(rng);
        let ch = chase(
            &theory,
            &db,
            ChaseBudget {
                max_rounds: 4,
                max_facts: 50_000,
            },
        );
        for i in 1..=ch.rounds {
            assert!(ch.prefix(i - 1).subset_of(&ch.prefix(i)));
        }
        assert!(db.subset_of(&ch.prefix(0)));
    });
}

#[test]
fn all_derivations_extend_first() {
    check("all_derivations_extend_first", 40, |rng| {
        let theory = small_theory(rng);
        let db = edge_instance(rng);
        let budget = ChaseBudget {
            max_rounds: 3,
            max_facts: 20_000,
        };
        let full = chase_all(&theory, &db, budget);
        assert_eq!(full.all_derivations.len(), full.instance.len());
        for (i, first) in full.derivations.iter().enumerate() {
            // Input facts (first = None) may still be *re*-derived by rules
            // and collect derivations; derived facts must list their first
            // derivation among all derivations.
            if let Some(d) = first {
                assert!(full.all_derivations[i].contains(d));
            }
        }
        // Every recorded derivation list is duplicate-free.
        for derivs in &full.all_derivations {
            for (i, d) in derivs.iter().enumerate() {
                assert!(
                    !derivs[i + 1..].contains(d),
                    "duplicate derivation recorded: theory {}\ndb {}",
                    theory.render(),
                    db
                );
            }
        }
        // And the instances agree with the plain run.
        let plain = chase(&theory, &db, budget);
        assert_eq!(plain.instance, full.instance);
    });
}

/// The checked-in proptest regression seed from the original suite:
/// transitive closure over `{e(w4,w0), e(w0,w1), e(w3,w3)}`.
#[test]
fn regression_transitive_closure_with_self_loop() {
    let theory = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
    let db = parse_instance("e(w4,w0). e(w0,w1). e(w3,w3).").unwrap();
    let budget = ChaseBudget {
        max_rounds: 4,
        max_facts: 50_000,
    };
    let fast = chase(&theory, &db, budget);
    let slow = chase_naive(&theory, &db, budget);
    assert_eq!(fast.rounds, slow.rounds);
    for i in 0..=fast.rounds {
        assert_eq!(fast.prefix(i), slow.prefix(i), "round {i}");
    }
    // The closure adds exactly e(w4,w1); the self-loop re-derives itself.
    assert_eq!(fast.instance.len(), 4);
    let full = chase_all(&theory, &db, budget);
    assert_eq!(full.instance, fast.instance);
    for derivs in &full.all_derivations {
        for (i, d) in derivs.iter().enumerate() {
            assert!(!derivs[i + 1..].contains(d), "duplicate derivation");
        }
    }
}

#[test]
fn all_derivations_on_example_66() {
    // E(a0,a1) + P(b1..b3): the chain fact e(a1, f(a1)) has one derivation
    // per colour choice.
    let t = parse_theory(
        "e(X,Y), r(Z,Y) -> e(Y,V).\n\
         e(X,Y), p(Z) -> r(Z,Y).",
    )
    .unwrap();
    let db = parse_instance("e(a0,a1). p(b1). p(b2). p(b3).").unwrap();
    let ch = chase_all(&t, &db, ChaseBudget::rounds(3));
    let chain_fact_idx = ch
        .instance
        .iter()
        .position(|f| f.pred.name().as_str() == "e" && !f.is_original())
        .expect("derived e-fact exists");
    assert_eq!(ch.all_derivations[chain_fact_idx].len(), 3);
    // Adversarial ancestors can reach beyond any single recorded choice.
    let prov = Provenance::new(&ch);
    let single = prov.ancestors(chain_fact_idx).len();
    let adversarial = prov.adversarial_ancestors(chain_fact_idx, false).len();
    assert!(adversarial >= single);
}

#[test]
fn dom_theories_chase_deterministically() {
    let t = parse_theory("true -> r(X,X).\ndom(X) -> r(X,Z).").unwrap();
    let db = parse_instance("p(a). p(b).").unwrap();
    let a = chase(&t, &db, ChaseBudget::rounds(3));
    let b = chase(&t, &db, ChaseBudget::rounds(3));
    assert_eq!(a.instance, b.instance);
    // The loop element exists and is disjoint from dom(D)'s component.
    let loops: Vec<_> = a
        .instance
        .iter()
        .filter(|f| f.args.len() == 2 && f.args[0] == f.args[1])
        .collect();
    assert!(!loops.is_empty());
    assert!(loops.iter().all(|f| !f.args[0].is_const()));
}
