//! Conjunctive queries (CQs) and unions of conjunctive queries (UCQs).
//!
//! A CQ `φ(ȳ) = ∃x̄ β(x̄,ȳ)` is stored as its set of atoms plus the list of
//! answer (free) variables `ȳ`; all other variables are implicitly
//! existential. Variables are indices local to the query; a name table is
//! kept for display and round-tripping through the parser.

use std::collections::{HashMap, HashSet};

use crate::atom::Pred;
use crate::instance::Instance;
use crate::symbol::Symbol;
use crate::term::TermId;

/// A query-local variable (dense index into the query's name table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term position in a query atom: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum QTerm {
    /// A (free or existential) variable.
    Var(Var),
    /// A constant.
    Const(Symbol),
}

impl QTerm {
    /// Returns the variable, if this term is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            QTerm::Var(v) => Some(v),
            QTerm::Const(_) => None,
        }
    }
}

/// A (non-ground) atom `p(u₁,…,uₖ)` appearing in a query or rule.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct QAtom {
    /// The predicate.
    pub pred: Pred,
    /// Arguments; `args.len() == pred.arity()`.
    pub args: Box<[QTerm]>,
}

impl QAtom {
    /// Creates an atom, checking the arity.
    pub fn new(pred: Pred, args: impl Into<Box<[QTerm]>>) -> QAtom {
        let args = args.into();
        assert_eq!(
            args.len(),
            pred.arity() as usize,
            "arity mismatch constructing atom for {pred:?}"
        );
        QAtom { pred, args }
    }

    /// Iterates over the variables of the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// `true` iff `v` occurs in the atom.
    pub fn mentions(&self, v: Var) -> bool {
        self.vars().any(|u| u == v)
    }

    /// Applies a variable substitution, leaving unmapped variables alone.
    pub fn apply(&self, subst: &HashMap<Var, QTerm>) -> QAtom {
        QAtom {
            pred: self.pred,
            args: self
                .args
                .iter()
                .map(|t| match t {
                    QTerm::Var(v) => *subst.get(v).unwrap_or(t),
                    QTerm::Const(_) => *t,
                })
                .collect(),
        }
    }
}

/// A conjunctive query `φ(ȳ) = ∃x̄ β(x̄,ȳ)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConjunctiveQuery {
    answer: Vec<Var>,
    atoms: Vec<QAtom>,
    var_names: Vec<Symbol>,
}

impl ConjunctiveQuery {
    /// Creates a query.
    ///
    /// # Panics
    /// Panics if a variable index is out of range of `var_names`, if the
    /// body is empty, or if an answer variable does not occur in any atom
    /// (unsafe query).
    pub fn new(answer: Vec<Var>, atoms: Vec<QAtom>, var_names: Vec<Symbol>) -> ConjunctiveQuery {
        assert!(
            !atoms.is_empty(),
            "conjunctive query must have a non-empty body"
        );
        let n = var_names.len() as u32;
        for a in &atoms {
            for v in a.vars() {
                assert!(v.0 < n, "variable index {v:?} out of range");
            }
        }
        for v in &answer {
            assert!(v.0 < n, "answer variable index {v:?} out of range");
            assert!(
                atoms.iter().any(|a| a.mentions(*v)),
                "answer variable {} does not occur in the body",
                var_names[v.index()]
            );
        }
        ConjunctiveQuery {
            answer,
            atoms,
            var_names,
        }
    }

    /// The answer (free) variables `ȳ`, in order.
    pub fn answer_vars(&self) -> &[Var] {
        &self.answer
    }

    /// The atoms of the body.
    pub fn atoms(&self) -> &[QAtom] {
        &self.atoms
    }

    /// Number of atoms — the paper's `|φ(ȳ)|`.
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// `true` iff the query has no answer variables (a Boolean CQ).
    pub fn is_boolean(&self) -> bool {
        self.answer.is_empty()
    }

    /// Display name of a variable.
    pub fn var_name(&self, v: Var) -> Symbol {
        self.var_names[v.index()]
    }

    /// The variable name table (indexed by [`Var`] index).
    pub fn var_names(&self) -> &[Symbol] {
        &self.var_names
    }

    /// All variables that occur in the body, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in a.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The existential variables: those occurring in the body but not free.
    pub fn existential_vars(&self) -> Vec<Var> {
        let ans: HashSet<Var> = self.answer.iter().copied().collect();
        self.vars()
            .into_iter()
            .filter(|v| !ans.contains(v))
            .collect()
    }

    /// Atoms that mention `v`.
    pub fn atoms_with(&self, v: Var) -> impl Iterator<Item = &QAtom> {
        self.atoms.iter().filter(move |a| a.mentions(v))
    }

    /// Renumbers variables to `0..k` in first-occurrence order (answer
    /// variables first) and sorts atoms; the result is a deterministic
    /// representative used for cheap structural deduplication.
    ///
    /// Equal canonical forms imply isomorphic queries; the converse need not
    /// hold (full CQ isomorphism is graph isomorphism), so callers that need
    /// semantic deduplication must additionally use containment checks.
    pub fn canonical(&self) -> ConjunctiveQuery {
        self.canonical_with_map().0
    }

    /// [`canonical`](Self::canonical), additionally returning, for every
    /// atom of `self` (by position), the index of the canonical atom it
    /// became. Atoms merged by deduplication map to the same index. The
    /// core-finding fold uses this to carry per-atom annotations across
    /// re-canonicalization.
    pub fn canonical_with_map(&self) -> (ConjunctiveQuery, Vec<usize>) {
        // Each atom drags its set of origin positions through the sort /
        // dedup / renumber rounds.
        let mut tagged: Vec<(QAtom, Vec<usize>)> = self
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), vec![i]))
            .collect();
        let sort_dedup = |tagged: &mut Vec<(QAtom, Vec<usize>)>| {
            tagged.sort_by(|x, y| x.0.cmp(&y.0));
            let mut merged: Vec<(QAtom, Vec<usize>)> = Vec::with_capacity(tagged.len());
            for (a, origins) in tagged.drain(..) {
                match merged.last_mut() {
                    Some((prev, prev_origins)) if *prev == a => prev_origins.extend(origins),
                    _ => merged.push((a, origins)),
                }
            }
            *tagged = merged;
        };
        // Two renumber/sort rounds make the representative independent of
        // most incidental atom orderings.
        let mut answer = self.answer.clone();
        let mut names = self.var_names.clone();
        for _ in 0..2 {
            sort_dedup(&mut tagged);
            let mut remap: HashMap<Var, Var> = HashMap::new();
            let mut new_names = Vec::new();
            let touch = |v: Var, remap: &mut HashMap<Var, Var>, new_names: &mut Vec<Symbol>| {
                let next = Var(remap.len() as u32);
                *remap.entry(v).or_insert_with(|| {
                    new_names.push(names[v.index()]);
                    next
                })
            };
            for v in &answer {
                touch(*v, &mut remap, &mut new_names);
            }
            for (a, _) in &tagged {
                for v in a.vars() {
                    touch(v, &mut remap, &mut new_names);
                }
            }
            let subst: HashMap<Var, QTerm> =
                remap.iter().map(|(k, v)| (*k, QTerm::Var(*v))).collect();
            for (a, _) in tagged.iter_mut() {
                *a = a.apply(&subst);
            }
            answer = answer.iter().map(|v| remap[v]).collect();
            names = new_names;
        }
        sort_dedup(&mut tagged);
        let mut map = vec![0usize; self.atoms.len()];
        let mut atoms = Vec::with_capacity(tagged.len());
        for (new_idx, (a, origins)) in tagged.into_iter().enumerate() {
            for o in origins {
                map[o] = new_idx;
            }
            atoms.push(a);
        }
        (
            ConjunctiveQuery {
                answer,
                atoms,
                var_names: names,
            },
            map,
        )
    }

    /// Applies a substitution to every atom, keeping the same answer tuple
    /// shape (answer variables must be mapped to variables, if mapped).
    pub fn apply(&self, subst: &HashMap<Var, QTerm>) -> ConjunctiveQuery {
        let answer = self
            .answer
            .iter()
            .map(|v| match subst.get(v) {
                None => *v,
                Some(QTerm::Var(u)) => *u,
                Some(QTerm::Const(_)) => {
                    panic!("substitution maps answer variable {v:?} to a constant")
                }
            })
            .collect();
        ConjunctiveQuery {
            answer,
            atoms: self.atoms.iter().map(|a| a.apply(subst)).collect(),
            var_names: self.var_names.clone(),
        }
    }

    /// Freezes the query into its canonical instance: each variable becomes
    /// a distinct fresh constant. Returns the instance together with the
    /// variable-to-term mapping.
    pub fn freeze(&self) -> (Instance, HashMap<Var, TermId>) {
        let mut map = HashMap::new();
        for v in self.vars() {
            let name = Symbol::fresh(&format!("_frz_{}", self.var_name(v)));
            map.insert(v, TermId::constant(name));
        }
        let mut inst = Instance::new();
        for a in &self.atoms {
            let args: Vec<TermId> = a
                .args
                .iter()
                .map(|t| match t {
                    QTerm::Var(v) => map[v],
                    QTerm::Const(c) => TermId::constant(*c),
                })
                .collect();
            inst.insert(crate::atom::Fact::new(a.pred, args));
        }
        (inst, map)
    }

    /// Views an instance as a Boolean conjunctive query: every term becomes
    /// a variable (the construction in the proof of Observation 31). Terms
    /// listed in `free` become answer variables, in the given order.
    pub fn of_instance(inst: &Instance, free: &[TermId]) -> ConjunctiveQuery {
        let mut var_of: HashMap<TermId, Var> = HashMap::new();
        let mut names = Vec::new();
        let touch = |t: TermId, var_of: &mut HashMap<TermId, Var>, names: &mut Vec<Symbol>| {
            let next = Var(var_of.len() as u32);
            *var_of.entry(t).or_insert_with(|| {
                names.push(Symbol::fresh("v"));
                next
            })
        };
        for &t in free {
            touch(t, &mut var_of, &mut names);
        }
        let mut atoms = Vec::new();
        for f in inst.iter() {
            let args: Vec<QTerm> = f
                .terms()
                .map(|t| QTerm::Var(touch(t, &mut var_of, &mut names)))
                .collect();
            atoms.push(QAtom::new(f.pred, args));
        }
        let answer = free.iter().map(|t| var_of[t]).collect();
        ConjunctiveQuery::new(answer, atoms, names)
    }

    /// A readable rendering, e.g. `?(X) :- mother(X,Y), human(Y)`.
    pub fn render(&self) -> String {
        crate::display::render_cq(self)
    }
}

/// A union of conjunctive queries, all with the same answer arity.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Ucq {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl Ucq {
    /// Creates a UCQ; all disjuncts must have the same answer arity.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Ucq {
        if let Some(first) = disjuncts.first() {
            let n = first.answer_vars().len();
            assert!(
                disjuncts.iter().all(|d| d.answer_vars().len() == n),
                "UCQ disjuncts must share the answer arity"
            );
        }
        Ucq { disjuncts }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// `true` iff the UCQ has no disjuncts (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Maximum disjunct size — the paper's rewriting-size measure `rs`.
    pub fn max_disjunct_size(&self) -> usize {
        self.disjuncts
            .iter()
            .map(ConjunctiveQuery::size)
            .max()
            .unwrap_or(0)
    }

    /// Adds a disjunct.
    pub fn push(&mut self, cq: ConjunctiveQuery) {
        if let Some(first) = self.disjuncts.first() {
            assert_eq!(
                first.answer_vars().len(),
                cq.answer_vars().len(),
                "UCQ disjuncts must share the answer arity"
            );
        }
        self.disjuncts.push(cq);
    }
}

impl FromIterator<ConjunctiveQuery> for Ucq {
    fn from_iter<I: IntoIterator<Item = ConjunctiveQuery>>(iter: I) -> Self {
        Ucq::new(iter.into_iter().collect())
    }
}

/// Convenience builder for constructing queries and rules programmatically.
#[derive(Default)]
pub struct VarPool {
    by_name: HashMap<Symbol, Var>,
    names: Vec<Symbol>,
}

impl VarPool {
    /// A fresh, empty pool.
    pub fn new() -> VarPool {
        VarPool::default()
    }

    /// Returns the variable named `name`, creating it on first use.
    pub fn var(&mut self, name: &str) -> Var {
        let sym = Symbol::intern(name);
        if let Some(&v) = self.by_name.get(&sym) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(sym);
        self.by_name.insert(sym, v);
        v
    }

    /// A fresh anonymous variable.
    pub fn fresh(&mut self, stem: &str) -> Var {
        let sym = Symbol::fresh(stem);
        let v = Var(self.names.len() as u32);
        self.names.push(sym);
        self.by_name.insert(sym, v);
        v
    }

    /// Consumes the pool, returning the name table.
    pub fn into_names(self) -> Vec<Symbol> {
        self.names
    }

    /// The current name table.
    pub fn names(&self) -> &[Symbol] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(pred: &str, vars: &[Var]) -> QAtom {
        QAtom::new(
            Pred::new(pred, vars.len() as u32),
            vars.iter().map(|v| QTerm::Var(*v)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn query_construction_and_vars() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let q = ConjunctiveQuery::new(
            vec![x],
            vec![atom("mother", &[x, y]), atom("human", &[y])],
            pool.into_names(),
        );
        assert_eq!(q.size(), 2);
        assert_eq!(q.vars(), vec![x, y]);
        assert_eq!(q.existential_vars(), vec![y]);
        assert!(!q.is_boolean());
    }

    #[test]
    #[should_panic(expected = "does not occur")]
    fn unsafe_query_rejected() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let _ = ConjunctiveQuery::new(vec![y], vec![atom("p", &[x])], pool.into_names());
    }

    #[test]
    fn canonical_is_stable_under_atom_permutation() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let z = pool.var("Z");
        let names = pool.into_names();
        let q1 = ConjunctiveQuery::new(
            vec![],
            vec![atom("e", &[x, y]), atom("e", &[y, z])],
            names.clone(),
        );
        let q2 = ConjunctiveQuery::new(vec![], vec![atom("e", &[y, z]), atom("e", &[x, y])], names);
        assert_eq!(q1.canonical(), q2.canonical());
    }

    #[test]
    fn canonical_with_map_tracks_atom_origins() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let z = pool.var("Z");
        let names = pool.into_names();
        // Includes a duplicate atom (indices 0 and 2 merge after
        // renaming): the map must send both to the same canonical index.
        let q = ConjunctiveQuery::new(
            vec![x],
            vec![
                atom("e", &[y, z]),
                atom("e", &[x, y]),
                atom("e", &[y, z]),
                atom("f", &[z, z]),
            ],
            names,
        );
        let (canon, map) = q.canonical_with_map();
        assert_eq!(canon, q.canonical());
        assert_eq!(map.len(), q.size());
        assert_eq!(map[0], map[2], "duplicate atoms share a canonical slot");
        // Each original atom equals its canonical image under the
        // canonical substitution: check predicates and shared-variable
        // structure survive (predicates are renaming-invariant).
        for (orig, &ni) in q.atoms().iter().zip(&map) {
            assert_eq!(orig.pred, canon.atoms()[ni].pred);
            assert_eq!(orig.args.len(), canon.atoms()[ni].args.len());
        }
        // Every canonical atom is hit by at least one original.
        for ni in 0..canon.size() {
            assert!(map.contains(&ni));
        }
    }

    #[test]
    fn freeze_round_trips_structure() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let q = ConjunctiveQuery::new(
            vec![x],
            vec![atom("e", &[x, y]), atom("e", &[y, x])],
            pool.into_names(),
        );
        let (inst, map) = q.freeze();
        assert_eq!(inst.len(), 2);
        assert_ne!(map[&x], map[&y]);
        let back = ConjunctiveQuery::of_instance(&inst, &[map[&x]]);
        assert_eq!(back.size(), 2);
        assert_eq!(back.answer_vars().len(), 1);
    }

    #[test]
    fn ucq_measures() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let names = pool.into_names();
        let q1 = ConjunctiveQuery::new(vec![], vec![atom("p", &[x])], names.clone());
        let q2 = ConjunctiveQuery::new(vec![], vec![atom("p", &[x]), atom("q", &[x])], names);
        let ucq = Ucq::new(vec![q1, q2]);
        assert_eq!(ucq.len(), 2);
        assert_eq!(ucq.max_disjunct_size(), 2);
    }
}
