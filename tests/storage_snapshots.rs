//! End-to-end acceptance tests for the S20 columnar fact store on the
//! paper-shaped workloads the bench suite measures: the E1 grid chase
//! (`T_d` on the green path `G^{2^3}`) and the E11 transitive-closure
//! chase on a random graph `G(60,120)`.
//!
//! Two claims are pinned here. First, the memory claim: the columnar
//! layout's logical byte accounting (`StorageStats::bytes_total`) beats
//! the pre-S20 `Vec<Fact>` + hash-index layout
//! (`Instance::legacy_layout_bytes`) by at least 30% on both workloads.
//! Second, the checkpoint claim: serializing a mid-chase prefix with
//! `Instance::to_bytes`, decoding it, and resuming yields a chase byte-
//! identical to one resumed from the un-serialized prefix — and, where
//! the budget suffices for a fixpoint, set-equal to the uninterrupted
//! run (Observation 8: `Ch(T,F) = Ch(T,D)` for `D ⊆ F ⊆ Ch(T,D)`).

use qr_chase::{chase, Chase, ChaseBudget};
use qr_core::theories::{green_path, phi_r_n, t_d};
use qr_hom::holds;
use qr_syntax::{Fact, Instance, Pred, Symbol, TermId};

/// The E11 random-graph generator (same LCG, same seed convention as
/// `qr-bench`, which the root package deliberately does not depend on).
fn random_graph(n: usize, m: usize, seed: u64) -> Instance {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let e = Pred::new("e", 2);
    let mut inst = Instance::new();
    while inst.len() < m {
        let a = next() % n;
        let b = next() % n;
        inst.insert(Fact::new(
            e,
            vec![
                TermId::constant(Symbol::intern(&format!("v{a}"))),
                TermId::constant(Symbol::intern(&format!("v{b}"))),
            ],
        ));
    }
    inst
}

fn tc_theory() -> qr_syntax::Theory {
    qr_syntax::parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap()
}

const BUDGET: ChaseBudget = ChaseBudget {
    max_rounds: 12,
    max_facts: 2_000_000,
};

/// E1 at `n = 3`: chase `T_d` on the green path of length `2^3` until
/// `φ_R^3(a,b)` is entailed, exactly as the harness's E1 table does.
fn e1_chase() -> Chase {
    let (db, a, b) = green_path(8, "a");
    let theory = t_d();
    let q = phi_r_n(3);
    for rounds in 1..=10 {
        let ch = chase(
            &theory,
            &db,
            ChaseBudget {
                max_rounds: rounds,
                max_facts: 2_000_000,
            },
        );
        if holds(&q, &ch.instance, &[a, b]) {
            return ch;
        }
    }
    panic!("E1 (n=3) must entail φ_R^3 within 10 rounds");
}

fn assert_memory_budget(inst: &Instance, label: &str) {
    let new_bytes = inst.stats().bytes_total();
    let old_bytes = inst.legacy_layout_bytes();
    assert!(
        new_bytes * 10 <= old_bytes * 7,
        "{label}: columnar layout uses {new_bytes} logical bytes, legacy layout {old_bytes}; \
         required at least a 30% reduction (got {:.1}%)",
        100.0 * (1.0 - new_bytes as f64 / old_bytes as f64)
    );
}

#[test]
fn e1_grid_chase_meets_the_memory_budget() {
    let ch = e1_chase();
    assert!(ch.instance.len() > 8, "the grid chase must actually grow");
    assert_memory_budget(&ch.instance, "E1 (n=3)");
}

#[test]
fn e11_tc_chase_meets_the_memory_budget() {
    let db = random_graph(60, 120, 0xC0FFEE + 60);
    let ch = chase(&tc_theory(), &db, BUDGET);
    assert!(
        ch.rounds < BUDGET.max_rounds,
        "TC on G(60,120) must reach its fixpoint within the budget"
    );
    assert_memory_budget(&ch.instance, "E11 TC on G(60,120)");
}

/// Deep equality of two runs resumed from (what must be) the same prefix:
/// same fact stream in the same order, same rounds, same counters.
fn assert_byte_identical(control: &Chase, resumed: &Chase, ctx: &str) {
    let cf: Vec<Fact> = control.instance.iter().map(|f| f.to_fact()).collect();
    let rf: Vec<Fact> = resumed.instance.iter().map(|f| f.to_fact()).collect();
    assert_eq!(cf, rf, "fact stream differs: {ctx}");
    assert_eq!(control.rounds, resumed.rounds, "{ctx}");
    assert_eq!(control.round_of, resumed.round_of, "{ctx}");
    assert_eq!(control.outcome, resumed.outcome, "{ctx}");
    assert_eq!(
        control.instance.domain(),
        resumed.instance.domain(),
        "{ctx}"
    );
    assert_eq!(control.instance.stats(), resumed.instance.stats(), "{ctx}");
    assert_eq!(
        control.instance.to_bytes(),
        resumed.instance.to_bytes(),
        "{ctx}"
    );
}

#[test]
fn e11_checkpoint_roundtrips_to_an_identical_chase() {
    let db = random_graph(60, 120, 0xC0FFEE + 60);
    let theory = tc_theory();
    let full = chase(&theory, &db, BUDGET);
    assert!(full.rounds >= 2, "need a mid-run round to checkpoint at");

    let k = full.rounds / 2;
    let prefix = full.prefix(k);
    let checkpoint = prefix.to_bytes();
    let restored = Instance::from_bytes(&checkpoint).expect("checkpoint decodes");
    assert_eq!(restored, prefix);
    assert_eq!(restored.to_bytes(), checkpoint);

    let control = chase(&theory, &prefix, BUDGET);
    let resumed = chase(&theory, &restored, BUDGET);
    assert_byte_identical(&control, &resumed, "TC on G(60,120), checkpoint after half");

    // Observation 8: the budget suffices for the fixpoint, so resuming
    // from the checkpoint reproduces the uninterrupted chase as a set.
    assert_eq!(resumed.instance, full.instance);
    assert_eq!(resumed.instance.len(), full.instance.len());
}

#[test]
fn e1_checkpoint_roundtrips_to_an_identical_chase() {
    let (db, _, _) = green_path(8, "a");
    let theory = t_d();
    let budget = ChaseBudget {
        max_rounds: 5,
        max_facts: 2_000_000,
    };
    let full = chase(&theory, &db, budget);
    assert!(full.rounds >= 2);

    for k in [1, full.rounds - 1] {
        let prefix = full.prefix(k);
        let restored = Instance::from_bytes(&prefix.to_bytes()).expect("checkpoint decodes");
        // Resume with the *remaining* budget: the grid grows a round per
        // chase round, so a fresh full budget would overshoot the original
        // depth (and the instance grows exponentially with depth).
        let remaining = ChaseBudget {
            max_rounds: budget.max_rounds - k,
            max_facts: budget.max_facts,
        };
        let control = chase(&theory, &prefix, remaining);
        let resumed = chase(&theory, &restored, remaining);
        assert_byte_identical(
            &control,
            &resumed,
            &format!("T_d on green path 8, checkpoint after round {k}"),
        );
    }
}
