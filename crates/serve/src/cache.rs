//! The rewriting cache: LRU over structural freeze keys with a byte budget.
//!
//! A cache entry is one *compiled* rewriting — the UCQ returned by the
//! saturation engine plus one [`JoinPlan`] per disjunct, ready to execute
//! against any instance. Entries are keyed by `(theory, freeze key)`, so
//! every query isomorphic to a previously-rewritten one (renamed
//! variables, permuted atoms, answer positions fixed) reuses both the
//! rewriting *and* its compiled plans.
//!
//! Eviction is plain LRU under a **logical** byte budget: entry sizes are
//! computed from fixed per-element costs (the `StorageStats` convention —
//! deterministic across machines, so eviction decisions are too, given the
//! engine touches the cache only at its ordered merge point). The budget
//! never evicts the entry being inserted: an oversized rewriting still
//! serves its own request and simply becomes the next victim.

use std::collections::HashMap;
use std::sync::Arc;

use qr_hom::{CanonicalKey, JoinPlan};
use qr_rewrite::{RewriteOutcome, Rewriting};
use qr_syntax::{Ucq, Var};

/// One disjunct of a cached rewriting, compiled for full answer
/// enumeration (no pre-bound variables).
pub(crate) struct DisjunctPlan {
    pub(crate) plan: JoinPlan,
    pub(crate) answer_vars: Vec<Var>,
}

/// A compiled rewriting: the saturated UCQ, its per-disjunct join plans,
/// and the metadata the serve layer reports per response.
pub struct CacheEntry {
    /// The rewriting set, as returned by the saturation engine.
    pub ucq: Ucq,
    /// `true` iff the rewriting saturated (`RewriteOutcome::Complete`);
    /// budget- or atom-capped rewritings still serve *sound* answers, but
    /// possibly not all certain answers, and responses say so.
    pub complete: bool,
    /// Candidates the saturation engine generated for this rewriting.
    pub generated: usize,
    /// Logical size of this entry under the fixed cost model.
    pub bytes: usize,
    pub(crate) plans: Vec<DisjunctPlan>,
}

impl CacheEntry {
    /// Compiles a finished rewriting into a cache entry.
    pub fn from_rewriting(r: Rewriting) -> Arc<CacheEntry> {
        let plans: Vec<DisjunctPlan> = r
            .ucq
            .disjuncts()
            .iter()
            .map(|d| DisjunctPlan {
                plan: JoinPlan::compile(d.atoms().to_vec(), d.var_names().len(), &[]),
                answer_vars: d.answer_vars().to_vec(),
            })
            .collect();
        let bytes = entry_bytes(&r.ucq);
        Arc::new(CacheEntry {
            complete: matches!(r.outcome, RewriteOutcome::Complete),
            generated: r.generated,
            bytes,
            plans,
            ucq: r.ucq,
        })
    }
}

/// Logical entry size: 64 bytes of header, then per disjunct 48 bytes plus
/// 8 per variable slot (the plan's assignment table), plus per atom twice
/// `16 + 8·arity` (the atom lives once in the UCQ and once in its compiled
/// plan). Fixed costs, not allocator truth — the point is determinism.
fn entry_bytes(ucq: &Ucq) -> usize {
    let mut bytes = 64;
    for d in ucq.disjuncts() {
        bytes += 48 + 8 * d.var_names().len();
        for a in d.atoms() {
            bytes += 2 * (16 + 8 * a.args.len());
        }
    }
    bytes
}

/// Cache key: tenant index plus the kernel's name-independent freeze key.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) tenant: u32,
    pub(crate) key: CanonicalKey,
}

struct Slot {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

/// The LRU store. All mutation happens under the engine's merge lock, in
/// submission order, so hit/miss/eviction streams are deterministic.
pub(crate) struct RewriteCache {
    budget: usize,
    slots: HashMap<CacheKey, Slot>,
    tick: u64,
    bytes: usize,
    peak_bytes: usize,
}

impl RewriteCache {
    pub(crate) fn new(budget: usize) -> RewriteCache {
        RewriteCache {
            budget,
            slots: HashMap::new(),
            tick: 0,
            bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Looks up and touches an entry (LRU bump).
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<Arc<CacheEntry>> {
        self.tick += 1;
        let tick = self.tick;
        self.slots.get_mut(key).map(|slot| {
            slot.last_used = tick;
            Arc::clone(&slot.entry)
        })
    }

    /// Residency peek *without* an LRU touch — the speculative check the
    /// pipeline workers use to decide whether a cold rewrite is worth
    /// starting. Never authoritative: only [`RewriteCache::get`] at the
    /// merge point decides hit vs miss.
    pub(crate) fn contains(&self, key: &CacheKey) -> bool {
        self.slots.contains_key(key)
    }

    /// Inserts an entry, then evicts least-recently-used *other* entries
    /// until the byte budget holds (the new entry itself is never evicted
    /// by its own insertion). Returns the number of evictions.
    pub(crate) fn insert(&mut self, key: CacheKey, entry: Arc<CacheEntry>) -> u64 {
        self.tick += 1;
        self.bytes += entry.bytes;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        let prev = self.slots.insert(
            key.clone(),
            Slot {
                entry,
                last_used: self.tick,
            },
        );
        debug_assert!(
            prev.is_none(),
            "insert after a miss: key cannot be resident"
        );
        let mut evicted = 0;
        while self.bytes > self.budget && self.slots.len() > 1 {
            // `last_used` ticks are unique, so the victim is unambiguous.
            let victim = self
                .slots
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
                .expect("len > 1 leaves at least one other entry");
            let slot = self.slots.remove(&victim).expect("victim is resident");
            self.bytes -= slot.entry.bytes;
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry belonging to `tenant`, returning how many were
    /// removed. Called at the ordered merge point when a [`FactWrite`]
    /// lands, so the eviction stream stays deterministic; entries of other
    /// tenants keep their residency and LRU position.
    ///
    /// [`FactWrite`]: crate::FactWrite
    pub(crate) fn invalidate_tenant(&mut self, tenant: u32) -> u64 {
        let victims: Vec<CacheKey> = self
            .slots
            .keys()
            .filter(|k| k.tenant == tenant)
            .cloned()
            .collect();
        for key in &victims {
            let slot = self.slots.remove(key).expect("victim is resident");
            self.bytes -= slot.entry.bytes;
        }
        victims.len() as u64
    }

    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    pub(crate) fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_exec::Executor;
    use qr_hom::canonical_key;
    use qr_rewrite::{rewrite_with, RewriteBudget};
    use qr_syntax::{parse_query, parse_theory};

    fn entry_for(query: &str) -> (CacheKey, Arc<CacheEntry>) {
        let theory = parse_theory("p(X), e(X,Y) -> p(Y).").unwrap();
        let q = parse_query(query).unwrap();
        let r = rewrite_with(
            &theory,
            &q,
            RewriteBudget::default(),
            &Executor::sequential(),
        )
        .unwrap();
        let key = CacheKey {
            tenant: 0,
            key: canonical_key(&q),
        };
        (key, CacheEntry::from_rewriting(r))
    }

    #[test]
    fn isomorphic_queries_share_a_key() {
        let (k1, _) = entry_for("? :- p(A), e(A,B).");
        let (k2, _) = entry_for("? :- e(X,Y), p(X).");
        assert!(k1 == k2, "renamed/permuted queries collapse to one key");
        let (k3, _) = entry_for("? :- p(A), e(B,A).");
        assert!(k1 != k3, "different shape, different key");
    }

    #[test]
    fn lru_evicts_oldest_untouched_entry() {
        let (k1, e1) = entry_for("? :- p(a).");
        let (k2, e2) = entry_for("? :- p(b).");
        let (k3, e3) = entry_for("? :- p(c).");
        let budget = e1.bytes + e2.bytes + e3.bytes - 1;
        let mut cache = RewriteCache::new(budget);
        assert_eq!(cache.insert(k1.clone(), e1), 0);
        assert_eq!(cache.insert(k2.clone(), e2), 0);
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.get(&k1).is_some());
        assert_eq!(cache.insert(k3.clone(), e3), 1);
        assert!(cache.contains(&k1));
        assert!(!cache.contains(&k2), "k2 was least recently used");
        assert!(cache.contains(&k3));
        assert!(cache.bytes() <= budget);
        assert!(cache.peak_bytes() > cache.bytes());
    }

    #[test]
    fn inserted_entry_survives_its_own_insertion() {
        let (k1, e1) = entry_for("? :- p(a).");
        let mut cache = RewriteCache::new(1); // absurdly small budget
        assert_eq!(cache.insert(k1.clone(), e1), 0);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&k1), "sole entry is never self-evicted");
        let (k2, e2) = entry_for("? :- p(b).");
        assert_eq!(cache.insert(k2.clone(), e2), 1, "k1 makes way");
        assert!(cache.contains(&k2));
    }
}
