//! Homomorphism machinery: conjunctive-query evaluation over instances,
//! query containment, query cores, and structure homomorphisms.
//!
//! Everything in the paper reduces to homomorphism search (Observation 2 and
//! Theorem 1 rely on it; the chase needs body matches; containment and cores
//! need query-to-query homomorphisms). This crate implements a backtracking
//! matcher driven by the per-(predicate, position, term) indexes of
//! [`qr_syntax::Instance`].

pub mod containment;
pub mod kernel;
pub mod matcher;
pub mod qcore;
pub mod structure;

pub use containment::{contains, covered_by, equivalent, subsumed_by_any};
pub use kernel::{canonical_key, global_kernel, CanonicalKey, HomKernel, HomStats, QueryEntry};
pub use matcher::{
    all_answers, all_homs, exists_match, exists_match_excluding, find_hom, holds, holds_ucq,
    holds_ucq_with, Assignment, JoinPlan, MatchCounters,
};
pub use qcore::query_core;
pub use structure::{instance_hom, structure_core};
