//! Compares two harness `--json` dumps on their deterministic counters.
//!
//! Usage: `bench_diff <baseline.json> <candidate.json>`
//!
//! Works on `BENCH_chase.json` (schema `qr-bench/chase-v5`),
//! `BENCH_rewrite.json` (schema `qr-bench/rewrite-v3`),
//! `BENCH_serve.json` (schema `qr-bench/serve-v2`) and `BENCH_check.json`
//! (schema `qr-bench/check-v2`) — each dump carries whichever run arrays
//! it has. The chase engine's trigger/candidate/sweep
//! counters are a pure function of (theory, instance, budget), and the
//! rewrite engine's per-window counters a pure function of (theory, query,
//! budget) — they must not drift across commits unless the engine
//! semantics intentionally changed. This tool diffs the per-workload
//! totals, memory counters (`peak_facts` and the storage layer's logical
//! byte accounting — deterministic by construction, see `qr-storage`),
//! per-round chase counters, per-window rewrite counters, the marked
//! process's frontier counters, the homomorphism-kernel counters
//! (schema v2: the cache tier is always present and deterministic; the
//! search/core tier is emitted only by fully sequential workloads and
//! gated whenever both sides carry it), and the serve engine's request
//! counters, per-segment cache outcomes and response-trace hash, and the
//! checker's certificate counts, encoded sizes, kernel-search pin and
//! failure lists, the incremental-maintenance runs' batch modes,
//! replay/rederive/cone counters and candidate totals, and the bulk
//! sharding runs' engine/mode tags, partition shape, output counters and
//! frontier-exchange counters (schema chase-v5; a run array present on
//! only one side is drift, so dropping `--incr` or `--shard` from the
//! pinned invocation cannot pass silently), ignoring
//! everything timing- or machine-dependent (`wall_ms`, `barrier_wall_ms`,
//! every `*_ms` split, latency percentiles, `threads`, per-experiment
//! timings). Exit code 0 means the counters
//! match; 1 means drift (differences listed on stderr); 2 means usage or
//! parse errors.
//!
//! The parser below covers the JSON subset the harness emits (objects,
//! arrays, strings with escapes, numbers, booleans, null) — the workspace
//! is offline, so no serde.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            _ => &[],
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(src: &'a str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let s = &self.bytes[self.pos..];
                    let ch_len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(
                        std::str::from_utf8(&s[..ch_len.min(s.len())])
                            .map_err(|e| e.to_string())?,
                    );
                    self.pos += ch_len;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
}

/// The deterministic counter fields compared at both the totals and the
/// per-round level. Wall times (`wall_ms`, `enum_ms`, `merge_ms`) and the
/// thread count are machine-dependent and deliberately absent.
const COUNTERS: [&str; 6] = [
    "triggers",
    "candidates",
    "dom_sweeps",
    "dom_pruned",
    "facts_added",
    "terms_added",
];

/// The storage layer's deterministic memory counters (schema v3+): logical
/// byte accounting with fixed element sizes, so — like the trigger counters
/// — identical across machines and thread counts, and gated the same way.
const MEMORY_KEYS: [&str; 4] = ["peak_facts", "bytes_facts", "bytes_index", "bytes_tuples"];

fn diff_memory(scope: &str, base: &Value, cand: &Value, report: &mut String) {
    match (base.get("memory"), cand.get("memory")) {
        (None, None) => {}
        (Some(_), None) => {
            let _ = writeln!(report, "  {scope}: memory counters missing from candidate");
        }
        (None, Some(_)) => {
            let _ = writeln!(report, "  {scope}: memory counters missing from baseline");
        }
        (Some(bm), Some(cm)) => {
            for key in MEMORY_KEYS {
                let b = bm.get(key).and_then(Value::as_u64);
                let c = cm.get(key).and_then(Value::as_u64);
                if b != c {
                    let _ = writeln!(report, "  {scope}: memory.{key} {b:?} -> {c:?}");
                }
            }
        }
    }
}

fn diff_keys(scope: &str, keys: &[&str], base: &Value, cand: &Value, report: &mut String) {
    for key in keys {
        let b = base.get(key).and_then(Value::as_u64);
        let c = cand.get(key).and_then(Value::as_u64);
        if b != c {
            let _ = writeln!(report, "  {scope}: {key} {b:?} -> {c:?}");
        }
    }
}

fn diff_counters(scope: &str, base: &Value, cand: &Value, report: &mut String) {
    diff_keys(scope, &COUNTERS, base, cand, report);
}

/// The incremental-maintenance runs' batch-mode tallies (schema chase-v4).
const INCR_MODE_KEYS: [&str; 4] = ["noops", "seeded_inserts", "truncated_retracts", "rechases"];

/// The incremental runs' replay/rederive/cone counters and the
/// deterministic incremental-vs-cold candidate comparison. Every `*_ms`
/// field (`wall_ms`, `batch_ms`, `rechase_ms`) and `threads` are
/// machine-dependent and deliberately absent.
const INCR_COUNTER_KEYS: [&str; 5] = [
    "replayed_facts",
    "rederived_facts",
    "cone_facts",
    "candidates_incr",
    "candidates_cold",
];

/// Diffs one incremental-maintenance run: batch count, final shape, the
/// mode tallies and the counter object.
fn diff_incr_run(name: &str, b: &Value, c: &Value, report: &mut String) {
    diff_keys(
        &format!("\"{name}\""),
        &["batches", "facts_out", "rounds_run"],
        b,
        c,
        report,
    );
    match (b.get("modes"), c.get("modes")) {
        (None, None) => {}
        (Some(_), None) => {
            let _ = writeln!(report, "  \"{name}\": mode tallies missing from candidate");
        }
        (None, Some(_)) => {
            let _ = writeln!(report, "  \"{name}\": mode tallies missing from baseline");
        }
        (Some(bm), Some(cm)) => {
            diff_keys(
                &format!("\"{name}\" modes"),
                &INCR_MODE_KEYS,
                bm,
                cm,
                report,
            );
        }
    }
    match (b.get("counters"), c.get("counters")) {
        (None, None) => {}
        (Some(_), None) => {
            let _ = writeln!(report, "  \"{name}\": incr counters missing from candidate");
        }
        (None, Some(_)) => {
            let _ = writeln!(report, "  \"{name}\": incr counters missing from baseline");
        }
        (Some(bc), Some(cc)) => {
            diff_keys(
                &format!("\"{name}\" counters"),
                &INCR_COUNTER_KEYS,
                bc,
                cc,
                report,
            );
        }
    }
}

/// Per-window (and totals-level) rewrite counters, all deterministic.
/// Schema `rewrite-v3` adds the generation-side dedup and prefilter
/// counters (`dedup_hits`, `unifier_*`, `trie_*`); like the hom search
/// tier, keys absent from both sides compare equal, so a v2 baseline
/// still diffs cleanly on the shared counters.
const REWRITE_COUNTERS: [&str; 12] = [
    "merged",
    "dead_skipped",
    "generated",
    "dedup_hits",
    "subsumption_hits",
    "evictions",
    "oversized",
    "accepted",
    "unifier_probes",
    "unifier_skipped",
    "trie_probes",
    "trie_skipped",
];

/// Window-identity and capacity counters gated on top of the shared ones.
const WINDOW_KEYS: [&str; 3] = ["window", "items", "kept"];

/// Frontier counters of the marked-query process.
const PROCESS_KEYS: [&str; 3] = ["steps", "max_frontier", "dropped"];

/// Homomorphism-kernel counters (schema `rewrite-v2`). The first six form
/// the cache tier — incremented at entry-acquisition and sequential
/// prefilter points, so deterministic across thread counts — and are
/// present in every `hom` object. The last five form the search/core tier,
/// emitted only by fully sequential workloads; keys absent from both sides
/// compare equal and cause no drift, so the gate adapts per run.
const HOM_KEYS: [&str; 11] = [
    "freezes",
    "freeze_cache_hits",
    "plan_compiles",
    "plan_cache_hits",
    "prefilter_rejects",
    "components",
    "searches",
    "search_candidates",
    "core_rounds",
    "core_searches",
    "core_cache_hits",
];

fn diff_hom(name: &str, base: &Value, cand: &Value, report: &mut String) {
    match (base.get("hom"), cand.get("hom")) {
        (None, None) => {}
        (Some(_), None) => {
            let _ = writeln!(report, "  \"{name}\": hom counters missing from candidate");
        }
        (None, Some(_)) => {
            let _ = writeln!(report, "  \"{name}\": hom counters missing from baseline");
        }
        (Some(bh), Some(ch)) => {
            diff_keys(&format!("\"{name}\" hom"), &HOM_KEYS, bh, ch, report);
        }
    }
}

/// Diffs the `rewrite_runs` of two dumps into `report`. Run-level shape
/// fields (`outcome`, `disjuncts`, `rs`, ...), totals, per-window counters,
/// hom-kernel counters and marked-process counters are gated; every `*_ms`
/// field, `threads` and `barrier_wall_ms` are machine-dependent and
/// ignored.
fn diff_rewrite_run(name: &str, b: &Value, c: &Value, report: &mut String) {
    for key in ["engine", "outcome"] {
        let bv = b.get(key).and_then(Value::as_str);
        let cv = c.get(key).and_then(Value::as_str);
        if bv != cv {
            let _ = writeln!(report, "  \"{name}\": {key} {bv:?} -> {cv:?}");
        }
    }
    diff_keys(
        &format!("\"{name}\""),
        &[
            "disjuncts",
            "rs",
            "generated",
            "oversized_discarded",
            "depth",
        ],
        b,
        c,
        report,
    );
    if let (Some(bt), Some(ct)) = (b.get("totals"), c.get("totals")) {
        diff_keys(
            &format!("\"{name}\" totals"),
            &REWRITE_COUNTERS,
            bt,
            ct,
            report,
        );
    }
    let bwins = b.get("windows").map(Value::as_arr).unwrap_or_default();
    let cwins = c.get("windows").map(Value::as_arr).unwrap_or_default();
    if bwins.len() != cwins.len() {
        let _ = writeln!(
            report,
            "  \"{name}\": window count {} -> {}",
            bwins.len(),
            cwins.len()
        );
    }
    for (bw, cw) in bwins.iter().zip(cwins) {
        let n = bw.get("window").and_then(Value::as_u64).unwrap_or(0);
        let scope = format!("\"{name}\" window {n}");
        diff_keys(&scope, &WINDOW_KEYS, bw, cw, report);
        diff_keys(&scope, &REWRITE_COUNTERS, bw, cw, report);
    }
    diff_hom(name, b, c, report);
    match (b.get("process"), c.get("process")) {
        (None, None) => {}
        (Some(_), None) => {
            let _ = writeln!(
                report,
                "  \"{name}\": process counters missing from candidate"
            );
        }
        (None, Some(_)) => {
            let _ = writeln!(
                report,
                "  \"{name}\": process counters missing from baseline"
            );
        }
        (Some(bp), Some(cp)) => {
            diff_keys(
                &format!("\"{name}\" process"),
                &PROCESS_KEYS,
                bp,
                cp,
                report,
            );
            let bh = bp.get("has_true");
            let ch = cp.get("has_true");
            if bh != ch {
                let _ = writeln!(report, "  \"{name}\": process.has_true {bh:?} -> {ch:?}");
            }
        }
    }
}

/// The serve engine's deterministic counters (schema `serve-v2`, which
/// adds the write-path counters): every field of `ServeCounters`. All are
/// pure functions of (tenants, request stream, engine config) — updated
/// only at the engine's ordered merge point — so they gate at any
/// worker-pool width. Keys absent from both sides compare equal, so a
/// serve-v1 baseline still diffs cleanly on the shared counters. `wall_ms`
/// and the `p50_ms`/`p95_ms`/`p99_ms` latency percentiles are
/// machine-dependent and deliberately absent.
const SERVE_COUNTERS: [&str; 19] = [
    "requests",
    "answered",
    "rejected",
    "hits",
    "misses",
    "evictions",
    "plan_compiles",
    "plan_reuses",
    "incomplete",
    "truncated",
    "answers_emitted",
    "match_candidates",
    "rewrite_generated",
    "cache_bytes",
    "peak_cache_bytes",
    "writes",
    "facts_inserted",
    "facts_retracted",
    "cache_invalidations",
];

/// Per-segment cache outcomes of a serve run.
const SERVE_SEGMENT_KEYS: [&str; 3] = ["requests", "hits", "misses"];

/// Diffs one serve run: the `trace_fnv` determinism pin (a hex string —
/// any response-stream drift lands here even if every counter happens to
/// agree), the counters object, and segments matched by name.
fn diff_serve_run(name: &str, b: &Value, c: &Value, report: &mut String) {
    let bf = b.get("trace_fnv").and_then(Value::as_str);
    let cf = c.get("trace_fnv").and_then(Value::as_str);
    if bf != cf {
        let _ = writeln!(report, "  \"{name}\": trace_fnv {bf:?} -> {cf:?}");
    }
    match (b.get("counters"), c.get("counters")) {
        (None, None) => {}
        (Some(_), None) => {
            let _ = writeln!(report, "  \"{name}\": counters missing from candidate");
        }
        (None, Some(_)) => {
            let _ = writeln!(report, "  \"{name}\": counters missing from baseline");
        }
        (Some(bc), Some(cc)) => {
            diff_keys(&format!("\"{name}\""), &SERVE_COUNTERS, bc, cc, report);
        }
    }
    let seg_name = |s: &Value| {
        s.get("name")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>")
            .to_owned()
    };
    let bsegs = b.get("segments").map(Value::as_arr).unwrap_or_default();
    let csegs = c.get("segments").map(Value::as_arr).unwrap_or_default();
    for bs in bsegs {
        let sname = seg_name(bs);
        let Some(cs) = csegs.iter().find(|s| seg_name(s) == sname) else {
            let _ = writeln!(
                report,
                "  \"{name}\": segment \"{sname}\" missing from candidate"
            );
            continue;
        };
        diff_keys(
            &format!("\"{name}\" segment \"{sname}\""),
            &SERVE_SEGMENT_KEYS,
            bs,
            cs,
            report,
        );
    }
    for cs in csegs {
        let sname = seg_name(cs);
        if !bsegs.iter().any(|s| seg_name(s) == sname) {
            let _ = writeln!(
                report,
                "  \"{name}\": segment \"{sname}\" missing from baseline"
            );
        }
    }
}

/// The checker's deterministic counters (schema `check-v2`): certificate
/// counts and encoded bundle sizes are pure functions of the workload, and
/// `kernel_searches` is the checker's no-search contract pinned at zero.
/// `wall_ms` and `threads` (new in v2) are machine-dependent and exempt.
const CHECK_KEYS: [&str; 3] = ["certs", "cert_bytes", "kernel_searches"];

/// Diffs one check run: the `kind` tag, the counter keys, and the
/// `failures` array compared element-wise (a baseline certifies cleanly,
/// so any appearing failure string is drift by construction).
fn diff_check_run(name: &str, b: &Value, c: &Value, report: &mut String) {
    let bk = b.get("kind").and_then(Value::as_str);
    let ck = c.get("kind").and_then(Value::as_str);
    if bk != ck {
        let _ = writeln!(report, "  \"{name}\": kind {bk:?} -> {ck:?}");
    }
    diff_keys(&format!("\"{name}\""), &CHECK_KEYS, b, c, report);
    let bf = b.get("failures").map(Value::as_arr).unwrap_or_default();
    let cf = c.get("failures").map(Value::as_arr).unwrap_or_default();
    if bf.len() != cf.len() {
        let _ = writeln!(
            report,
            "  \"{name}\": failure count {} -> {}",
            bf.len(),
            cf.len()
        );
    }
    for (i, (be, ce)) in bf.iter().zip(cf).enumerate() {
        let bs = be.as_str();
        let cs = ce.as_str();
        if bs != cs {
            let _ = writeln!(report, "  \"{name}\": failure {i} {bs:?} -> {cs:?}");
        }
    }
}

/// The bulk sharding runs' partition and merge shape (schema chase-v5):
/// components, packing and the final merged chase are deterministic
/// functions of the instance (sharding is byte-identical to the
/// monolithic chase), so all of it is gated. Every `*_ms` field
/// (`wall_ms`, `partition_ms`, `shard_ms`, `merge_ms`) and `threads` are
/// machine-dependent and deliberately absent.
const SHARD_KEYS: [&str; 6] = [
    "components",
    "shards",
    "facts_out",
    "rounds_run",
    "triggers",
    "candidates",
];

/// The frontier-exchange counters nested under `exchange`:
/// `kernel_searches` is the replay contract pinned at zero,
/// `certs_rejected` pinned at zero on a healthy run.
const SHARD_EXCHANGE_KEYS: [&str; 5] = [
    "frontier_rounds",
    "certs_exchanged",
    "certs_checked",
    "certs_rejected",
    "kernel_searches",
];

/// Diffs one bulk sharding run: the engine/mode tags, the partition and
/// output counters, and the nested exchange object.
fn diff_shard_run(name: &str, b: &Value, c: &Value, report: &mut String) {
    for key in ["engine", "mode"] {
        let bv = b.get(key).and_then(Value::as_str);
        let cv = c.get(key).and_then(Value::as_str);
        if bv != cv {
            let _ = writeln!(report, "  \"{name}\": {key} {bv:?} -> {cv:?}");
        }
    }
    diff_keys(&format!("\"{name}\""), &SHARD_KEYS, b, c, report);
    match (b.get("exchange"), c.get("exchange")) {
        (None, None) => {}
        (Some(_), None) => {
            let _ = writeln!(
                report,
                "  \"{name}\": exchange counters missing from candidate"
            );
        }
        (None, Some(_)) => {
            let _ = writeln!(
                report,
                "  \"{name}\": exchange counters missing from baseline"
            );
        }
        (Some(be), Some(ce)) => {
            diff_keys(
                &format!("\"{name}\" exchange"),
                &SHARD_EXCHANGE_KEYS,
                be,
                ce,
                report,
            );
        }
    }
}

/// Diffs two parsed dumps; returns a human-readable drift report (empty
/// when the deterministic counters agree).
fn diff(base: &Value, cand: &Value) -> String {
    let mut report = String::new();
    let base_runs = base
        .get("chase_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    let cand_runs = cand
        .get("chase_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    let workload = |r: &Value| {
        r.get("workload")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>")
            .to_owned()
    };
    for b in base_runs {
        let name = workload(b);
        let Some(c) = cand_runs.iter().find(|r| workload(r) == name) else {
            let _ = writeln!(report, "  workload \"{name}\": missing from candidate");
            continue;
        };
        for key in ["facts_out", "rounds_run"] {
            let bv = b.get(key).and_then(Value::as_u64);
            let cv = c.get(key).and_then(Value::as_u64);
            if bv != cv {
                let _ = writeln!(report, "  \"{name}\": {key} {bv:?} -> {cv:?}");
            }
        }
        diff_memory(&format!("\"{name}\""), b, c, &mut report);
        if let (Some(bt), Some(ct)) = (b.get("totals"), c.get("totals")) {
            diff_counters(&format!("\"{name}\" totals"), bt, ct, &mut report);
        }
        let brounds = b.get("rounds").map(Value::as_arr).unwrap_or_default();
        let crounds = c.get("rounds").map(Value::as_arr).unwrap_or_default();
        if brounds.len() != crounds.len() {
            let _ = writeln!(
                report,
                "  \"{name}\": round count {} -> {}",
                brounds.len(),
                crounds.len()
            );
        }
        for (br, cr) in brounds.iter().zip(crounds) {
            let n = br.get("round").and_then(Value::as_u64).unwrap_or(0);
            diff_counters(&format!("\"{name}\" round {n}"), br, cr, &mut report);
        }
    }
    for c in cand_runs {
        let name = workload(c);
        if !base_runs.iter().any(|b| workload(b) == name) {
            let _ = writeln!(report, "  workload \"{name}\": missing from baseline");
        }
    }
    let base_incr = base.get("incr_runs").map(Value::as_arr).unwrap_or_default();
    let cand_incr = cand.get("incr_runs").map(Value::as_arr).unwrap_or_default();
    for b in base_incr {
        let name = workload(b);
        let Some(c) = cand_incr.iter().find(|r| workload(r) == name) else {
            let _ = writeln!(report, "  incr workload \"{name}\": missing from candidate");
            continue;
        };
        diff_incr_run(&name, b, c, &mut report);
    }
    for c in cand_incr {
        let name = workload(c);
        if !base_incr.iter().any(|b| workload(b) == name) {
            let _ = writeln!(report, "  incr workload \"{name}\": missing from baseline");
        }
    }
    let base_sh = base
        .get("shard_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    let cand_sh = cand
        .get("shard_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    for b in base_sh {
        let name = workload(b);
        let Some(c) = cand_sh.iter().find(|r| workload(r) == name) else {
            let _ = writeln!(
                report,
                "  shard workload \"{name}\": missing from candidate"
            );
            continue;
        };
        diff_shard_run(&name, b, c, &mut report);
    }
    for c in cand_sh {
        let name = workload(c);
        if !base_sh.iter().any(|b| workload(b) == name) {
            let _ = writeln!(report, "  shard workload \"{name}\": missing from baseline");
        }
    }
    let base_rw = base
        .get("rewrite_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    let cand_rw = cand
        .get("rewrite_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    for b in base_rw {
        let name = workload(b);
        let Some(c) = cand_rw.iter().find(|r| workload(r) == name) else {
            let _ = writeln!(
                report,
                "  rewrite workload \"{name}\": missing from candidate"
            );
            continue;
        };
        diff_rewrite_run(&name, b, c, &mut report);
    }
    for c in cand_rw {
        let name = workload(c);
        if !base_rw.iter().any(|b| workload(b) == name) {
            let _ = writeln!(
                report,
                "  rewrite workload \"{name}\": missing from baseline"
            );
        }
    }
    let base_sv = base
        .get("serve_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    let cand_sv = cand
        .get("serve_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    for b in base_sv {
        let name = workload(b);
        let Some(c) = cand_sv.iter().find(|r| workload(r) == name) else {
            let _ = writeln!(
                report,
                "  serve workload \"{name}\": missing from candidate"
            );
            continue;
        };
        diff_serve_run(&name, b, c, &mut report);
    }
    for c in cand_sv {
        let name = workload(c);
        if !base_sv.iter().any(|b| workload(b) == name) {
            let _ = writeln!(report, "  serve workload \"{name}\": missing from baseline");
        }
    }
    let base_ck = base
        .get("check_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    let cand_ck = cand
        .get("check_runs")
        .map(Value::as_arr)
        .unwrap_or_default();
    for b in base_ck {
        let name = workload(b);
        let Some(c) = cand_ck.iter().find(|r| workload(r) == name) else {
            let _ = writeln!(
                report,
                "  check workload \"{name}\": missing from candidate"
            );
            continue;
        };
        diff_check_run(&name, b, c, &mut report);
    }
    for c in cand_ck {
        let name = workload(c);
        if !base_ck.iter().any(|b| workload(b) == name) {
            let _ = writeln!(report, "  check workload \"{name}\": missing from baseline");
        }
    }
    report
}

fn load(path: &str) -> Value {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Parser::parse(&src).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [base_path, cand_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <candidate.json>");
        std::process::exit(2);
    };
    let base = load(base_path);
    let cand = load(cand_path);
    let report = diff(&base, &cand);
    if report.is_empty() {
        println!("bench_diff: deterministic counters match ({base_path} vs {cand_path})");
    } else {
        eprintln!("bench_diff: counter drift between {base_path} and {cand_path}:");
        eprint!("{report}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(workload: &str, triggers: u64, rounds: &[(u64, u64)]) -> String {
        let mut rows = String::new();
        for (i, (round, t)) in rounds.iter().enumerate() {
            let _ = write!(
                rows,
                "{{\"round\": {round}, \"triggers\": {t}, \"candidates\": 1, \"dom_sweeps\": 0, \"dom_pruned\": 0, \"facts_added\": 1, \"terms_added\": 0, \"enum_ms\": 0.1, \"merge_ms\": 0.1, \"wall_ms\": 0.3}}{}",
                if i + 1 < rounds.len() { "," } else { "" }
            );
        }
        format!(
            "{{\"workload\": \"{workload}\", \"engine\": \"semi-naive\", \"threads\": 4, \"wall_ms\": 9.9, \"facts_out\": 10, \"rounds_run\": {}, \"memory\": {{\"peak_facts\": 10, \"bytes_facts\": 80, \"bytes_index\": 200, \"bytes_tuples\": 96}}, \"totals\": {{\"triggers\": {triggers}, \"candidates\": 2, \"dom_sweeps\": 0, \"dom_pruned\": 0, \"facts_added\": 2, \"terms_added\": 0, \"enum_ms\": 1.0, \"merge_ms\": 0.5}}, \"rounds\": [{rows}]}}",
            rounds.len()
        )
    }

    fn dump(runs: &[String]) -> Value {
        let src = format!(
            "{{\"schema\": \"qr-bench/chase-v3\", \"experiments\": [], \"chase_runs\": [{}]}}",
            runs.join(",")
        );
        Parser::parse(&src).unwrap()
    }

    #[test]
    fn identical_dumps_have_no_drift() {
        let a = dump(&[run("TC", 7, &[(1, 4), (2, 3)])]);
        assert!(diff(&a, &a).is_empty());
    }

    #[test]
    fn wall_times_and_threads_are_ignored() {
        let a = dump(&[run("TC", 7, &[(1, 4)])]);
        let b_src = run("TC", 7, &[(1, 4)])
            .replace("\"threads\": 4", "\"threads\": 1")
            .replace("\"wall_ms\": 9.9", "\"wall_ms\": 123.4")
            .replace("\"enum_ms\": 1.0", "\"enum_ms\": 55.0");
        let b = dump(&[b_src]);
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn counter_drift_is_reported() {
        let a = dump(&[run("TC", 7, &[(1, 4), (2, 3)])]);
        let b = dump(&[run("TC", 8, &[(1, 4), (2, 4)])]);
        let report = diff(&a, &b);
        assert!(
            report.contains("totals: triggers Some(7) -> Some(8)"),
            "{report}"
        );
        assert!(
            report.contains("round 2: triggers Some(3) -> Some(4)"),
            "{report}"
        );
    }

    #[test]
    fn memory_drift_is_reported() {
        let a = dump(&[run("TC", 7, &[(1, 4)])]);
        let b_src = run("TC", 7, &[(1, 4)]).replace("\"bytes_index\": 200", "\"bytes_index\": 240");
        let b = dump(&[b_src]);
        let report = diff(&a, &b);
        assert!(
            report.contains("\"TC\": memory.bytes_index Some(200) -> Some(240)"),
            "{report}"
        );
    }

    #[test]
    fn missing_memory_object_is_drift() {
        // A v2 baseline (no "memory") against a v3 candidate must flag the
        // one-sided memory block instead of silently skipping it.
        let a_src = run("TC", 7, &[(1, 4)]).replace(
            "\"memory\": {\"peak_facts\": 10, \"bytes_facts\": 80, \"bytes_index\": 200, \"bytes_tuples\": 96}, ",
            "",
        );
        let a = dump(&[a_src]);
        let b = dump(&[run("TC", 7, &[(1, 4)])]);
        let report = diff(&a, &b);
        assert!(
            report.contains("\"TC\": memory counters missing from baseline"),
            "{report}"
        );
    }

    #[test]
    fn missing_workloads_are_reported_both_ways() {
        let a = dump(&[run("TC", 7, &[(1, 4)])]);
        let b = dump(&[run("T_a", 7, &[(1, 4)])]);
        let report = diff(&a, &b);
        assert!(report.contains("\"TC\": missing from candidate"));
        assert!(report.contains("\"T_a\": missing from baseline"));
    }

    fn incr_run(workload: &str, seeded: u64, rederived: u64) -> String {
        format!(
            "{{\"workload\": \"{workload}\", \"threads\": 1, \"batches\": 9, \"wall_ms\": 4.2, \"batch_ms\": 0.5, \"rechase_ms\": 1.1, \"facts_out\": 50, \"rounds_run\": 3, \"modes\": {{\"noops\": 0, \"seeded_inserts\": {seeded}, \"truncated_retracts\": 0, \"rechases\": 1}}, \"counters\": {{\"replayed_facts\": 8, \"rederived_facts\": {rederived}, \"cone_facts\": 6, \"candidates_incr\": 120, \"candidates_cold\": 400}}}}"
        )
    }

    fn incr_dump(runs: &[String]) -> Value {
        let src = format!(
            "{{\"schema\": \"qr-bench/chase-v4\", \"experiments\": [], \"chase_runs\": [], \"incr_runs\": [{}]}}",
            runs.join(",")
        );
        Parser::parse(&src).unwrap()
    }

    #[test]
    fn incr_wall_times_and_threads_are_ignored() {
        let a = incr_dump(&[incr_run("TC incr", 8, 40)]);
        let b_src = incr_run("TC incr", 8, 40)
            .replace("\"threads\": 1", "\"threads\": 4")
            .replace("\"wall_ms\": 4.2", "\"wall_ms\": 99.9")
            .replace("\"batch_ms\": 0.5", "\"batch_ms\": 11.0")
            .replace("\"rechase_ms\": 1.1", "\"rechase_ms\": 77.0");
        let b = incr_dump(&[b_src]);
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn incr_mode_and_counter_drift_is_reported() {
        let a = incr_dump(&[incr_run("TC incr", 8, 40)]);
        let b_src = incr_run("TC incr", 7, 44)
            .replace("\"rechases\": 1", "\"rechases\": 2")
            .replace("\"candidates_incr\": 120", "\"candidates_incr\": 150");
        let report = diff(&a, &incr_dump(&[b_src]));
        assert!(
            report.contains("\"TC incr\" modes: seeded_inserts Some(8) -> Some(7)"),
            "{report}"
        );
        assert!(
            report.contains("\"TC incr\" modes: rechases Some(1) -> Some(2)"),
            "{report}"
        );
        assert!(
            report.contains("\"TC incr\" counters: rederived_facts Some(40) -> Some(44)"),
            "{report}"
        );
        assert!(
            report.contains("\"TC incr\" counters: candidates_incr Some(120) -> Some(150)"),
            "{report}"
        );
    }

    #[test]
    fn incr_shape_drift_is_reported() {
        let a = incr_dump(&[incr_run("TC incr", 8, 40)]);
        let b_src = incr_run("TC incr", 8, 40)
            .replace("\"facts_out\": 50", "\"facts_out\": 51")
            .replace("\"batches\": 9", "\"batches\": 10");
        let report = diff(&a, &incr_dump(&[b_src]));
        assert!(
            report.contains("\"TC incr\": batches Some(9) -> Some(10)"),
            "{report}"
        );
        assert!(
            report.contains("\"TC incr\": facts_out Some(50) -> Some(51)"),
            "{report}"
        );
    }

    #[test]
    fn missing_incr_workloads_are_reported_both_ways() {
        // A chase-v3 baseline (no incr_runs at all) against a chase-v4
        // candidate with runs must flag every run as one-sided — dropping
        // `--incr` from the pinned invocation cannot pass silently.
        let a = dump(&[run("TC", 7, &[(1, 4)])]);
        let b = Parser::parse(&format!(
            "{{\"schema\": \"qr-bench/chase-v4\", \"experiments\": [], \"chase_runs\": [{}], \"incr_runs\": [{}]}}",
            run("TC", 7, &[(1, 4)]),
            incr_run("TC incr", 8, 40)
        ))
        .unwrap();
        let report = diff(&a, &b);
        assert!(
            report.contains("incr workload \"TC incr\": missing from baseline"),
            "{report}"
        );
        let report_rev = diff(&b, &a);
        assert!(
            report_rev.contains("incr workload \"TC incr\": missing from candidate"),
            "{report_rev}"
        );
    }

    fn shard_run(workload: &str, engine: &str, mode: &str, shards: u64, checked: u64) -> String {
        format!(
            "{{\"workload\": \"{workload}\", \"engine\": \"{engine}\", \"threads\": 4, \"mode\": \"{mode}\", \"wall_ms\": 300.5, \"partition_ms\": 40.0, \"shard_ms\": 200.0, \"merge_ms\": 60.0, \"components\": 4000, \"shards\": {shards}, \"facts_out\": 946000, \"rounds_run\": 6, \"triggers\": 6000000, \"candidates\": 9000000, \"exchange\": {{\"frontier_rounds\": 1, \"certs_exchanged\": {checked}, \"certs_checked\": {checked}, \"certs_rejected\": 0, \"kernel_searches\": 0}}}}"
        )
    }

    fn shard_dump(runs: &[String]) -> Value {
        let src = format!(
            "{{\"schema\": \"qr-bench/chase-v5\", \"experiments\": [], \"chase_runs\": [], \"incr_runs\": [], \"shard_runs\": [{}]}}",
            runs.join(",")
        );
        Parser::parse(&src).unwrap()
    }

    #[test]
    fn shard_wall_times_and_threads_are_ignored() {
        let a = shard_dump(&[shard_run("bulk-tc/sharded", "sharded", "gaifman", 16, 0)]);
        let b_src = shard_run("bulk-tc/sharded", "sharded", "gaifman", 16, 0)
            .replace("\"threads\": 4", "\"threads\": 8")
            .replace("\"wall_ms\": 300.5", "\"wall_ms\": 77.7")
            .replace("\"partition_ms\": 40.0", "\"partition_ms\": 1.0")
            .replace("\"shard_ms\": 200.0", "\"shard_ms\": 2.0")
            .replace("\"merge_ms\": 60.0", "\"merge_ms\": 3.0");
        assert!(diff(&a, &shard_dump(&[b_src])).is_empty());
    }

    #[test]
    fn shard_mode_and_counter_drift_is_reported() {
        let a = shard_dump(&[shard_run("bulk-tc/sharded", "sharded", "gaifman", 16, 0)]);
        let b_src = shard_run("bulk-tc/sharded", "sharded", "pred-group", 12, 0)
            .replace("\"triggers\": 6000000", "\"triggers\": 6000001")
            .replace("\"facts_out\": 946000", "\"facts_out\": 946001");
        let report = diff(&a, &shard_dump(&[b_src]));
        assert!(
            report.contains("\"bulk-tc/sharded\": mode Some(\"gaifman\") -> Some(\"pred-group\")"),
            "{report}"
        );
        assert!(
            report.contains("\"bulk-tc/sharded\": shards Some(16) -> Some(12)"),
            "{report}"
        );
        assert!(
            report.contains("\"bulk-tc/sharded\": triggers Some(6000000) -> Some(6000001)"),
            "{report}"
        );
        assert!(
            report.contains("\"bulk-tc/sharded\": facts_out Some(946000) -> Some(946001)"),
            "{report}"
        );
    }

    #[test]
    fn shard_exchange_counters_are_gated() {
        let a = shard_dump(&[shard_run(
            "bulk-bridge/sharded",
            "sharded",
            "exchange",
            4,
            120,
        )]);
        let b_src = shard_run("bulk-bridge/sharded", "sharded", "exchange", 4, 120)
            .replace("\"certs_checked\": 120", "\"certs_checked\": 90")
            .replace("\"kernel_searches\": 0", "\"kernel_searches\": 3");
        let report = diff(&a, &shard_dump(&[b_src]));
        assert!(
            report
                .contains("\"bulk-bridge/sharded\" exchange: certs_checked Some(120) -> Some(90)"),
            "{report}"
        );
        assert!(
            report.contains("\"bulk-bridge/sharded\" exchange: kernel_searches Some(0) -> Some(3)"),
            "{report}"
        );
    }

    #[test]
    fn missing_shard_workloads_are_reported_both_ways() {
        // A chase-v4 baseline (no shard_runs) against a chase-v5 candidate
        // with runs must flag every run as one-sided — dropping `--shard`
        // from the pinned invocation cannot pass silently.
        let a = dump(&[run("TC", 7, &[(1, 4)])]);
        let b = Parser::parse(&format!(
            "{{\"schema\": \"qr-bench/chase-v5\", \"experiments\": [], \"chase_runs\": [{}], \"incr_runs\": [], \"shard_runs\": [{}]}}",
            run("TC", 7, &[(1, 4)]),
            shard_run("bulk-tc/sharded", "sharded", "gaifman", 16, 0)
        ))
        .unwrap();
        let report = diff(&a, &b);
        assert!(
            report.contains("shard workload \"bulk-tc/sharded\": missing from baseline"),
            "{report}"
        );
        let report_rev = diff(&b, &a);
        assert!(
            report_rev.contains("shard workload \"bulk-tc/sharded\": missing from candidate"),
            "{report_rev}"
        );
    }

    #[test]
    fn serve_write_counters_are_gated() {
        let a = serve_dump(&[serve_run("mixed", 120, "aa")]);
        let b_src = serve_run("mixed", 120, "aa")
            .replace("\"writes\": 6", "\"writes\": 7")
            .replace("\"cache_invalidations\": 4", "\"cache_invalidations\": 9");
        let report = diff(&a, &serve_dump(&[b_src]));
        assert!(
            report.contains("\"mixed\": writes Some(6) -> Some(7)"),
            "{report}"
        );
        assert!(
            report.contains("\"mixed\": cache_invalidations Some(4) -> Some(9)"),
            "{report}"
        );
    }

    fn rewrite_run(workload: &str, generated: u64, accepted: u64) -> String {
        format!(
            "{{\"workload\": \"{workload}\", \"engine\": \"saturation\", \"threads\": 4, \"wall_ms\": 5.5, \"barrier_wall_ms\": 8.8, \"outcome\": \"Complete\", \"disjuncts\": 3, \"rs\": 4, \"generated\": {generated}, \"oversized_discarded\": 0, \"depth\": 2, \"totals\": {{\"merged\": 4, \"dead_skipped\": 0, \"generated\": {generated}, \"dedup_hits\": 3, \"subsumption_hits\": 2, \"evictions\": 1, \"oversized\": 0, \"accepted\": {accepted}, \"unifier_probes\": 30, \"unifier_skipped\": 12, \"trie_probes\": 8, \"trie_skipped\": 5, \"gen_ms\": 4.0, \"merge_ms\": 1.0, \"wait_ms\": 2.0, \"overlap_ms\": 2.0}}, \"windows\": [{{\"window\": 0, \"items\": 1, \"merged\": 1, \"dead_skipped\": 0, \"generated\": {generated}, \"dedup_hits\": 3, \"subsumption_hits\": 2, \"evictions\": 1, \"oversized\": 0, \"accepted\": {accepted}, \"kept\": 3, \"unifier_probes\": 30, \"unifier_skipped\": 12, \"trie_probes\": 8, \"trie_skipped\": 5, \"gen_ms\": 4.0, \"merge_ms\": 1.0, \"wait_ms\": 2.0, \"overlap_ms\": 2.0}}], \"hom\": {{\"freezes\": 12, \"freeze_cache_hits\": 5, \"plan_compiles\": 6, \"plan_cache_hits\": 9, \"prefilter_rejects\": 3, \"components\": 14}}}}"
        )
    }

    fn rewrite_dump(runs: &[String]) -> Value {
        let src = format!(
            "{{\"schema\": \"qr-bench/rewrite-v3\", \"rewrite_runs\": [{}]}}",
            runs.join(",")
        );
        Parser::parse(&src).unwrap()
    }

    #[test]
    fn rewrite_wall_splits_are_ignored() {
        let a = rewrite_dump(&[rewrite_run("t_p", 9, 3)]);
        let b_src = rewrite_run("t_p", 9, 3)
            .replace("\"threads\": 4", "\"threads\": 1")
            .replace("\"barrier_wall_ms\": 8.8", "\"barrier_wall_ms\": 99.0")
            .replace("\"gen_ms\": 4.0", "\"gen_ms\": 44.0")
            .replace("\"overlap_ms\": 2.0", "\"overlap_ms\": 0.0");
        let b = rewrite_dump(&[b_src]);
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn rewrite_counter_drift_is_reported() {
        let a = rewrite_dump(&[rewrite_run("t_p", 9, 3)]);
        let b = rewrite_dump(&[rewrite_run("t_p", 11, 4)]);
        let report = diff(&a, &b);
        assert!(
            report.contains("\"t_p\": generated Some(9) -> Some(11)"),
            "{report}"
        );
        assert!(
            report.contains("\"t_p\" totals: accepted Some(3) -> Some(4)"),
            "{report}"
        );
        assert!(
            report.contains("\"t_p\" window 0: generated Some(9) -> Some(11)"),
            "{report}"
        );
    }

    #[test]
    fn v3_dedup_and_prefilter_counters_are_gated() {
        let a = rewrite_dump(&[rewrite_run("t_p", 9, 3)]);
        let b_src = rewrite_run("t_p", 9, 3)
            .replace("\"dedup_hits\": 3", "\"dedup_hits\": 0")
            .replace("\"unifier_skipped\": 12", "\"unifier_skipped\": 7")
            .replace("\"trie_probes\": 8", "\"trie_probes\": 9");
        let report = diff(&a, &rewrite_dump(&[b_src]));
        assert!(
            report.contains("\"t_p\" totals: dedup_hits Some(3) -> Some(0)"),
            "{report}"
        );
        assert!(
            report.contains("\"t_p\" window 0: unifier_skipped Some(12) -> Some(7)"),
            "{report}"
        );
        assert!(
            report.contains("\"t_p\" window 0: trie_probes Some(8) -> Some(9)"),
            "{report}"
        );
        // A v2 baseline (no v3 counters on either side) still diffs clean.
        let strip = |s: String| {
            s.replace("\"dedup_hits\": 3, ", "")
                .replace("\"unifier_probes\": 30, \"unifier_skipped\": 12, ", "")
                .replace("\"trie_probes\": 8, \"trie_skipped\": 5, ", "")
        };
        let v2 = rewrite_dump(&[strip(rewrite_run("t_p", 9, 3))]);
        assert!(diff(&v2, &v2).is_empty());
    }

    #[test]
    fn rewrite_outcome_and_process_drift_are_reported() {
        let a_src = rewrite_run("t_p", 9, 3);
        let b_src = a_src.replace("\"outcome\": \"Complete\"", "\"outcome\": \"Budget\"");
        let report = diff(&rewrite_dump(&[a_src]), &rewrite_dump(&[b_src]));
        assert!(
            report.contains("\"t_p\": outcome Some(\"Complete\") -> Some(\"Budget\")"),
            "{report}"
        );
        let marked = |steps: u64, has_true: bool| {
            format!(
                "{{\"workload\": \"T_d marked phi_R^1\", \"engine\": \"marked\", \"threads\": 1, \"wall_ms\": 1.0, \"outcome\": \"Complete\", \"disjuncts\": 2, \"rs\": 3, \"generated\": 0, \"oversized_discarded\": 0, \"depth\": 0, \"process\": {{\"steps\": {steps}, \"max_frontier\": 3, \"dropped\": 1, \"has_true\": {has_true}}}}}"
            )
        };
        let report = diff(
            &rewrite_dump(&[marked(7, false)]),
            &rewrite_dump(&[marked(9, true)]),
        );
        assert!(
            report.contains("process: steps Some(7) -> Some(9)"),
            "{report}"
        );
        assert!(report.contains("process.has_true"), "{report}");
    }

    #[test]
    fn missing_rewrite_workloads_are_reported() {
        let a = rewrite_dump(&[rewrite_run("t_p", 9, 3)]);
        let b = rewrite_dump(&[rewrite_run("t_a", 9, 3)]);
        let report = diff(&a, &b);
        assert!(report.contains("rewrite workload \"t_p\": missing from candidate"));
        assert!(report.contains("rewrite workload \"t_a\": missing from baseline"));
    }

    #[test]
    fn hom_counter_drift_is_reported() {
        let a = rewrite_dump(&[rewrite_run("t_p", 9, 3)]);
        let b_src = rewrite_run("t_p", 9, 3)
            .replace("\"freeze_cache_hits\": 5", "\"freeze_cache_hits\": 4")
            .replace("\"prefilter_rejects\": 3", "\"prefilter_rejects\": 0");
        let report = diff(&a, &rewrite_dump(&[b_src]));
        assert!(
            report.contains("\"t_p\" hom: freeze_cache_hits Some(5) -> Some(4)"),
            "{report}"
        );
        assert!(
            report.contains("\"t_p\" hom: prefilter_rejects Some(3) -> Some(0)"),
            "{report}"
        );
    }

    #[test]
    fn missing_hom_object_is_drift() {
        // A v1 baseline (no "hom") against a v2 candidate must flag the
        // one-sided hom block instead of silently skipping it.
        let a_src = rewrite_run("t_p", 9, 3).replace(
            ", \"hom\": {\"freezes\": 12, \"freeze_cache_hits\": 5, \"plan_compiles\": 6, \"plan_cache_hits\": 9, \"prefilter_rejects\": 3, \"components\": 14}",
            "",
        );
        let a = rewrite_dump(&[a_src]);
        let b = rewrite_dump(&[rewrite_run("t_p", 9, 3)]);
        let report = diff(&a, &b);
        assert!(
            report.contains("\"t_p\": hom counters missing from baseline"),
            "{report}"
        );
    }

    #[test]
    fn hom_search_tier_gated_only_when_present() {
        // The cache-tier-only fixture (parallel workloads omit the
        // search/core tier) shows no drift against itself...
        let a = rewrite_dump(&[rewrite_run("t_p", 9, 3)]);
        assert!(diff(&a, &a).is_empty());
        // ...but a sequential workload carrying the full tier gates it.
        let full = |searches: u64| {
            rewrite_run("t_p", 9, 3).replace(
                "\"components\": 14}",
                &format!(
                    "\"components\": 14, \"searches\": {searches}, \"search_candidates\": 40, \"core_rounds\": 2, \"core_searches\": 6, \"core_cache_hits\": 1}}"
                ),
            )
        };
        assert!(diff(&rewrite_dump(&[full(20)]), &rewrite_dump(&[full(20)])).is_empty());
        let report = diff(&rewrite_dump(&[full(20)]), &rewrite_dump(&[full(21)]));
        assert!(
            report.contains("\"t_p\" hom: searches Some(20) -> Some(21)"),
            "{report}"
        );
    }

    fn serve_run(workload: &str, hits: u64, fnv: &str) -> String {
        format!(
            "{{\"workload\": \"{workload}\", \"threads\": 8, \"wall_ms\": 31.2, \"p50_ms\": 0.010, \"p95_ms\": 0.900, \"p99_ms\": 2.100, \"trace_fnv\": \"{fnv}\", \"counters\": {{\"requests\": 1200, \"answered\": 1200, \"rejected\": 0, \"hits\": {hits}, \"misses\": 150, \"evictions\": 0, \"plan_compiles\": 290, \"plan_reuses\": 2030, \"incomplete\": 41, \"truncated\": 6, \"answers_emitted\": 8120, \"match_candidates\": 40100, \"rewrite_generated\": 7300, \"cache_bytes\": 51200, \"peak_cache_bytes\": 51200, \"writes\": 6, \"facts_inserted\": 5, \"facts_retracted\": 2, \"cache_invalidations\": 4}}, \"segments\": [{{\"name\": \"cold\", \"requests\": 116, \"hits\": 0, \"misses\": 116}}, {{\"name\": \"iso\", \"requests\": 704, \"hits\": 688, \"misses\": 16}}]}}"
        )
    }

    fn serve_dump(runs: &[String]) -> Value {
        let src = format!(
            "{{\"schema\": \"qr-bench/serve-v2\", \"serve_runs\": [{}]}}",
            runs.join(",")
        );
        Parser::parse(&src).unwrap()
    }

    #[test]
    fn serve_wall_and_percentiles_are_ignored() {
        let a = serve_dump(&[serve_run("serve-mixed", 1050, "0x00ff")]);
        let b_src = serve_run("serve-mixed", 1050, "0x00ff")
            .replace("\"threads\": 8", "\"threads\": 1")
            .replace("\"wall_ms\": 31.2", "\"wall_ms\": 900.0")
            .replace("\"p95_ms\": 0.900", "\"p95_ms\": 44.0");
        assert!(diff(&a, &serve_dump(&[b_src])).is_empty());
    }

    #[test]
    fn serve_counter_and_segment_drift_is_reported() {
        let a = serve_dump(&[serve_run("serve-mixed", 1050, "0x00ff")]);
        let b_src = serve_run("serve-mixed", 1049, "0x00ff").replace(
            "\"iso\", \"requests\": 704, \"hits\": 688",
            "\"iso\", \"requests\": 704, \"hits\": 687",
        );
        let report = diff(&a, &serve_dump(&[b_src]));
        assert!(
            report.contains("\"serve-mixed\": hits Some(1050) -> Some(1049)"),
            "{report}"
        );
        assert!(
            report.contains("\"serve-mixed\" segment \"iso\": hits Some(688) -> Some(687)"),
            "{report}"
        );
    }

    #[test]
    fn serve_trace_hash_drift_is_reported() {
        let a = serve_dump(&[serve_run("serve-mixed", 1050, "0x00ff")]);
        let b = serve_dump(&[serve_run("serve-mixed", 1050, "0x0100")]);
        let report = diff(&a, &b);
        assert!(
            report.contains("trace_fnv Some(\"0x00ff\") -> Some(\"0x0100\")"),
            "{report}"
        );
    }

    #[test]
    fn missing_serve_workloads_and_segments_are_reported() {
        let a = serve_dump(&[serve_run("serve-mixed", 1050, "0x00ff")]);
        let b = serve_dump(&[serve_run("serve-churn", 60, "0xbeef")]);
        let report = diff(&a, &b);
        assert!(report.contains("serve workload \"serve-mixed\": missing from candidate"));
        assert!(report.contains("serve workload \"serve-churn\": missing from baseline"));
        let c_src = serve_run("serve-mixed", 1050, "0x00ff").replace(
            ", {\"name\": \"iso\", \"requests\": 704, \"hits\": 688, \"misses\": 16}",
            "",
        );
        let report = diff(&a, &serve_dump(&[c_src]));
        assert!(
            report.contains("\"serve-mixed\": segment \"iso\" missing from candidate"),
            "{report}"
        );
    }

    fn check_run(workload: &str, certs: u64, searches: u64, failures: &str) -> String {
        format!(
            "{{\"workload\": \"{workload}\", \"kind\": \"rewrite\", \"threads\": 1, \"wall_ms\": 0.7, \"certs\": {certs}, \"cert_bytes\": 2048, \"kernel_searches\": {searches}, \"failures\": [{failures}]}}"
        )
    }

    fn check_dump(runs: &[String]) -> Value {
        let src = format!(
            "{{\"schema\": \"qr-bench/check-v2\", \"check_runs\": [{}]}}",
            runs.join(",")
        );
        Parser::parse(&src).unwrap()
    }

    #[test]
    fn check_wall_times_and_threads_are_ignored() {
        let a = check_dump(&[check_run("t_p", 9, 0, "")]);
        let b_src = check_run("t_p", 9, 0, "")
            .replace("\"wall_ms\": 0.7", "\"wall_ms\": 99.9")
            .replace("\"threads\": 1", "\"threads\": 16");
        assert!(diff(&a, &check_dump(&[b_src])).is_empty());
    }

    #[test]
    fn check_counter_and_failure_drift_is_reported() {
        let a = check_dump(&[check_run("t_p", 9, 0, "")]);
        let b = check_dump(&[check_run(
            "t_p",
            8,
            1,
            "\"certificate 3: unifier rejected\"",
        )]);
        let report = diff(&a, &b);
        assert!(
            report.contains("\"t_p\": certs Some(9) -> Some(8)"),
            "{report}"
        );
        assert!(
            report.contains("\"t_p\": kernel_searches Some(0) -> Some(1)"),
            "{report}"
        );
        assert!(report.contains("\"t_p\": failure count 0 -> 1"), "{report}");
        let c_src =
            check_run("t_p", 9, 0, "").replace("\"kind\": \"rewrite\"", "\"kind\": \"chase\"");
        let report = diff(&a, &check_dump(&[c_src]));
        assert!(
            report.contains("\"t_p\": kind Some(\"rewrite\") -> Some(\"chase\")"),
            "{report}"
        );
    }

    #[test]
    fn missing_check_workloads_are_reported() {
        let a = check_dump(&[check_run("t_p", 9, 0, "")]);
        let b = check_dump(&[check_run("t_a", 9, 0, "")]);
        let report = diff(&a, &b);
        assert!(report.contains("check workload \"t_p\": missing from candidate"));
        assert!(report.contains("check workload \"t_a\": missing from baseline"));
    }

    #[test]
    fn parser_round_trips_escapes_and_numbers() {
        let v = Parser::parse(r#"{"a": "x\"y\nz", "b": [1, -2.5, 1e3], "c": true, "d": null}"#)
            .unwrap();
        assert_eq!(v.get("a").and_then(Value::as_str), Some("x\"y\nz"));
        assert_eq!(v.get("b").unwrap().as_arr().len(), 3);
        assert_eq!(v.get("b").unwrap().as_arr()[2], Value::Num(1000.0));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Parser::parse("{\"a\": }").is_err());
        assert!(Parser::parse("[1, 2").is_err());
        assert!(Parser::parse("{} extra").is_err());
    }
}
