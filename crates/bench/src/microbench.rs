//! A dependency-free micro-benchmark runner for the `harness = false`
//! bench binaries (stands in for criterion, which is not vendored).
//!
//! Each measurement warms up, then repeats the closure until a small time
//! budget is spent, reporting min / median / max wall time per iteration.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration time budget for one measurement.
const BUDGET: Duration = Duration::from_millis(300);
/// Upper bound on measured iterations (keeps fast closures bounded).
const MAX_ITERS: usize = 200;

/// Measures `f` and prints one aligned result line under `label`.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot elide the computation.
pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) {
    for _ in 0..2 {
        black_box(f());
    }
    let mut samples: Vec<Duration> = Vec::new();
    let start = Instant::now();
    while samples.len() < MAX_ITERS && (samples.len() < 5 || start.elapsed() < BUDGET) {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!(
        "{label:<52} min {:>10.2?}  median {:>10.2?}  max {:>10.2?}  ({} iters)",
        samples[0],
        median,
        samples[samples.len() - 1],
        samples.len()
    );
}

/// Prints a group header, criterion-style, before related measurements.
pub fn group(name: &str) {
    println!("\n== {name}");
}
