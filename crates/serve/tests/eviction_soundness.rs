//! Eviction soundness: forcing the LRU to drop a rewriting and then
//! re-submitting the evicted query recomputes the rewriting and returns
//! the identical answer set — the cache is an accelerator, never an
//! oracle.

use qr_serve::{CqRequest, Engine, EngineConfig, Response, ResponseStatus, Tier};

fn req(query: &str) -> CqRequest {
    CqRequest {
        theory: "path".to_owned(),
        query: query.to_owned(),
    }
}

fn answered(r: &Response) -> (Tier, Vec<Vec<String>>) {
    match &r.status {
        ResponseStatus::Answered { tier, answers, .. } => (*tier, answers.clone()),
        ResponseStatus::Rejected { reason } => panic!("rejected: {reason}"),
        ResponseStatus::Written { .. } => panic!("write response to a query"),
    }
}

#[test]
fn evicted_query_recomputes_to_identical_answers() {
    // A budget of one entry: every insertion evicts the previous resident.
    let mut engine = Engine::new(EngineConfig {
        cache_bytes: 1,
        ..EngineConfig::default()
    });
    engine
        .register(
            "path",
            "e(X,Y) -> e(Y,Z).",
            "e(a,b). e(b,c). e(c,d). e(x,y).",
        )
        .unwrap();

    let q1 = "?(A) :- e(A,B), e(B,C).";
    let q2 = "?(X) :- e(X, Y).";

    let (t, first) = answered(&engine.submit(req(q1)));
    assert_eq!(t, Tier::Miss);
    assert!(!first.is_empty(), "q1 has certain answers");

    // q2 lands in the cache and pushes q1 out.
    let (t, _) = answered(&engine.submit(req(q2)));
    assert_eq!(t, Tier::Miss);
    assert!(
        engine.stats().counters.evictions >= 1,
        "a one-entry budget must evict q1 when q2 arrives"
    );
    assert_eq!(engine.cached_rewritings(), 1, "only q2 is resident");

    // Re-submitting q1 is a miss again — and the recomputed rewriting
    // serves exactly the answers the first (now evicted) one did.
    let (t, recomputed) = answered(&engine.submit(req(q1)));
    assert_eq!(t, Tier::Miss, "q1 was evicted, so it must recompute");
    assert_eq!(
        recomputed, first,
        "recomputed answers diverge from the originals"
    );

    // And now q1 is resident again: one more submission hits.
    let (t, hit) = answered(&engine.submit(req(q1)));
    assert_eq!(t, Tier::Hit);
    assert_eq!(hit, first);
}
