//! Umbrella crate for the *Frontiers of Query Rewritability* workspace.
//!
//! Re-exports the member crates so downstream users (and the examples,
//! integration tests and benches in this repository) can depend on a single
//! package. See `README.md` for a tour and `DESIGN.md` for the system
//! inventory mapping each module to the paper.

pub use qr_chase as chase;
pub use qr_classes as classes;
pub use qr_core as core;
pub use qr_exec as exec;
pub use qr_hom as hom;
pub use qr_rewrite as rewrite;
pub use qr_syntax as syntax;

/// Convenience prelude: the types and functions most code needs.
pub mod prelude {
    pub use qr_syntax::{
        parse_instance, parse_query, parse_theory, ConjunctiveQuery, Fact, Instance, Pred, Symbol,
        TermId, Tgd, Theory, Ucq,
    };
}
