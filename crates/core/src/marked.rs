//! Marked queries and the five-operation rewriting process for `T_d`
//! (Sections 10–11 and Appendix B), generalized to the `K`-colour theories
//! `T_d^K` of Section 12 (3K−1 operations).
//!
//! A *marked query* (Definition 47) is a CQ over binary colour predicates
//! together with a set `V` of variables that must map into `dom(D)`
//! (Definition 48); all answer variables are in `V`. The structure of
//! `Ch(T_d, D)` forces the conditions of Observation 50 on satisfiable
//! markings ("properly marked"); for `K > 2` colours one extra condition
//! appears: an unmarked variable's in-edges must use one colour or two
//! *adjacent* colours `{i+1, i}` — the only in-edge profiles chase-invented
//! terms have (pins terms and grid terms; the loop element is unreachable
//! from any marked variable because its component is disjoint from
//! `dom(D)`, which is also why Boolean queries are trivially entailed and
//! excluded here, exactly as in the paper).
//!
//! The process (Section 10, "High-level proof of claim (A)") starts from
//! all proper markings of the input query and applies, to a maximal
//! unmarked variable of a live query, one of: **cut** (remove the sole
//! in-edge), **fuse** (merge two same-colour in-neighbours — in-edges of
//! invented terms are unique per colour), or **reduce** (rewrite through
//! the grid rule, replacing `I_{i+1}(a,x), I_i(b,x)` by
//! `I_i(x',x''), I_i(x'',a), I_{i+1}(x',b)`). Soundness is the paper's
//! Lemmas 80–82; termination is the rank argument of Section 11, which
//! [`crate::ranks`] checks experimentally.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use qr_syntax::query::{QAtom, QTerm, Var};
use qr_syntax::{ConjunctiveQuery, Pred, Symbol, Ucq};

/// Maps colour indices `1..=K` to binary predicates.
#[derive(Clone, Debug)]
pub struct ColorMap {
    preds: Vec<Pred>,
}

impl ColorMap {
    /// `T_d`'s colours: `I_2 = r` (red), `I_1 = g` (green).
    pub fn td() -> ColorMap {
        ColorMap {
            preds: vec![Pred::new("g", 2), Pred::new("r", 2)],
        }
    }

    /// `T_d^K`'s colours `i1 … iK`.
    pub fn tdk(k: usize) -> ColorMap {
        ColorMap {
            preds: (1..=k)
                .map(|i| Pred::new(format!("i{i}").as_str(), 2))
                .collect(),
        }
    }

    /// Number of colours `K`.
    pub fn k(&self) -> usize {
        self.preds.len()
    }

    /// The predicate of colour `c ∈ 1..=K`.
    pub fn pred(&self, c: u8) -> Pred {
        self.preds[(c - 1) as usize]
    }

    /// The colour of a predicate, if it is one of the map's colours.
    pub fn color_of(&self, p: Pred) -> Option<u8> {
        self.preds
            .iter()
            .position(|q| *q == p)
            .map(|i| (i + 1) as u8)
    }
}

/// A coloured edge `I_c(from, to)`.
pub type Edge = (u8, u32, u32);

/// A marked query (Definition 47) over `K` colours.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MarkedQuery {
    k: u8,
    edges: BTreeSet<Edge>,
    marked: BTreeSet<u32>,
    answer: Vec<u32>,
    next_var: u32,
}

/// Result of one process step on a live query.
#[derive(Clone, Debug)]
pub enum StepResult {
    /// The query was replaced by these queries (cut/fuse yield one,
    /// reduce up to three properly marked ones).
    Replaced(Vec<MarkedQuery>),
    /// The query is unsatisfiable (unrealizable in-edge profile) and was
    /// discarded.
    Dropped,
    /// The query is not live (totally marked): it is a terminal disjunct.
    Terminal,
}

/// Statistics of a process run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProcessStats {
    /// Number of operations applied.
    pub steps: usize,
    /// Largest number of simultaneously pending live queries.
    pub max_frontier: usize,
    /// Queries dropped as unsatisfiable.
    pub dropped: usize,
}

/// Process failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProcessError {
    /// The step cap was exceeded (the paper proves termination; the cap is
    /// a defensive budget).
    StepCap(usize),
    /// The query uses a predicate outside the colour map, or is Boolean
    /// (Boolean connected queries are trivially entailed under `T_d`; the
    /// paper and this implementation exclude them).
    UnsupportedQuery(String),
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::StepCap(n) => write!(f, "marked process exceeded {n} steps"),
            ProcessError::UnsupportedQuery(m) => write!(f, "unsupported query: {m}"),
        }
    }
}

impl std::error::Error for ProcessError {}

impl MarkedQuery {
    /// Builds a marked query; `answer ⊆ marked` is enforced.
    pub fn new(
        k: u8,
        edges: impl IntoIterator<Item = Edge>,
        marked: impl IntoIterator<Item = u32>,
        answer: Vec<u32>,
    ) -> MarkedQuery {
        let edges: BTreeSet<Edge> = edges.into_iter().collect();
        let mut marked: BTreeSet<u32> = marked.into_iter().collect();
        marked.extend(answer.iter().copied());
        let next_var = edges
            .iter()
            .flat_map(|(_, a, b)| [*a, *b])
            .chain(answer.iter().copied())
            .max()
            .map_or(0, |m| m + 1);
        for (c, _, _) in &edges {
            assert!((1..=k).contains(c), "colour out of range");
        }
        MarkedQuery {
            k,
            edges,
            marked,
            answer,
            next_var,
        }
    }

    /// The edges.
    pub fn edges(&self) -> &BTreeSet<Edge> {
        &self.edges
    }

    /// The marked variables `V(Q)`.
    pub fn marked(&self) -> &BTreeSet<u32> {
        &self.marked
    }

    /// The answer variables (in order, possibly with repetitions).
    pub fn answer(&self) -> &[u32] {
        &self.answer
    }

    /// All variables occurring in edges or the answer tuple.
    pub fn vars(&self) -> BTreeSet<u32> {
        self.edges
            .iter()
            .flat_map(|(_, a, b)| [*a, *b])
            .chain(self.answer.iter().copied())
            .collect()
    }

    /// Number of edges of colour `c` (the paper's `|Q_c|`).
    pub fn count(&self, c: u8) -> usize {
        self.edges.iter().filter(|(cc, _, _)| *cc == c).count()
    }

    /// Totally marked: every variable is in `V` (Observation 50's terminal
    /// form — the query then evaluates directly over `D`).
    pub fn is_totally_marked(&self) -> bool {
        self.vars().iter().all(|v| self.marked.contains(v))
    }

    /// Live: properly marked (assumed) and not totally marked.
    pub fn is_live(&self) -> bool {
        !self.is_totally_marked()
    }

    /// The conditions of Observation 50 (plus the `K`-colour in-edge
    /// profile condition; see the module docs). Queries failing them are
    /// unsatisfiable and may be discarded.
    pub fn is_properly_marked(&self) -> bool {
        // (i) an edge into a marked variable starts at a marked variable.
        for (_, a, b) in &self.edges {
            if self.marked.contains(b) && !self.marked.contains(a) {
                return false;
            }
        }
        // (ii) every variable on a directed cycle is marked: equivalently,
        // the subgraph induced on unmarked variables is acyclic (marked
        // sources cannot re-enter unmarked territory by (i)).
        if self.unmarked_cycle_exists() {
            return false;
        }
        // (iii) same-colour in-edges: if one source is marked, all are.
        let mut by_target: BTreeMap<(u8, u32), Vec<u32>> = BTreeMap::new();
        for (c, a, b) in &self.edges {
            by_target.entry((*c, *b)).or_default().push(*a);
        }
        for ((_, b), sources) in &by_target {
            if !self.marked.contains(b)
                && sources.iter().any(|s| self.marked.contains(s))
                && sources.iter().any(|s| !self.marked.contains(s))
            {
                return false;
            }
        }
        // (iv) K-colour profile: an unmarked variable's in-edge colours
        // form {c} or an adjacent pair {c+1, c}.
        for v in self.vars() {
            if self.marked.contains(&v) {
                continue;
            }
            let colors: BTreeSet<u8> = self
                .edges
                .iter()
                .filter(|(_, _, b)| *b == v)
                .map(|(c, _, _)| *c)
                .collect();
            match colors.len() {
                0 | 1 => {}
                2 => {
                    let lo = *colors.iter().next().expect("two elements");
                    let hi = *colors.iter().next_back().expect("two elements");
                    if hi != lo + 1 {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }

    fn unmarked_cycle_exists(&self) -> bool {
        // DFS over edges between unmarked variables.
        let unmarked: BTreeSet<u32> = self
            .vars()
            .into_iter()
            .filter(|v| !self.marked.contains(v))
            .collect();
        let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (_, a, b) in &self.edges {
            if unmarked.contains(a) && unmarked.contains(b) {
                adj.entry(*a).or_default().push(*b);
            }
        }
        // 0 = unseen, 1 = on stack, 2 = done.
        let mut state: BTreeMap<u32, u8> = BTreeMap::new();
        fn dfs(v: u32, adj: &BTreeMap<u32, Vec<u32>>, state: &mut BTreeMap<u32, u8>) -> bool {
            state.insert(v, 1);
            for &w in adj.get(&v).into_iter().flatten() {
                match state.get(&w).copied().unwrap_or(0) {
                    0 if dfs(w, adj, state) => {
                        return true;
                    }
                    1 => return true,
                    _ => {}
                }
            }
            state.insert(v, 2);
            false
        }
        for &v in &unmarked {
            if state.get(&v).copied().unwrap_or(0) == 0 && dfs(v, &adj, &mut state) {
                return true;
            }
        }
        false
    }

    /// A maximal variable (Lemma 55's `x`): unmarked with no out-edges.
    pub fn maximal_var(&self) -> Option<u32> {
        let with_out: HashSet<u32> = self.edges.iter().map(|(_, a, _)| *a).collect();
        self.vars()
            .into_iter()
            .find(|v| !self.marked.contains(v) && !with_out.contains(v))
    }

    fn rename(&self, from: u32, to: u32) -> MarkedQuery {
        let f = |v: u32| if v == from { to } else { v };
        MarkedQuery {
            k: self.k,
            edges: self
                .edges
                .iter()
                .map(|(c, a, b)| (*c, f(*a), f(*b)))
                .collect(),
            marked: self.marked.iter().map(|v| f(*v)).collect(),
            answer: self.answer.iter().map(|v| f(*v)).collect(),
            next_var: self.next_var,
        }
    }

    /// Applies one operation to a live query (Definitions 56–58). The
    /// query must be properly marked.
    pub fn step(&self) -> StepResult {
        let Some(x) = self.maximal_var() else {
            return StepResult::Terminal;
        };
        let in_edges: Vec<Edge> = self
            .edges
            .iter()
            .copied()
            .filter(|(_, _, b)| *b == x)
            .collect();

        // fuse: two same-colour in-neighbours must coincide in the chase.
        for i in 0..in_edges.len() {
            for j in (i + 1)..in_edges.len() {
                let (c1, z1, _) = in_edges[i];
                let (c2, z2, _) = in_edges[j];
                if c1 == c2 && z1 != z2 {
                    return StepResult::Replaced(vec![self.rename(z2, z1)]);
                }
            }
        }

        // Distinct colours now (same-colour pairs were fused; equal edges
        // are impossible in a set).
        let colors: BTreeSet<u8> = in_edges.iter().map(|(c, _, _)| *c).collect();
        match (in_edges.len(), colors.len()) {
            (0, _) => {
                // An unmarked isolated variable cannot arise from a
                // connected non-Boolean query; treat as unsatisfiable.
                StepResult::Dropped
            }
            (1, _) => {
                // cut.
                let mut edges = self.edges.clone();
                edges.remove(&in_edges[0]);
                StepResult::Replaced(vec![MarkedQuery {
                    k: self.k,
                    edges,
                    marked: self.marked.clone(),
                    answer: self.answer.clone(),
                    next_var: self.next_var,
                }])
            }
            (2, 2) => {
                let lo_c = *colors.iter().next().expect("two colours");
                let hi_c = *colors.iter().next_back().expect("two colours");
                if hi_c != lo_c + 1 {
                    // Unrealizable profile (module docs).
                    return StepResult::Dropped;
                }
                // reduce: I_{hi}(a,x), I_{lo}(b,x) become
                // I_lo(x',x''), I_lo(x'',a), I_hi(x',b).
                let a = in_edges
                    .iter()
                    .find(|(c, _, _)| *c == hi_c)
                    .expect("hi edge")
                    .1;
                let b = in_edges
                    .iter()
                    .find(|(c, _, _)| *c == lo_c)
                    .expect("lo edge")
                    .1;
                let x1 = self.next_var;
                let x2 = self.next_var + 1;
                let mut edges = self.edges.clone();
                for e in &in_edges {
                    edges.remove(e);
                }
                edges.insert((lo_c, x1, x2));
                edges.insert((lo_c, x2, a));
                edges.insert((hi_c, x1, b));
                let mut out = Vec::new();
                for marking in [vec![], vec![x1], vec![x1, x2]] {
                    // The fourth marking {x''} is never properly marked
                    // (footnote 33 of the paper).
                    let mut marked = self.marked.clone();
                    marked.extend(marking);
                    let q = MarkedQuery {
                        k: self.k,
                        edges: edges.clone(),
                        marked,
                        answer: self.answer.clone(),
                        next_var: self.next_var + 2,
                    };
                    if q.is_properly_marked() {
                        out.push(q);
                    }
                }
                StepResult::Replaced(out)
            }
            _ => StepResult::Dropped,
        }
    }

    /// A deterministic canonical key (variables renumbered by first
    /// occurrence over the sorted edge list, marking statuses inlined);
    /// equal keys imply isomorphic marked queries.
    pub fn canonical_key(&self) -> String {
        // Stabilize with two renumber/sort rounds, like CQ::canonical.
        let mut label: BTreeMap<u32, usize> = BTreeMap::new();
        let mut edges: Vec<Edge> = self.edges.iter().copied().collect();
        for _ in 0..2 {
            edges.sort_by_key(|(c, a, b)| {
                (
                    *c,
                    label.get(a).copied().unwrap_or(usize::MAX),
                    label.get(b).copied().unwrap_or(usize::MAX),
                )
            });
            label.clear();
            for &v in &self.answer {
                let next = label.len();
                label.entry(v).or_insert(next);
            }
            for (_, a, b) in &edges {
                for v in [a, b] {
                    let next = label.len();
                    label.entry(*v).or_insert(next);
                }
            }
        }
        let mut out = String::new();
        for v in &self.answer {
            out.push_str(&format!("a{};", label[v]));
        }
        for (c, a, b) in &edges {
            let ma = if self.marked.contains(a) { "m" } else { "u" };
            let mb = if self.marked.contains(b) { "m" } else { "u" };
            out.push_str(&format!("{c}({}{ma},{}{mb});", label[a], label[b]));
        }
        out
    }

    /// Converts a totally marked query to a plain CQ over the colour
    /// predicates; `None` when the query has no edges (the always-true
    /// disjunct "the answer tuple lies in `dom(D)`").
    pub fn to_cq(&self, colors: &ColorMap) -> Option<ConjunctiveQuery> {
        self.to_cq_raw(colors).map(|q| q.canonical())
    }

    /// Like [`Self::to_cq`] but without canonicalization: variable `i` of
    /// the result is the `i`-th element of `self.vars()` (sorted order) —
    /// the indexing [`Self::holds_in`] relies on.
    fn to_cq_raw(&self, colors: &ColorMap) -> Option<ConjunctiveQuery> {
        if self.edges.is_empty() {
            return None;
        }
        let vars: Vec<u32> = self.vars().into_iter().collect();
        let index: BTreeMap<u32, Var> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, Var(i as u32)))
            .collect();
        let names: Vec<Symbol> = vars
            .iter()
            .map(|v| Symbol::intern(&format!("V{v}")))
            .collect();
        let atoms: Vec<QAtom> = self
            .edges
            .iter()
            .map(|(c, a, b)| {
                QAtom::new(
                    colors.pred(*c),
                    vec![QTerm::Var(index[a]), QTerm::Var(index[b])],
                )
            })
            .collect();
        let answer: Vec<Var> = self.answer.iter().map(|v| index[v]).collect();
        Some(ConjunctiveQuery::new(answer, atoms, names))
    }

    /// Marked satisfaction, Definition 48: `Ch(D) ⊨ Q(ā)` iff some
    /// homomorphism of `q(Q)` into `chase_instance` maps the answer
    /// variables to `ā` and maps `v` into `dom(D)` **iff** `v ∈ V(Q)`.
    ///
    /// `dom_d` must be the active domain of the original instance `D` (not
    /// of the chase). Used to validate Lemma 52 exactly.
    pub fn holds_in(
        &self,
        chase_instance: &qr_syntax::Instance,
        dom_d: &std::collections::HashSet<qr_syntax::TermId>,
        answer: &[qr_syntax::TermId],
        colors: &ColorMap,
    ) -> bool {
        assert_eq!(answer.len(), self.answer.len(), "answer arity mismatch");
        let Some(cq) = self.to_cq_raw(colors) else {
            // Edge-less query: true iff the answer tuple lies in dom(D)
            // (answer variables are marked by construction).
            return answer.iter().all(|t| dom_d.contains(t));
        };
        // `to_cq` numbers variables in the sorted order of `self.vars()`.
        let vars: Vec<u32> = self.vars().into_iter().collect();
        let fixed: Vec<(Var, qr_syntax::TermId)> = self
            .answer
            .iter()
            .zip(answer)
            .map(|(v, t)| {
                let idx = vars
                    .iter()
                    .position(|u| u == v)
                    .expect("answer var present");
                (Var(idx as u32), *t)
            })
            .collect();
        let mut found = false;
        qr_hom::matcher::for_each_match(
            cq.atoms(),
            cq.var_names().len(),
            chase_instance,
            &fixed,
            |asg| {
                let respects_marking = vars.iter().enumerate().all(|(i, v)| match asg[i] {
                    Some(t) => dom_d.contains(&t) == self.marked.contains(v),
                    None => false,
                });
                if respects_marking {
                    found = true;
                    false
                } else {
                    true
                }
            },
        );
        found
    }

    /// Builds the paper's `S_0`: all properly marked versions of a plain CQ
    /// over the colour predicates. Errors on Boolean queries or foreign
    /// predicates.
    pub fn markings_of(
        q: &ConjunctiveQuery,
        colors: &ColorMap,
    ) -> Result<Vec<MarkedQuery>, ProcessError> {
        if q.is_boolean() {
            return Err(ProcessError::UnsupportedQuery(
                "Boolean connected queries are trivially entailed under T_d (rule (loop)); \
                 the marked process handles non-Boolean queries"
                    .into(),
            ));
        }
        let mut edges: BTreeSet<Edge> = BTreeSet::new();
        for a in q.atoms() {
            let Some(c) = colors.color_of(a.pred) else {
                return Err(ProcessError::UnsupportedQuery(format!(
                    "predicate {:?} is not a colour",
                    a.pred
                )));
            };
            let mut ends = [0u32; 2];
            for (i, t) in a.args.iter().enumerate() {
                match t {
                    QTerm::Var(v) => ends[i] = v.0,
                    QTerm::Const(_) => {
                        return Err(ProcessError::UnsupportedQuery(
                            "constants are not supported in marked queries".into(),
                        ))
                    }
                }
            }
            edges.insert((c, ends[0], ends[1]));
        }
        let answer: Vec<u32> = q.answer_vars().iter().map(|v| v.0).collect();
        let base = MarkedQuery::new(
            colors.k() as u8,
            edges.clone(),
            answer.clone(),
            answer.clone(),
        );
        let existential: Vec<u32> = base
            .vars()
            .into_iter()
            .filter(|v| !answer.contains(v))
            .collect();
        let mut out = Vec::new();
        for mask in 0u64..(1 << existential.len()) {
            let extra = existential
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, v)| *v);
            let q = MarkedQuery::new(
                colors.k() as u8,
                edges.clone(),
                answer.iter().copied().chain(extra),
                answer.clone(),
            );
            if q.is_properly_marked() {
                out.push(q);
            }
        }
        Ok(out)
    }
}

/// Output of [`marked_process`].
#[derive(Clone, Debug)]
pub struct MarkedRewriting {
    /// The totally marked terminal queries, as plain CQs (deduplicated).
    pub disjuncts: Vec<ConjunctiveQuery>,
    /// `true` if an edge-less terminal query arose: the rewriting then also
    /// contains the trivial disjunct "the answer tuple is in `dom(D)`".
    pub has_true_disjunct: bool,
    /// Run statistics.
    pub stats: ProcessStats,
}

impl MarkedRewriting {
    /// The disjuncts as a UCQ (without the trivial disjunct, if any).
    pub fn ucq(&self) -> Ucq {
        Ucq::new(self.disjuncts.clone())
    }

    /// The paper's `rs` measure over the produced disjuncts.
    pub fn max_disjunct_size(&self) -> usize {
        self.disjuncts
            .iter()
            .map(ConjunctiveQuery::size)
            .max()
            .unwrap_or(0)
    }
}

/// Runs the process of Section 10 to completion (or the step cap).
pub fn marked_process(
    seeds: Vec<MarkedQuery>,
    step_cap: usize,
    colors: &ColorMap,
) -> Result<MarkedRewriting, ProcessError> {
    let mut stats = ProcessStats::default();
    let mut work: VecDeque<MarkedQuery> = VecDeque::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut terminal: Vec<MarkedQuery> = Vec::new();
    let mut terminal_keys: HashSet<String> = HashSet::new();
    let mut has_true = false;
    let mut dropped_improper = 0usize;

    let push = |q: MarkedQuery,
                work: &mut VecDeque<MarkedQuery>,
                terminal: &mut Vec<MarkedQuery>,
                terminal_keys: &mut HashSet<String>,
                has_true: &mut bool,
                seen: &mut HashSet<String>,
                dropped_improper: &mut usize| {
        // cut/fuse can produce improperly marked queries (e.g. fuse closing
        // an unmarked cycle); by Observation 50 those are unsatisfiable, so
        // they are discarded. This also keeps Lemma 55's guarantee (every
        // properly marked live query has a maximal variable) for the
        // queries that stay in the worklist.
        if !q.is_properly_marked() {
            *dropped_improper += 1;
            return;
        }
        if q.is_totally_marked() {
            if q.edges().is_empty() {
                *has_true = true;
            } else if terminal_keys.insert(q.canonical_key()) {
                terminal.push(q);
            }
        } else if seen.insert(q.canonical_key()) {
            work.push_back(q);
        }
    };

    for q in seeds {
        push(
            q,
            &mut work,
            &mut terminal,
            &mut terminal_keys,
            &mut has_true,
            &mut seen,
            &mut dropped_improper,
        );
    }

    while let Some(q) = work.pop_front() {
        stats.max_frontier = stats.max_frontier.max(work.len() + 1);
        stats.steps += 1;
        if stats.steps > step_cap {
            return Err(ProcessError::StepCap(step_cap));
        }
        match q.step() {
            StepResult::Terminal => {
                unreachable!("properly marked live queries have a maximal variable (Lemma 55)")
            }
            StepResult::Dropped => stats.dropped += 1,
            StepResult::Replaced(qs) => {
                for nq in qs {
                    push(
                        nq,
                        &mut work,
                        &mut terminal,
                        &mut terminal_keys,
                        &mut has_true,
                        &mut seen,
                        &mut dropped_improper,
                    );
                }
            }
        }
    }

    stats.dropped += dropped_improper;
    let disjuncts = terminal
        .iter()
        .filter_map(|q| q.to_cq(colors))
        .collect::<Vec<_>>();
    Ok(MarkedRewriting {
        disjuncts,
        has_true_disjunct: has_true,
        stats,
    })
}

/// Computes the `T_d`-rewriting of a (connected, non-Boolean) query over
/// `{r, g}` via the marked process — the executable content of Theorem 5(A).
pub fn rewrite_td(
    query: &ConjunctiveQuery,
    step_cap: usize,
) -> Result<MarkedRewriting, ProcessError> {
    let colors = ColorMap::td();
    let seeds = MarkedQuery::markings_of(query, &colors)?;
    marked_process(seeds, step_cap, &colors)
}

/// The `T_d^K` variant over `{i1 … iK}`.
pub fn rewrite_tdk(
    k: usize,
    query: &ConjunctiveQuery,
    step_cap: usize,
) -> Result<MarkedRewriting, ProcessError> {
    let colors = ColorMap::tdk(k);
    let seeds = MarkedQuery::markings_of(query, &colors)?;
    marked_process(seeds, step_cap, &colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theories::{g_power_query, phi_r_n};
    use qr_hom::containment::equivalent;
    use qr_syntax::parse_query;

    fn td_colors() -> ColorMap {
        ColorMap::td()
    }

    #[test]
    fn proper_marking_conditions() {
        // g(A,B) with B marked, A unmarked violates (i).
        let q = MarkedQuery::new(2, [(1, 0, 1)], [1], vec![1]);
        assert!(!q.is_properly_marked());
        // Cycle of unmarked variables violates (ii).
        let c = MarkedQuery::new(2, [(1, 0, 1), (1, 1, 0)], [2], vec![2]);
        // (variable 2 needs an edge to exist in vars(); give it one)
        let c = MarkedQuery::new(
            2,
            c.edges().iter().copied().chain([(2u8, 2u32, 0u32)]),
            [2],
            vec![2],
        );
        assert!(!c.is_properly_marked());
        // Same-colour in-edges with mixed markings violate (iii).
        let m = MarkedQuery::new(2, [(1, 0, 2), (1, 1, 2), (2, 3, 0)], [0, 3], vec![3]);
        assert!(!m.is_properly_marked());
    }

    #[test]
    fn markings_of_phi_r_1() {
        let q = phi_r_n(1);
        let s0 = MarkedQuery::markings_of(&q, &td_colors()).unwrap();
        // φ_R^1 has 4 existential vars (x1, y1 … wait: x0,x1,y0,y1: two
        // existential) — markings must include the all-marked one.
        assert!(!s0.is_empty());
        assert!(s0.iter().any(|m| m.is_totally_marked()));
        assert!(s0.iter().all(|m| m.is_properly_marked()));
    }

    #[test]
    fn boolean_rejected() {
        let q = parse_query("? :- g(X,Y).").unwrap();
        assert!(matches!(
            MarkedQuery::markings_of(&q, &td_colors()),
            Err(ProcessError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn cut_on_dangling_green() {
        // ?(A) :- g(A,B): B unmarked maximal with one in-edge: cut yields
        // the true disjunct (every element has an outgoing green edge).
        let q = parse_query("?(A) :- g(A,B).").unwrap();
        let r = rewrite_td(&q, 1000).unwrap();
        assert!(r.has_true_disjunct);
        // The totally marked seed g(A,B) with B marked also survives, but
        // it is a disjunct of the rewriting only as written:
        assert!(r.disjuncts.len() <= 2);
    }

    #[test]
    fn theorem_5b_n1() {
        // rew(φ_R^1) contains G^2.
        let r = rewrite_td(&phi_r_n(1), 100_000).unwrap();
        let g2 = g_power_query(2);
        assert!(
            r.disjuncts.iter().any(|d| equivalent(d, &g2)),
            "G^2 must appear among {} disjuncts",
            r.disjuncts.len()
        );
    }

    #[test]
    fn theorem_5b_n2() {
        // rew(φ_R^2) contains G^4.
        let r = rewrite_td(&phi_r_n(2), 1_000_000).unwrap();
        let g4 = g_power_query(4);
        assert!(r.disjuncts.iter().any(|d| equivalent(d, &g4)));
        // Exponential disjunct size: some disjunct has ≥ 4 atoms although
        // |φ_R^2| = 5 and the G-path uses only 4 of them.
        assert!(r.max_disjunct_size() >= 4);
    }

    #[test]
    fn process_is_deterministic() {
        let r1 = rewrite_td(&phi_r_n(1), 100_000).unwrap();
        let r2 = rewrite_td(&phi_r_n(1), 100_000).unwrap();
        let k1: Vec<String> = r1.disjuncts.iter().map(|d| d.render()).collect();
        let k2: Vec<String> = r2.disjuncts.iter().map(|d| d.render()).collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn fuse_induced_unmarked_cycle_is_dropped_not_panicking() {
        // Regression: fusing Z and Z2 closes an unmarked self-loop, which
        // is unsatisfiable (Observation 50(ii)) and must be discarded, not
        // left in the worklist where Lemma 55 no longer applies.
        let q = qr_syntax::parse_query("?(A) :- r(Z,X), r(Z2,X), g(Z,Z2), g(A,Z).").unwrap();
        let r = rewrite_td(&q, 10_000).unwrap();
        assert!(r.stats.dropped >= 1);
        assert!(!r.disjuncts.is_empty());
    }

    #[test]
    fn step_cap_enforced() {
        assert!(matches!(
            rewrite_td(&phi_r_n(2), 3),
            Err(ProcessError::StepCap(3))
        ));
    }

    #[test]
    fn tdk_k2_matches_td_shape() {
        // T_d^2 over i2/i1 behaves like T_d over r/g.
        let q = crate::theories::phi_n(1, "i2", "i1");
        let r = rewrite_tdk(2, &q, 100_000).unwrap();
        let path = crate::theories::colour_path_query(2, "i1");
        assert!(r.disjuncts.iter().any(|d| equivalent(d, &path)));
    }
}
