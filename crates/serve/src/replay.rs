//! Replay files: pinned request streams and their deterministic traces.
//!
//! A replay file is plain text, one request per line:
//!
//! ```text
//! # comment
//! path   ?(A) :- e(A,B), e(B,C).
//! family ? :- mother(ann, X).
//! ```
//!
//! The first whitespace-separated token is the registered theory id; the
//! rest of the line is the CQ text. Blank lines and `#` comments are
//! skipped. Running a replay through [`Engine::replay`](crate::Engine::replay)
//! and rendering the responses with [`render_trace`] yields bytes that are
//! identical at any worker-pool width — the repo's pinning convention
//! applied to server behavior (golden traces live under
//! `crates/serve/tests/replays/`).

use crate::engine::{CqRequest, Response};

/// Parses a replay file into requests. Errors name the offending line.
pub fn parse_replay(src: &str) -> Result<Vec<CqRequest>, String> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((theory, query)) = line.split_once(char::is_whitespace) else {
            return Err(format!(
                "replay line {}: expected '<theory> <query>', got '{line}'",
                idx + 1
            ));
        };
        out.push(CqRequest {
            theory: theory.to_owned(),
            query: query.trim().to_owned(),
        });
    }
    Ok(out)
}

/// Renders requests back into the replay format (round-trips through
/// [`parse_replay`]).
pub fn render_replay(requests: &[CqRequest]) -> String {
    let mut out = String::new();
    for r in requests {
        out.push_str(&r.theory);
        out.push(' ');
        out.push_str(&r.query);
        out.push('\n');
    }
    out
}

/// Renders a response stream as its deterministic trace: one
/// [`Response::trace_line`] per line.
pub fn render_trace(responses: &[Response]) -> String {
    let mut out = String::new();
    for r in responses {
        out.push_str(&r.trace_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_round_trips() {
        let src = "# a comment\n\npath ?(A) :- e(A,B).\nfamily   ? :- human(ann).\n";
        let reqs = parse_replay(src).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].theory, "path");
        assert_eq!(reqs[0].query, "?(A) :- e(A,B).");
        assert_eq!(reqs[1].theory, "family");
        assert_eq!(reqs[1].query, "? :- human(ann).");
        let rendered = render_replay(&reqs);
        assert_eq!(parse_replay(&rendered).unwrap(), reqs);
    }

    #[test]
    fn parse_reports_malformed_lines() {
        let err = parse_replay("justonetoken\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
