//! **E4 — Example 39**: the sticky (hence BDD) one-rule theory is **not
//! local**: on the star instance with `k` colours, chase facts of depth `k`
//! have minimal supports of size `k+1`, so no constant `l_T` works
//! (Definition 30). The culprit is the unbounded degree of vertex `a` —
//! which motivates bd-locality (Definition 40).

use std::time::Instant;

use qr_classes::empirical::empirical_locality;
use qr_core::theories::{ex39, star_39};

use crate::Table;

/// Colour counts covered by the default run.
pub const KS: [usize; 5] = [1, 2, 3, 4, 5];

/// The E4 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E4  Ex. 39 — sticky theory is BDD but not local (support grows with colours)",
        "max minimal support = k+1, growing with the star's degree",
        &["k (colours)", "degree", "chase depth", "max support", "ms"],
    );
    for k in KS {
        let t0 = Instant::now();
        let p = empirical_locality(&ex39(), &star_39(k), k);
        t.row(vec![
            k.to_string(),
            p.degree.to_string(),
            p.depth.to_string(),
            p.max_support.to_string(),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_is_k_plus_one() {
        for k in [2usize, 3] {
            let p = empirical_locality(&ex39(), &star_39(k), k);
            assert_eq!(p.max_support, k + 1, "k={k}");
        }
    }
}
