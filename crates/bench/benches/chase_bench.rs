//! Micro-benchmarks for the chase engine (E11's performance side):
//! semi-naive vs naive evaluation, Datalog vs existential loads, and the
//! `T_d` grid chase of E1.

use qr_bench::experiments::e11_chase_engine::random_graph;
use qr_bench::microbench::{bench, group};
use qr_chase::{chase, chase_naive, ChaseBudget};
use qr_core::theories::{green_path, t_a, t_d};
use qr_syntax::{parse_instance, parse_theory};

fn bench_transitive_closure() {
    let theory = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
    group("chase/transitive_closure");
    for (n, m) in [(20usize, 35usize), (40, 70)] {
        let db = random_graph(n, m, 42);
        let budget = ChaseBudget {
            max_rounds: 16,
            max_facts: 1_000_000,
        };
        bench(&format!("semi_naive/G({n},{m})"), || {
            chase(&theory, &db, budget).instance.len()
        });
        bench(&format!("naive/G({n},{m})"), || {
            chase_naive(&theory, &db, budget).instance.len()
        });
    }
}

fn bench_existential_chain() {
    let theory = t_a();
    let db = parse_instance("human(abel). human(cain). human(eve).").unwrap();
    group("chase/mother_chain");
    for depth in [8usize, 16, 32] {
        bench(&format!("depth/{depth}"), || {
            chase(&theory, &db, ChaseBudget::rounds(depth))
                .instance
                .len()
        });
    }
}

fn bench_td_grid() {
    let theory = t_d();
    group("chase/t_d_grid");
    for n in [1usize, 2] {
        let (db, _, _) = green_path(1 << n, "bench");
        let depth = 2 * n + 1;
        bench(&format!("n/{n}"), || {
            chase(
                &theory,
                &db,
                ChaseBudget {
                    max_rounds: depth,
                    max_facts: 1_000_000,
                },
            )
            .instance
            .len()
        });
    }
}

fn main() {
    bench_transitive_closure();
    bench_existential_chain();
    bench_td_grid();
}
