//! The paper's contribution, executable.
//!
//! * [`theories`] — every theory the paper names (Examples 1, 12, 23, 28,
//!   39, 41, 42, 66; Definition 45's `T_d`; Section 12's `T_d^K`) plus the
//!   instance/query families its arguments use (green paths `G^n`, the
//!   queries `φ_R^n`, cycles, stars).
//! * [`marked`] — marked queries (Definitions 47–50) and the five-operation
//!   rewriting process of Sections 10–11 and Appendix B, implemented for
//!   any number of colors `K` (Section 12's 3K−1 operations); this is the
//!   procedure that *computes rewritings for `T_d` and `T_d^K`*, which the
//!   generic piece-rewriting engine cannot handle.
//! * [`ranks`] — R-paths, elevation/cost, `erk`/`qrk`/`srk` and the
//!   multiset ordering (Definitions 59–62), used to certify termination of
//!   the process (Lemma 53) experimentally.
//! * [`fusfes`] — the constructive side of Theorem 4: `I_D`, `C_D`, the
//!   structures `M_F` (Definition 36), and uniform-bound (`UBDD`,
//!   Observation 27) estimation.

pub mod fusfes;
pub mod marked;
pub mod normalize;
pub mod ranks;
pub mod theories;

pub use fusfes::{
    c_d_of, small_subsets, theorem4_certificate, uniform_bound_profile, UniformBoundProfile,
};
pub use marked::{
    marked_process, rewrite_td, rewrite_tdk, ColorMap, MarkedQuery, MarkedRewriting, ProcessError,
    ProcessStats, StepResult,
};
pub use normalize::{
    ancestor_bounds, corollary76_check, lemma70_check, normalize, NormalizeError, Normalized,
};
pub use ranks::{erk, qrk, rank_decreases, srk, srk_lt, MultisetNat, QueryRank};
