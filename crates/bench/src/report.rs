//! Machine-readable bench output.
//!
//! The harness's `--json` mode serializes per-experiment wall times and the
//! chase engine's [`ChaseStats`] counters to `BENCH_chase.json`, so the
//! repo's perf trajectory is recorded as data points across PRs instead of
//! anecdotes in commit messages. The format is hand-rolled (the workspace
//! is offline — no serde) but stable: see `render_json` for the schema.

use std::fmt::Write as _;

use qr_chase::ChaseStats;

/// One measured chase run: a named workload plus the engine's own counters.
pub struct ChaseRun {
    /// Workload label (matches the E11 table's `workload` column).
    pub workload: String,
    /// Which engine ran (`"semi-naive"` / `"naive"`).
    pub engine: &'static str,
    /// End-to-end wall time of the run, in milliseconds.
    pub wall_ms: f64,
    /// Facts in the final instance.
    pub facts_out: usize,
    /// Completed rounds.
    pub rounds_run: usize,
    /// Per-round engine counters.
    pub stats: ChaseStats,
}

/// Wall time of one whole experiment table.
pub struct ExperimentTiming {
    /// Experiment id (`"e11"`, ...).
    pub id: String,
    /// Wall time to build the table, in milliseconds.
    pub wall_ms: f64,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ms(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders `BENCH_chase.json`: schema tag, per-experiment wall times, and
/// one entry per chase run with totals, memory counters (schema v3: the
/// storage layer's deterministic byte accounting), and per-round counters.
pub fn render_json(experiments: &[ExperimentTiming], runs: &[ChaseRun]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"qr-bench/chase-v3\",\n  \"experiments\": [\n");
    for (i, e) in experiments.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"wall_ms\": {}}}{}",
            escape(&e.id),
            ms(e.wall_ms),
            if i + 1 < experiments.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"chase_runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"workload\": \"{}\",\n      \"engine\": \"{}\",\n      \"threads\": {},\n      \"wall_ms\": {},\n      \"facts_out\": {},\n      \"rounds_run\": {},\n      \"memory\": {{\"peak_facts\": {}, \"bytes_facts\": {}, \"bytes_index\": {}, \"bytes_tuples\": {}}},\n      \"totals\": {{\"triggers\": {}, \"candidates\": {}, \"dom_sweeps\": {}, \"dom_pruned\": {}, \"facts_added\": {}, \"terms_added\": {}, \"enum_ms\": {}, \"merge_ms\": {}}},\n      \"rounds\": [\n",
            escape(&r.workload),
            escape(r.engine),
            r.stats.threads,
            ms(r.wall_ms),
            r.facts_out,
            r.rounds_run,
            r.stats.peak_facts,
            r.stats.bytes_facts,
            r.stats.bytes_index,
            r.stats.bytes_tuples,
            r.stats.triggers(),
            r.stats.candidates(),
            r.stats.dom_sweeps(),
            r.stats.dom_pruned(),
            r.stats.facts_added(),
            r.stats.terms_added(),
            ms(r.stats.enum_wall().as_secs_f64() * 1e3),
            ms(r.stats.merge_wall().as_secs_f64() * 1e3),
        );
        for (j, round) in r.stats.rounds.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"round\": {}, \"triggers\": {}, \"candidates\": {}, \"dom_sweeps\": {}, \"dom_pruned\": {}, \"facts_added\": {}, \"terms_added\": {}, \"enum_ms\": {}, \"merge_ms\": {}, \"wall_ms\": {}}}{}",
                round.round,
                round.triggers,
                round.candidates,
                round.dom_sweeps,
                round.dom_pruned,
                round.facts_added,
                round.terms_added,
                ms(round.enum_wall.as_secs_f64() * 1e3),
                ms(round.merge_wall.as_secs_f64() * 1e3),
                ms(round.wall.as_secs_f64() * 1e3),
                if j + 1 < r.stats.rounds.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "      ]\n    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_chase::RoundStats;
    use std::time::Duration;

    #[test]
    fn renders_escaped_well_formed_json() {
        let runs = vec![ChaseRun {
            workload: "TC on \"G(2,2)\"".into(),
            engine: "semi-naive",
            wall_ms: 1.5,
            facts_out: 4,
            rounds_run: 1,
            stats: ChaseStats {
                threads: 4,
                rounds: vec![RoundStats {
                    round: 1,
                    triggers: 2,
                    candidates: 8,
                    dom_sweeps: 1,
                    dom_pruned: 3,
                    facts_added: 2,
                    terms_added: 0,
                    enum_wall: Duration::from_micros(1200),
                    merge_wall: Duration::from_micros(300),
                    wall: Duration::from_micros(1500),
                }],
                peak_facts: 4,
                bytes_facts: 32,
                bytes_index: 120,
                bytes_tuples: 60,
            },
        }];
        let timings = vec![ExperimentTiming {
            id: "e11".into(),
            wall_ms: 10.0,
        }];
        let json = render_json(&timings, &runs);
        assert!(json.contains("\"schema\": \"qr-bench/chase-v3\""));
        assert!(json.contains(
            "\"memory\": {\"peak_facts\": 4, \"bytes_facts\": 32, \"bytes_index\": 120, \"bytes_tuples\": 60}"
        ));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"dom_pruned\": 3"));
        assert!(json.contains("\"enum_ms\": 1.200"));
        assert!(json.contains("\"merge_ms\": 0.300"));
        assert!(json.contains("\\\"G(2,2)\\\""));
        assert!(json.contains("\"wall_ms\": 1.500"));
        assert!(json.contains("\"candidates\": 8"));
        // Braces and brackets balance.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing commas before closers.
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n      ]"));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
