//! Columnar, tuple-interned fact storage (S20).
//!
//! This crate sits *below* `qr-syntax`: it knows nothing about terms,
//! predicates or parsing. It stores facts as `(PredId, tuple)` pairs where
//! the argument tuple is interned once in a flat arena and referenced by a
//! `u32` id, replacing the one-`Box<[TermId]>`-per-fact layout that
//! dominated memory on the exponential chases of the paper (E1 reaches 37k
//! facts at `n = 3`; Theorem 5B predicts `2^n` growth).
//!
//! What [`FactStore`] provides:
//!
//! * dense, insertion-ordered fact indices (the chase's contiguous
//!   delta-range contract),
//! * per-predicate row lists and arity-striped `(pos, term)` postings
//!   lists for join scans,
//! * O(1) duplicate detection,
//! * byte-level memory accounting ([`StorageStats`]) with *logical* sizes
//!   that are identical on every platform and `QR_THREADS` setting,
//! * O(1) prefix [`Snapshot`]s with suffix-popping [`FactStore::restore`],
//!   exploiting the append-only insertion order,
//! * a varint byte codec ([`codec`]) used by `qr-syntax` for the versioned
//!   chase checkpoint format.
//!
//! Everything is `std`-only and deterministic: no randomized iteration
//! order ever escapes (hash maps are only used for point lookups).

pub mod codec;
mod store;

pub use codec::{ByteReader, ByteWriter, DecodeError, DecodeErrorKind};
pub use store::{FactStore, PredId, Snapshot, StorageStats, TupleId};
