//! Theory classes: syntactic recognizers for the decidable BDD classes the
//! paper surveys (linear, guarded, sticky, …) and *empirical* testers for
//! the paper's semantic notions (locality, bounded-degree locality,
//! distancing), which are undecidable in general and probed on concrete
//! instances.

pub mod empirical;
pub mod exercises;
pub mod syntactic;

pub use empirical::{
    degree, distancing_profile, empirical_locality, locality_profile, DistancingProfile,
    LocalityProfile,
};
pub use exercises::{edge_contraction_bound, observation29_check, production_delay_bound};
pub use syntactic::{
    has_detached_rules, is_binary, is_connected, is_datalog, is_frontier_guarded, is_frontier_one,
    is_guarded, is_linear, is_sticky, is_weakly_acyclic,
};
