//! **E10 — Exercises 22/23, Definitions 18–21**: the termination taxonomy
//! across the zoo, as detected by the engine's probes, against the paper's
//! classification.

use std::time::Instant;

use qr_chase::core_term::{all_instances_termination, core_termination, CoreTermBudget};
use qr_classes::{is_binary, is_linear, is_sticky, is_weakly_acyclic};
use qr_core::theories::{ex23, ex28, ex39, ex41, t_a, t_c, t_d, t_p};
use qr_syntax::{parse_instance, Instance, Theory};

use crate::Table;

/// A small probe instance appropriate for each theory's signature.
fn probe_instance(theory: &Theory) -> Instance {
    let sig = theory.signature();
    let has = |name: &str| sig.iter().any(|p| p.name().as_str() == name);
    // The deepest relation of an Example 28 truncation (e3, e2, …).
    let top_ek = sig
        .iter()
        .filter_map(|p| {
            let name = p.name().as_str();
            name.strip_prefix('e')?
                .parse::<usize>()
                .ok()
                .filter(|_| p.arity() == 2)
        })
        .max();
    if has("mother") {
        parse_instance("human(abel).").expect("parses")
    } else if let Some(k) = top_ek {
        parse_instance(&format!("e{k}(a,b).")).expect("parses")
    } else if sig
        .iter()
        .any(|p| p.name().as_str() == "e" && p.arity() == 4)
    {
        parse_instance("e(a,b1,b2,c1). r(a,c1). r(a,c2).").expect("parses")
    } else if sig
        .iter()
        .any(|p| p.name().as_str() == "e" && p.arity() == 3)
    {
        parse_instance("e(a,b,c). r(a,c).").expect("parses")
    } else if sig
        .iter()
        .any(|p| p.name().as_str() == "r" && p.arity() == 4)
    {
        // T_c: only cycles exhibit its non-termination.
        qr_core::theories::cycle(3)
    } else if has("g") {
        parse_instance("g(a,b). g(b,c).").expect("parses")
    } else {
        parse_instance("e(a,b). e(b,c).").expect("parses")
    }
}

/// The E10 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E10  Ex. 22/23, Defs. 18–21 — termination taxonomy over the zoo",
        "T_p: BDD only; Ex.23: +FES; Ex.28: +FES with growing bound; Datalog-free rules AIT iff weakly acyclic",
        &["theory", "linear", "sticky", "binary", "weak-acyc", "AIT probe", "FES probe (c)", "ms"],
    );
    let zoo: Vec<(&str, Theory)> = vec![
        ("T_a (Ex.1)", t_a()),
        ("T_p (Ex.12)", t_p()),
        ("Ex.23", ex23()),
        ("Ex.28 K=3", ex28(3)),
        ("Ex.39 sticky", ex39()),
        ("Ex.41", ex41()),
        ("T_c (Ex.42)", t_c()),
        ("T_d (Def.45)", t_d()),
    ];
    for (name, theory) in zoo {
        let t0 = Instant::now();
        let db = probe_instance(&theory);
        // T_d's chase grows too fast for the default probe depth (and T_d
        // is not FES: no fold onto a prefix exists — the pins trees are
        // rigid); a shallow budget keeps the negative probe cheap.
        let budget = if name.starts_with("T_d") {
            CoreTermBudget {
                max_depth: 2,
                lookahead: 1,
                max_facts: 5_000,
            }
        } else {
            CoreTermBudget::default()
        };
        let ait =
            all_instances_termination(&theory, &db, if name.starts_with("T_d") { 4 } else { 12 });
        let fes = core_termination(&theory, &db, budget);
        t.row(vec![
            name.into(),
            is_linear(&theory).to_string(),
            is_sticky(&theory).to_string(),
            is_binary(&theory).to_string(),
            is_weakly_acyclic(&theory).to_string(),
            ait.map_or("-".into(), |n| format!("stops@{n}")),
            fes.depth().map_or("-".into(), |c| format!("c={c}")),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_classification_matches() {
        // T_p: neither AIT nor FES on the probe instance.
        let tp = t_p();
        let db = probe_instance(&tp);
        assert_eq!(all_instances_termination(&tp, &db, 10), None);
        assert!(!core_termination(&tp, &db, CoreTermBudget::default()).terminates());
        // Ex.23: FES but not AIT.
        let e = ex23();
        let db = probe_instance(&e);
        assert_eq!(all_instances_termination(&e, &db, 10), None);
        assert!(core_termination(&e, &db, CoreTermBudget::default()).terminates());
        // Ex.28: AIT on its probe (finite chain of relations).
        let e28 = ex28(3);
        let db = probe_instance(&e28);
        assert!(all_instances_termination(&e28, &db, 10).is_some());
        assert!(is_weakly_acyclic(&e28));
    }
}
