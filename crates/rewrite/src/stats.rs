//! Per-window saturation observability, mirroring `qr-chase`'s
//! `ChaseStats`.
//!
//! A *window* is one BFS generation of the saturation loop: the set of
//! queries that were queued together before any of their descendants (the
//! batch the barrier engine drains in one `queue.drain(..)`). The
//! pipelined engine reproduces the same boundaries from submission
//! sequence numbers, so window counters are identical across engines and
//! thread counts; only the wall splits vary with the schedule.
//!
//! Wall-split semantics:
//! * `gen_wall` — worker-side time generating piece rewritings (+
//!   speculative cores) for the window's items (summed per item, so it
//!   can exceed the window's elapsed time when several workers overlap);
//! * `merge_wall` — caller-thread time spent on merge decisions (dedup,
//!   subsumption, eviction, budget accounting, tracing);
//! * `wait_wall` — caller-thread time *stalled* waiting for an item's
//!   speculative generation to arrive from a worker. Zero for sequential
//!   runs: inline generation is charged to `gen_wall` only (it is work,
//!   not a stall — an earlier accounting bug double-counted it here, so
//!   1-thread runs reported `wait_ms ≈ gen_ms`);
//! * `overlap_wall` — generation work hidden behind the merge: per item,
//!   `gen_wall - wait_wall` (saturating), summed. Zero for sequential
//!   runs, where nothing overlaps.

use std::time::Duration;

/// Counters and wall splits for one BFS window of the saturation loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Window index (0 = the seed query alone).
    pub window: usize,
    /// Queue depth at the window boundary: items submitted to this window.
    pub items: usize,
    /// Items of this window still alive when their merge turn came.
    pub merged: usize,
    /// Items skipped because an earlier arrival evicted them (their
    /// speculative candidates are discarded uncounted).
    pub dead_skipped: usize,
    /// Candidates counted against `max_generated` during this window.
    pub generated: usize,
    /// Candidates dropped at birth by the generation-side dedup: their
    /// name-independent structural key was already processed this run, so
    /// no kernel entry is acquired and no homomorphism sweep runs.
    pub dedup_hits: usize,
    /// Candidates dropped because a kept query already subsumed them.
    pub subsumption_hits: usize,
    /// Kept queries evicted by more general candidates of this window.
    pub evictions: usize,
    /// Candidates discarded for exceeding `max_atoms`.
    pub oversized: usize,
    /// Candidates accepted into the kept set.
    pub accepted: usize,
    /// Alive kept-set size when the window closed.
    pub kept: usize,
    /// (query atom × head atom) unification attempts made by the
    /// piece-unifier enumeration for this window's merged items.
    pub unifier_probes: usize,
    /// (query atom × head atom) pairings pruned statically by the
    /// piece-unifier index — predicate-mismatched pairs and whole rules
    /// skipped by the 64-bit mask prefilter — for this window's merged
    /// items.
    pub unifier_skipped: usize,
    /// Kept entries returned by the predicate-set trie as compatible with
    /// a candidate (subsumption: subset probes; eviction: superset
    /// probes). These are the only entries that reach the kernel.
    pub trie_probes: usize,
    /// Kept entries the trie pruned before any kernel call (alive entries
    /// minus probes, summed over both sweeps of every candidate).
    pub trie_skipped: usize,
    /// Worker-side generation time for this window's items (summed).
    pub gen_wall: Duration,
    /// Caller-thread merge-decision time.
    pub merge_wall: Duration,
    /// Caller-thread stall waiting for speculative generation results
    /// (zero when generation runs inline on the caller thread).
    pub wait_wall: Duration,
    /// Generation work hidden behind the merge (zero for sequential runs).
    pub overlap_wall: Duration,
}

/// Saturation-run statistics: the worker-pool width and one
/// [`WindowStats`] per BFS window, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Worker-pool width the run was configured with (wall times depend on
    /// it; every counter is identical across thread counts).
    pub threads: usize,
    /// Per-window counters, in window order.
    pub windows: Vec<WindowStats>,
}

impl RewriteStats {
    /// Total candidates counted against `max_generated`.
    pub fn generated(&self) -> usize {
        self.windows.iter().map(|w| w.generated).sum()
    }

    /// Total items merged while alive.
    pub fn merged(&self) -> usize {
        self.windows.iter().map(|w| w.merged).sum()
    }

    /// Total items skipped as evicted before their merge turn.
    pub fn dead_skipped(&self) -> usize {
        self.windows.iter().map(|w| w.dead_skipped).sum()
    }

    /// Total candidates dropped at birth by the structural-key dedup.
    pub fn dedup_hits(&self) -> usize {
        self.windows.iter().map(|w| w.dedup_hits).sum()
    }

    /// Total candidates dropped by subsumption.
    pub fn subsumption_hits(&self) -> usize {
        self.windows.iter().map(|w| w.subsumption_hits).sum()
    }

    /// Total kept queries evicted.
    pub fn evictions(&self) -> usize {
        self.windows.iter().map(|w| w.evictions).sum()
    }

    /// Total candidates discarded for exceeding `max_atoms`.
    pub fn oversized(&self) -> usize {
        self.windows.iter().map(|w| w.oversized).sum()
    }

    /// Total candidates accepted into the kept set.
    pub fn accepted(&self) -> usize {
        self.windows.iter().map(|w| w.accepted).sum()
    }

    /// Total piece-unifier unification attempts.
    pub fn unifier_probes(&self) -> usize {
        self.windows.iter().map(|w| w.unifier_probes).sum()
    }

    /// Total pairings pruned by the piece-unifier index.
    pub fn unifier_skipped(&self) -> usize {
        self.windows.iter().map(|w| w.unifier_skipped).sum()
    }

    /// Total kept entries the trie passed to the kernel.
    pub fn trie_probes(&self) -> usize {
        self.windows.iter().map(|w| w.trie_probes).sum()
    }

    /// Total kept entries the trie pruned before any kernel call.
    pub fn trie_skipped(&self) -> usize {
        self.windows.iter().map(|w| w.trie_skipped).sum()
    }

    /// Total worker-side generation time.
    pub fn gen_wall(&self) -> Duration {
        self.windows.iter().map(|w| w.gen_wall).sum()
    }

    /// Total caller-thread merge-decision time.
    pub fn merge_wall(&self) -> Duration {
        self.windows.iter().map(|w| w.merge_wall).sum()
    }

    /// Total caller-thread stall waiting for generation results.
    pub fn wait_wall(&self) -> Duration {
        self.windows.iter().map(|w| w.wait_wall).sum()
    }

    /// Total generation work hidden behind merges (see
    /// [`WindowStats::overlap_wall`]).
    pub fn overlap_wall(&self) -> Duration {
        self.windows.iter().map(|w| w.overlap_wall).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_windows() {
        let stats = RewriteStats {
            threads: 4,
            windows: vec![
                WindowStats {
                    window: 0,
                    items: 1,
                    merged: 1,
                    generated: 3,
                    dedup_hits: 1,
                    subsumption_hits: 1,
                    accepted: 1,
                    kept: 2,
                    unifier_probes: 9,
                    unifier_skipped: 3,
                    trie_probes: 2,
                    trie_skipped: 1,
                    gen_wall: Duration::from_millis(10),
                    merge_wall: Duration::from_millis(2),
                    wait_wall: Duration::from_millis(4),
                    overlap_wall: Duration::from_millis(6),
                    ..WindowStats::default()
                },
                WindowStats {
                    window: 1,
                    items: 2,
                    merged: 1,
                    dead_skipped: 1,
                    generated: 5,
                    evictions: 1,
                    oversized: 2,
                    accepted: 1,
                    kept: 2,
                    unifier_probes: 4,
                    unifier_skipped: 8,
                    trie_probes: 1,
                    trie_skipped: 2,
                    gen_wall: Duration::from_millis(6),
                    merge_wall: Duration::from_millis(1),
                    wait_wall: Duration::from_millis(6),
                    overlap_wall: Duration::ZERO,
                    ..WindowStats::default()
                },
            ],
        };
        assert_eq!(stats.generated(), 8);
        assert_eq!(stats.merged(), 2);
        assert_eq!(stats.dead_skipped(), 1);
        assert_eq!(stats.dedup_hits(), 1);
        assert_eq!(stats.subsumption_hits(), 1);
        assert_eq!(stats.evictions(), 1);
        assert_eq!(stats.oversized(), 2);
        assert_eq!(stats.accepted(), 2);
        assert_eq!(stats.unifier_probes(), 13);
        assert_eq!(stats.unifier_skipped(), 11);
        assert_eq!(stats.trie_probes(), 3);
        assert_eq!(stats.trie_skipped(), 3);
        assert_eq!(stats.gen_wall(), Duration::from_millis(16));
        assert_eq!(stats.merge_wall(), Duration::from_millis(3));
        assert_eq!(stats.wait_wall(), Duration::from_millis(10));
        assert_eq!(stats.overlap_wall(), Duration::from_millis(6));
    }
}
