//! Piece unifiers: one backward-resolution step of the rewriting procedure.
//!
//! Given a CQ `Q` and a rule `ρ : B ⇒ ∃w̄ H`, a **piece unifier** selects a
//! non-empty subset `Q' ⊆ Q` (the *piece*), maps each atom of `Q'` to a
//! head atom with the same predicate, and unifies argument-wise. The
//! unifier is *admissible* when, in the induced partition of terms:
//!
//! * no class contains two distinct constants;
//! * a class containing an existential variable `w ∈ w̄` contains no
//!   constant, no universal (frontier) variable of the rule, no second
//!   existential variable, and only query variables that are **non-shared**
//!   (not answer variables, and occurring exclusively inside the piece) —
//!   this is exactly what the Skolem chase can realize: a witness term
//!   `f_i^τ(…)` equals no constant, no frontier term, and no other
//!   witness;
//! * a class containing an answer variable contains no constant (a
//!   documented completeness restriction; the theories of the paper have
//!   constant-free rules, where no completeness is lost).
//!
//! The rewriting step replaces `Q'` by `u(B)` and applies `u` to the rest.

use std::collections::{HashMap, HashSet};

use qr_hom::kernel::pred_mask_bit;
use qr_syntax::query::{ConjunctiveQuery, QAtom, QTerm, Var};
use qr_syntax::{Pred, Symbol, Tgd, Theory};

/// A successful piece unification, carrying the rewritten query.
#[derive(Clone, Debug)]
pub struct PieceUnifier {
    /// Indices (into the input query's atom list) of the unified piece.
    pub piece: Vec<usize>,
    /// The unification choices behind `piece`: for each piece atom (in
    /// ascending query-atom order) the index of the head atom it unified
    /// with. Replaying these pairs through [`apply_piece_unifier`]
    /// rebuilds `result` exactly (same atoms, same variable indices) —
    /// the replayable witness a rewriting certificate records.
    pub unified: Vec<(usize, usize)>,
    /// The rewritten query (canonicalized).
    pub result: ConjunctiveQuery,
}

/// Per-rule piece-unifier index: the head's 64-bit predicate mask (the
/// same bit assignment as the homomorphism kernel's prefilter) and, per
/// head predicate, the head-atom indices carrying it (in head order, so
/// enumeration order is unchanged). Built once per saturation via
/// [`TheoryIndex::new`]; a query atom then consults only same-predicate
/// head atoms instead of scanning the whole head, and a whole rule is
/// skipped when its head mask shares no bit with the query's mask.
pub struct RuleIndex {
    mask: u64,
    head_len: usize,
    by_pred: HashMap<Pred, Vec<usize>>,
}

impl RuleIndex {
    /// Indexes one rule's head.
    pub fn new(rule: &Tgd) -> RuleIndex {
        let mut mask = 0u64;
        let mut by_pred: HashMap<Pred, Vec<usize>> = HashMap::new();
        for (i, h) in rule.head().iter().enumerate() {
            mask |= pred_mask_bit(&h.pred);
            by_pred.entry(h.pred).or_default().push(i);
        }
        RuleIndex {
            mask,
            head_len: rule.head().len(),
            by_pred,
        }
    }

    /// The head's predicate-occupancy mask.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of head atoms (for accounting skipped pairings).
    pub fn head_len(&self) -> usize {
        self.head_len
    }
}

/// One [`RuleIndex`] per rule of a theory, in rule order.
pub struct TheoryIndex {
    rules: Vec<RuleIndex>,
}

impl TheoryIndex {
    /// Indexes every rule head of `theory`.
    pub fn new(theory: &Theory) -> TheoryIndex {
        TheoryIndex {
            rules: theory.rules().iter().map(RuleIndex::new).collect(),
        }
    }

    /// The index of rule `i` (theory rule order).
    pub fn rule(&self, i: usize) -> &RuleIndex {
        &self.rules[i]
    }

    /// The per-rule indexes, in theory rule order.
    pub fn rules(&self) -> &[RuleIndex] {
        &self.rules
    }
}

/// The query-side counterpart of [`RuleIndex::mask`]: the predicate
/// occupancy mask over the query's atoms.
pub fn query_pred_mask(q: &ConjunctiveQuery) -> u64 {
    q.atoms()
        .iter()
        .fold(0u64, |m, a| m | pred_mask_bit(&a.pred))
}

/// What the piece-unifier index did for one enumeration: `probes` counts
/// (query atom × head atom) unification attempts actually made, `skipped`
/// counts pairings pruned statically — predicate-mismatched pairs within a
/// consulted rule, plus the full cross-product of rules the mask prefilter
/// skipped outright.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnifyCounters {
    /// Unification attempts made at descend branch points.
    pub probes: usize,
    /// Pairings never attempted thanks to the index.
    pub skipped: usize,
}

/// A small union–find over dense indices.
#[derive(Clone)]
struct Uf {
    parent: Vec<usize>,
}

impl Uf {
    fn new(n: usize) -> Uf {
        Uf {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The combined term space for a (query, rule) pair.
struct Space<'a> {
    q: &'a ConjunctiveQuery,
    rule: &'a Tgd,
    nq: usize,
    nr: usize,
    consts: Vec<Symbol>,
    const_ids: HashMap<Symbol, usize>,
    is_exist: Vec<bool>,  // rule vars
    is_answer: Vec<bool>, // query vars
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Node {
    QVar(Var),
    RVar(Var),
    Const(Symbol),
}

impl<'a> Space<'a> {
    fn new(q: &'a ConjunctiveQuery, rule: &'a Tgd) -> Space<'a> {
        let nq = q.var_names().len();
        let nr = rule.var_names().len();
        let mut is_exist = vec![false; nr];
        for v in rule.existential_vars() {
            is_exist[v.index()] = true;
        }
        let mut is_answer = vec![false; nq];
        for v in q.answer_vars() {
            is_answer[v.index()] = true;
        }
        let mut consts = Vec::new();
        let mut const_ids = HashMap::new();
        let mut add_consts = |atoms: &[QAtom]| {
            for a in atoms {
                for t in a.args.iter() {
                    if let QTerm::Const(c) = t {
                        if !const_ids.contains_key(c) {
                            const_ids.insert(*c, consts.len());
                            consts.push(*c);
                        }
                    }
                }
            }
        };
        add_consts(q.atoms());
        add_consts(rule.body());
        add_consts(rule.head());
        Space {
            q,
            rule,
            nq,
            nr,
            consts,
            const_ids,
            is_exist,
            is_answer,
        }
    }

    fn total(&self) -> usize {
        self.nq + self.nr + self.consts.len()
    }

    fn id_of_q(&self, t: &QTerm) -> usize {
        match t {
            QTerm::Var(v) => v.index(),
            QTerm::Const(c) => self.nq + self.nr + self.const_ids[c],
        }
    }

    fn id_of_r(&self, t: &QTerm) -> usize {
        match t {
            QTerm::Var(v) => self.nq + v.index(),
            QTerm::Const(c) => self.nq + self.nr + self.const_ids[c],
        }
    }

    fn node(&self, id: usize) -> Node {
        if id < self.nq {
            Node::QVar(Var(id as u32))
        } else if id < self.nq + self.nr {
            Node::RVar(Var((id - self.nq) as u32))
        } else {
            Node::Const(self.consts[id - self.nq - self.nr])
        }
    }
}

/// Enumerates all admissible piece unifiers of `q` against `rule` and
/// returns the rewritten queries. Rules with builtin (`true`/`dom`) bodies
/// must be filtered out by the caller.
pub fn piece_rewritings(q: &ConjunctiveQuery, rule: &Tgd) -> Vec<PieceUnifier> {
    piece_rewritings_indexed(
        q,
        rule,
        &RuleIndex::new(rule),
        usize::MAX,
        &mut UnifyCounters::default(),
    )
}

/// [`piece_rewritings`] with a prebuilt [`RuleIndex`], a result cap, and
/// counter accumulation. At most `cap` unifiers are returned; enumeration
/// stops the moment the cap is reached (deterministic: the exploration
/// order is fixed, so equal caps give equal prefixes of the uncapped
/// result list). `ridx` must index `rule`.
pub fn piece_rewritings_indexed(
    q: &ConjunctiveQuery,
    rule: &Tgd,
    ridx: &RuleIndex,
    cap: usize,
    counters: &mut UnifyCounters,
) -> Vec<PieceUnifier> {
    // Static pairings the per-predicate head lists prune: for each query
    // atom, the head atoms of a different predicate are never attempted.
    for a in q.atoms() {
        counters.skipped += ridx.head_len - ridx.by_pred.get(&a.pred).map_or(0, |h| h.len());
    }
    let mut out: Vec<PieceUnifier> = Vec::new();
    if cap == 0 {
        return out;
    }
    let space = Space::new(q, rule);
    let mut seen: HashSet<ConjunctiveQuery> = HashSet::new();
    let uf = Uf::new(space.total());
    let mut probes = 0usize;
    descend(
        &space,
        0,
        Vec::new(),
        uf,
        ridx,
        &mut probes,
        &mut |piece, uf| {
            if let Some(result) = finish(&space, piece, uf.clone()) {
                if seen.insert(result.canonical()) {
                    out.push(PieceUnifier {
                        piece: piece.iter().map(|&(ai, _)| ai).collect(),
                        unified: piece.to_vec(),
                        result,
                    });
                }
            }
            out.len() < cap
        },
    );
    counters.probes += probes;
    out
}

/// Recursively decides, per query atom, whether to skip it or unify it with
/// one of the same-predicate head atoms (from the index's per-predicate
/// lists), pruning on hard constant clashes. `emit` returns `false` to
/// stop the enumeration (the result cap was reached); the return value
/// propagates that stop.
fn descend(
    space: &Space<'_>,
    atom_idx: usize,
    piece: Vec<(usize, usize)>,
    uf: Uf,
    ridx: &RuleIndex,
    probes: &mut usize,
    emit: &mut impl FnMut(&[(usize, usize)], &Uf) -> bool,
) -> bool {
    if atom_idx == space.q.atoms().len() {
        if !piece.is_empty() {
            return emit(&piece, &uf);
        }
        return true;
    }
    // Option 1: the atom is not part of the piece.
    if !descend(
        space,
        atom_idx + 1,
        piece.clone(),
        uf.clone(),
        ridx,
        probes,
        emit,
    ) {
        return false;
    }
    // Option 2: unify it with each same-predicate head atom.
    let qatom = &space.q.atoms()[atom_idx];
    let Some(heads) = ridx.by_pred.get(&qatom.pred) else {
        return true;
    };
    for &hi in heads {
        let hatom = &space.rule.head()[hi];
        *probes += 1;
        let mut uf2 = uf.clone();
        let mut ok = true;
        for (qt, ht) in qatom.args.iter().zip(hatom.args.iter()) {
            uf2.union(space.id_of_q(qt), space.id_of_r(ht));
        }
        // Early prune: two distinct constants in one class.
        let mut class_const: HashMap<usize, Symbol> = HashMap::new();
        for (ci, c) in space.consts.iter().enumerate() {
            let root = uf2.find(space.nq + space.nr + ci);
            if let Some(prev) = class_const.insert(root, *c) {
                if prev != *c {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            let mut piece2 = piece.clone();
            piece2.push((atom_idx, hi));
            if !descend(space, atom_idx + 1, piece2, uf2, ridx, probes, emit) {
                return false;
            }
        }
    }
    true
}

/// Replays a recorded piece unification: unions exactly the
/// `(query atom, head atom)` pairs of `unified` and runs the same
/// admissibility validation and query construction as the enumeration.
/// Zero search — the pairs *are* the derivation witness. Returns `None`
/// when the pairs are out of range, not strictly ascending in the query
/// atom (the enumeration's shape), predicate-mismatched, or fail
/// admissibility. The result is structurally identical to the
/// enumerated [`PieceUnifier::result`] for the same pairs: same atoms,
/// same answer tuple, same variable indices (only the fresh display
/// names differ).
pub fn apply_piece_unifier(
    q: &ConjunctiveQuery,
    rule: &Tgd,
    unified: &[(usize, usize)],
) -> Option<ConjunctiveQuery> {
    if unified.is_empty() {
        return None;
    }
    let space = Space::new(q, rule);
    let mut uf = Uf::new(space.total());
    let mut last: Option<usize> = None;
    for &(ai, hi) in unified {
        if ai >= q.atoms().len() || hi >= rule.head().len() {
            return None;
        }
        if last.is_some_and(|l| ai <= l) {
            return None;
        }
        last = Some(ai);
        let qatom = &q.atoms()[ai];
        let hatom = &rule.head()[hi];
        if qatom.pred != hatom.pred {
            return None;
        }
        for (qt, ht) in qatom.args.iter().zip(hatom.args.iter()) {
            uf.union(space.id_of_q(qt), space.id_of_r(ht));
        }
    }
    finish(&space, unified, uf)
}

/// Validates the partition and builds the rewritten query.
fn finish(space: &Space<'_>, piece: &[(usize, usize)], mut uf: Uf) -> Option<ConjunctiveQuery> {
    let piece_set: HashSet<usize> = piece.iter().map(|&(ai, _)| ai).collect();
    // Group members by class root.
    let mut classes: HashMap<usize, Vec<Node>> = HashMap::new();
    for id in 0..space.total() {
        let root = uf.find(id);
        classes.entry(root).or_default().push(space.node(id));
    }

    // Query variables whose every occurrence lies inside the piece.
    let confined: HashSet<Var> = {
        let mut all: HashSet<Var> = space.q.vars().into_iter().collect();
        for (i, a) in space.q.atoms().iter().enumerate() {
            if !piece_set.contains(&i) {
                for v in a.vars() {
                    all.remove(&v);
                }
            }
        }
        all
    };

    let mut subst: HashMap<usize, QTerm> = HashMap::new(); // class root -> representative
    for (root, members) in &classes {
        let mut constants: Vec<Symbol> = Vec::new();
        let mut exist: Vec<Var> = Vec::new();
        let mut universal: Vec<Var> = Vec::new();
        let mut answers: Vec<Var> = Vec::new();
        let mut qvars: Vec<Var> = Vec::new();
        for m in members {
            match m {
                Node::Const(c) => {
                    if !constants.contains(c) {
                        constants.push(*c);
                    }
                }
                Node::RVar(v) => {
                    if space.is_exist[v.index()] {
                        exist.push(*v);
                    } else {
                        universal.push(*v);
                    }
                }
                Node::QVar(v) => {
                    if space.is_answer[v.index()] {
                        answers.push(*v);
                    } else {
                        qvars.push(*v);
                    }
                }
            }
        }
        if constants.len() > 1 {
            return None;
        }
        if !exist.is_empty() {
            // Admissibility of existential classes (see module docs).
            let distinct_exist: HashSet<Var> = exist.iter().copied().collect();
            if distinct_exist.len() > 1
                || !constants.is_empty()
                || !universal.is_empty()
                || !answers.is_empty()
                || qvars.iter().any(|v| !confined.contains(v))
            {
                return None;
            }
            // Existential classes vanish with the piece; no representative.
            continue;
        }
        if !answers.is_empty() && !constants.is_empty() {
            // Documented restriction: answer variables never unify with
            // constants (constant-free rules lose nothing).
            return None;
        }
        let rep = if let Some(c) = constants.first() {
            QTerm::Const(*c)
        } else if let Some(v) = answers.first() {
            QTerm::Var(*v)
        } else if let Some(v) = qvars.first() {
            QTerm::Var(*v)
        } else if let Some(v) = universal.first() {
            QTerm::Var(Var((space.nq + v.index()) as u32))
        } else {
            continue; // singleton constant class already covered; unreachable
        };
        subst.insert(*root, rep);
    }

    // Build the combined variable table: query vars then rule vars (fresh
    // display names so renderings stay unambiguous).
    let mut names: Vec<Symbol> = space.q.var_names().to_vec();
    for v in space.rule.var_names() {
        names.push(Symbol::fresh(v.as_str()));
    }

    let apply_q = |t: &QTerm, uf: &mut Uf| -> QTerm {
        let root = uf.find(space.id_of_q(t));
        *subst.get(&root).unwrap_or(t)
    };
    let apply_r = |t: &QTerm, uf: &mut Uf| -> QTerm {
        let root = uf.find(space.id_of_r(t));
        subst.get(&root).copied().unwrap_or(match t {
            QTerm::Var(v) => QTerm::Var(Var((space.nq + v.index()) as u32)),
            QTerm::Const(c) => QTerm::Const(*c),
        })
    };

    let mut atoms: Vec<QAtom> = Vec::new();
    for a in space.rule.body() {
        atoms.push(QAtom::new(
            a.pred,
            a.args
                .iter()
                .map(|t| apply_r(t, &mut uf))
                .collect::<Vec<_>>(),
        ));
    }
    for (i, a) in space.q.atoms().iter().enumerate() {
        if piece_set.contains(&i) {
            continue;
        }
        atoms.push(QAtom::new(
            a.pred,
            a.args
                .iter()
                .map(|t| apply_q(t, &mut uf))
                .collect::<Vec<_>>(),
        ));
    }
    if atoms.is_empty() {
        // The whole query was resolved against a body-less rule; callers
        // exclude such rules, so an empty result signals a logic error.
        return None;
    }

    let answer: Vec<Var> = space
        .q
        .answer_vars()
        .iter()
        .map(|v| match apply_q(&QTerm::Var(*v), &mut uf) {
            QTerm::Var(u) => u,
            QTerm::Const(_) => unreachable!("answer/constant classes are rejected"),
        })
        .collect();

    // Answer variables must still occur in the rewritten body (they do, by
    // admissibility: they never sit in existential classes). Guard anyway.
    if answer.iter().any(|v| !atoms.iter().any(|a| a.mentions(*v))) {
        return None;
    }

    Some(ConjunctiveQuery::new(answer, atoms, names).canonical())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_query, parse_theory};

    fn rewrites(theory_src: &str, query_src: &str) -> Vec<String> {
        let t = parse_theory(theory_src).unwrap();
        let q = parse_query(query_src).unwrap();
        let mut out: Vec<String> = piece_rewritings(&q, &t.rules()[0])
            .into_iter()
            .map(|p| p.result.render())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn atomic_rewriting_against_linear_rule() {
        // human(X) -> mother(X,Y): ?(X) :- mother(X,Y) rewrites to human(X).
        let rs = rewrites("human(X) -> mother(X,Y).", "?(X) :- mother(X,Y).");
        assert_eq!(rs.len(), 1);
        assert!(rs[0].contains("human"));
    }

    #[test]
    fn existential_position_blocks_shared_variable() {
        // Y is existential in the head; the query shares Y between two
        // atoms, so only pieces containing both mother-atoms may unify Y.
        let t = parse_theory("human(X) -> mother(X,Y).").unwrap();
        let q = parse_query("? :- mother(A,B), father(B,C).").unwrap();
        // B also occurs in father(B,C), which can never join the piece.
        assert!(piece_rewritings(&q, &t.rules()[0]).is_empty());
    }

    #[test]
    fn answer_variable_blocks_existential_unification() {
        let t = parse_theory("human(X) -> mother(X,Y).").unwrap();
        let q = parse_query("?(B) :- mother(A,B).").unwrap();
        assert!(piece_rewritings(&q, &t.rules()[0]).is_empty());
    }

    #[test]
    fn frontier_unification_allowed() {
        let t = parse_theory("human(X) -> mother(X,Y).").unwrap();
        let q = parse_query("?(A) :- mother(A,B).").unwrap();
        let rs = piece_rewritings(&q, &t.rules()[0]);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].result.render(), "?(A) :- human(A)");
    }

    #[test]
    fn two_atom_piece_through_multi_head() {
        // Multi-head rule: p(X) -> r(X,Z), g(X,Z); query with shared Z needs
        // both atoms in one piece.
        let t = parse_theory("p(X) -> r(X,Z), g(X,Z).").unwrap();
        let q = parse_query("? :- r(U,V), g(U,V).").unwrap();
        let rs = piece_rewritings(&q, &t.rules()[0]);
        assert!(rs.iter().any(|p| p.piece.len() == 2));
        assert!(rs.iter().any(|p| p.result.render() == "? :- p(U)"));
    }

    #[test]
    fn distinct_existentials_do_not_merge() {
        // p(X) -> r(Z,Z2): query r(U,U) must not unify (Z ≠ Z2 in chase).
        let t = parse_theory("p(X) -> r(Z,Z2).").unwrap();
        let q = parse_query("? :- r(U,U).").unwrap();
        assert!(piece_rewritings(&q, &t.rules()[0]).is_empty());
        // But the loop-headed rule p(X) -> r(Z,Z) does unify.
        let t2 = parse_theory("p(X) -> r(Z,Z).").unwrap();
        let rs = piece_rewritings(&q, &t2.rules()[0]);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn constants_unify_with_frontier() {
        let t = parse_theory("human(X) -> mother(X,Y).").unwrap();
        let q = parse_query("? :- mother(abel, M).").unwrap();
        let rs = piece_rewritings(&q, &t.rules()[0]);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].result.render(), "? :- human(abel)");
    }

    #[test]
    fn constant_clash_rejected() {
        let t = parse_theory("p(X) -> r(abel, X).").unwrap();
        let q = parse_query("? :- r(cain, U).").unwrap();
        assert!(piece_rewritings(&q, &t.rules()[0]).is_empty());
    }

    #[test]
    fn datalog_rule_rewrites_in_place() {
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let q = parse_query("? :- e(a, b).").unwrap();
        let rs = piece_rewritings(&q, &t.rules()[0]);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].result.size(), 2);
    }

    #[test]
    fn indexed_enumeration_matches_unindexed() {
        let t = parse_theory("p(X) -> r(X,Z), g(X,Z).").unwrap();
        let q = parse_query("? :- r(U,V), g(U,V), s(U).").unwrap();
        let rule = &t.rules()[0];
        let full: Vec<String> = piece_rewritings(&q, rule)
            .iter()
            .map(|p| p.result.render())
            .collect();
        let ridx = RuleIndex::new(rule);
        let mut c = UnifyCounters::default();
        let indexed: Vec<String> = piece_rewritings_indexed(&q, rule, &ridx, usize::MAX, &mut c)
            .iter()
            .map(|p| p.result.render())
            .collect();
        assert_eq!(indexed, full, "same unifiers in the same order");
        assert!(c.probes > 0, "attempts are counted");
        // s(U) never meets either head atom (2 pairings); the r-atom skips
        // the g-head and vice versa (1 each).
        assert_eq!(c.skipped, 4);
    }

    /// Render with every variable renamed to its order of first
    /// appearance: the enumeration mints globally fresh names per call,
    /// so raw renders differ across otherwise identical runs.
    fn normalized(pu: &PieceUnifier) -> String {
        fn flush(tok: &mut String, out: &mut String, map: &mut Vec<String>) {
            if tok.is_empty() {
                return;
            }
            if tok.chars().next().unwrap().is_uppercase() {
                let i = match map.iter().position(|t| t == tok.as_str()) {
                    Some(i) => i,
                    None => {
                        map.push(tok.clone());
                        map.len() - 1
                    }
                };
                out.push('V');
                out.push_str(&i.to_string());
            } else {
                out.push_str(tok);
            }
            tok.clear();
        }
        let mut map = Vec::new();
        let mut out = String::new();
        let mut tok = String::new();
        for ch in pu.result.render().chars() {
            if ch.is_alphanumeric() || ch == '_' {
                tok.push(ch);
            } else {
                flush(&mut tok, &mut out, &mut map);
                out.push(ch);
            }
        }
        flush(&mut tok, &mut out, &mut map);
        out
    }

    #[test]
    fn cap_truncates_to_a_prefix() {
        // A datalog head (no existentials), so each query atom rewrites on
        // its own: two unifiers (the both-atoms piece dies on the a=b
        // constant clash).
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let q = parse_query("? :- e(a,b), e(b,c).").unwrap();
        let rule = &t.rules()[0];
        let ridx = RuleIndex::new(rule);
        let full: Vec<String> = piece_rewritings(&q, rule).iter().map(normalized).collect();
        assert!(full.len() >= 2);
        for cap in 0..=full.len() {
            let mut c = UnifyCounters::default();
            let capped: Vec<String> = piece_rewritings_indexed(&q, rule, &ridx, cap, &mut c)
                .iter()
                .map(normalized)
                .collect();
            assert_eq!(capped, full[..cap], "cap {cap} is an exact prefix");
        }
    }

    #[test]
    fn rule_mask_prefilters_disjoint_queries() {
        let t = parse_theory("p(X) -> r(X,Y).").unwrap();
        let ridx = RuleIndex::new(&t.rules()[0]);
        assert_eq!(ridx.head_len(), 1);
        let disjoint = parse_query("? :- s(U).").unwrap();
        assert_eq!(ridx.mask() & query_pred_mask(&disjoint), 0);
        let touching = parse_query("? :- r(U,V), s(U).").unwrap();
        assert_ne!(ridx.mask() & query_pred_mask(&touching), 0);
    }

    #[test]
    fn replaying_recorded_pairs_rebuilds_each_result() {
        let cases = [
            ("p(X) -> r(X,Z), g(X,Z).", "? :- r(U,V), g(U,V), s(U)."),
            ("e(X,Y), e(Y,Z) -> e(X,Z).", "? :- e(a,b), e(b,c)."),
            ("human(X) -> mother(X,Y).", "?(A) :- mother(A,B)."),
            ("p(X) -> r(X,X).", "? :- r(U,V), s(U), s(V)."),
        ];
        for (tsrc, qsrc) in cases {
            let t = parse_theory(tsrc).unwrap();
            let q = parse_query(qsrc).unwrap();
            let rule = &t.rules()[0];
            let pus = piece_rewritings(&q, rule);
            assert!(!pus.is_empty(), "{qsrc}");
            for pu in pus {
                let replayed =
                    apply_piece_unifier(&q, rule, &pu.unified).expect("recorded pairs replay");
                assert_eq!(replayed.atoms(), pu.result.atoms(), "{qsrc}");
                assert_eq!(replayed.answer_vars(), pu.result.answer_vars(), "{qsrc}");
            }
        }
    }

    #[test]
    fn replay_rejects_malformed_pairs() {
        let t = parse_theory("human(X) -> mother(X,Y).").unwrap();
        let q = parse_query("?(A) :- mother(A,B), human(C).").unwrap();
        let rule = &t.rules()[0];
        assert!(apply_piece_unifier(&q, rule, &[]).is_none(), "empty piece");
        assert!(
            apply_piece_unifier(&q, rule, &[(7, 0)]).is_none(),
            "atom out of range"
        );
        assert!(
            apply_piece_unifier(&q, rule, &[(0, 5)]).is_none(),
            "head out of range"
        );
        assert!(
            apply_piece_unifier(&q, rule, &[(0, 0), (0, 0)]).is_none(),
            "non-ascending piece"
        );
        assert!(
            apply_piece_unifier(&q, rule, &[(1, 0)]).is_none(),
            "predicate mismatch"
        );
    }

    #[test]
    fn remaining_atoms_substituted() {
        let t = parse_theory("p(X) -> r(X,X).").unwrap();
        let q = parse_query("? :- r(U,V), s(U), s(V).").unwrap();
        // Unifying r(U,V) with r(X,X) merges U and V.
        let rs = piece_rewritings(&q, &t.rules()[0]);
        assert_eq!(rs.len(), 1);
        let rendered = rs[0].result.render();
        assert_eq!(rs[0].result.size(), 2, "{rendered}");
    }
}
