//! Cross-cutting chase engine properties on randomized inputs: semi-naive
//! ≡ naive, determinism (Skolem naming), complete derivation recording,
//! and prefix monotonicity.

use proptest::prelude::*;

use qr_chase::{chase, chase_all, chase_naive, ChaseBudget, Provenance};
use qr_syntax::{parse_instance, parse_theory, Instance, Theory};

fn edge_instance() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0u8..5, 0u8..5), 1..8).prop_map(|pairs| {
        let mut src = String::new();
        for (a, b) in pairs {
            src.push_str(&format!("e(w{a}, w{b}).\n"));
        }
        parse_instance(&src).unwrap()
    })
}

fn small_theory() -> impl Strategy<Value = Theory> {
    prop_oneof![
        Just(parse_theory("e(X,Y) -> e(Y,Z).").unwrap()),
        Just(parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap()),
        Just(parse_theory("e(X,Y) -> p(Y).\np(X) -> e(X,W).").unwrap()),
        Just(parse_theory("e(X,Y), e(Y,X) -> loopy(X).\nloopy(X) -> e(X,Z).").unwrap()),
        Just(parse_theory("true -> r(X,X).\ndom(X) -> r(X,Z).").unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn semi_naive_equals_naive(theory in small_theory(), db in edge_instance()) {
        let budget = ChaseBudget { max_rounds: 4, max_facts: 50_000 };
        let fast = chase(&theory, &db, budget);
        let slow = chase_naive(&theory, &db, budget);
        prop_assert_eq!(fast.rounds, slow.rounds);
        for i in 0..=fast.rounds {
            prop_assert_eq!(fast.prefix(i), slow.prefix(i), "round {}", i);
        }
    }

    #[test]
    fn chase_is_deterministic(theory in small_theory(), db in edge_instance()) {
        let budget = ChaseBudget { max_rounds: 4, max_facts: 50_000 };
        let a = chase(&theory, &db, budget);
        let b = chase(&theory, &db, budget);
        // Literal equality, including fact order (Skolem naming makes the
        // run a pure function of (T, D, budget)).
        let fa: Vec<_> = a.instance.iter().collect();
        let fb: Vec<_> = b.instance.iter().collect();
        prop_assert_eq!(fa, fb);
    }

    #[test]
    fn prefixes_are_monotone(theory in small_theory(), db in edge_instance()) {
        let ch = chase(&theory, &db, ChaseBudget { max_rounds: 4, max_facts: 50_000 });
        for i in 1..=ch.rounds {
            prop_assert!(ch.prefix(i - 1).subset_of(&ch.prefix(i)));
        }
        prop_assert!(db.subset_of(&ch.prefix(0)));
    }

    #[test]
    fn all_derivations_extend_first(theory in small_theory(), db in edge_instance()) {
        let budget = ChaseBudget { max_rounds: 3, max_facts: 20_000 };
        let full = chase_all(&theory, &db, budget);
        prop_assert_eq!(full.all_derivations.len(), full.instance.len());
        for (i, first) in full.derivations.iter().enumerate() {
            // Input facts (first = None) may still be *re*-derived by rules
            // and collect derivations; derived facts must list their first
            // derivation among all derivations.
            if let Some(d) = first {
                prop_assert!(full.all_derivations[i].contains(d));
            }
        }
        // And the instances agree with the plain run.
        let plain = chase(&theory, &db, budget);
        prop_assert_eq!(plain.instance, full.instance);
    }
}

#[test]
fn all_derivations_on_example_66() {
    // E(a0,a1) + P(b1..b3): the chain fact e(a1, f(a1)) has one derivation
    // per colour choice.
    let t = parse_theory(
        "e(X,Y), r(Z,Y) -> e(Y,V).\n\
         e(X,Y), p(Z) -> r(Z,Y).",
    )
    .unwrap();
    let db = parse_instance("e(a0,a1). p(b1). p(b2). p(b3).").unwrap();
    let ch = chase_all(&t, &db, ChaseBudget::rounds(3));
    let chain_fact_idx = ch
        .instance
        .iter()
        .position(|f| {
            f.pred.name().as_str() == "e" && !f.is_original()
        })
        .expect("derived e-fact exists");
    assert_eq!(ch.all_derivations[chain_fact_idx].len(), 3);
    // Adversarial ancestors can reach beyond any single recorded choice.
    let prov = Provenance::new(&ch);
    let single = prov.ancestors(chain_fact_idx).len();
    let adversarial = prov.adversarial_ancestors(chain_fact_idx, false).len();
    assert!(adversarial >= single);
}

#[test]
fn dom_theories_chase_deterministically() {
    let t = parse_theory("true -> r(X,X).\ndom(X) -> r(X,Z).").unwrap();
    let db = parse_instance("p(a). p(b).").unwrap();
    let a = chase(&t, &db, ChaseBudget::rounds(3));
    let b = chase(&t, &db, ChaseBudget::rounds(3));
    assert_eq!(a.instance, b.instance);
    // The loop element exists and is disjoint from dom(D)'s component.
    let loops: Vec<_> = a
        .instance
        .iter()
        .filter(|f| f.args.len() == 2 && f.args[0] == f.args[1])
        .collect();
    assert!(!loops.is_empty());
    assert!(loops.iter().all(|f| !f.args[0].is_const()));
}
