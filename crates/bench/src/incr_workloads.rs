//! The `chase-incr` workloads: incremental chase maintenance on the
//! E11-scale transitive-closure instances.
//!
//! Each workload starts from a cold chase of one of E11's random graphs,
//! then absorbs a pinned sequence of write batches through
//! [`qr_chase::IncrementalChase`]: eight insert batches that each attach a
//! brand-new pendant node via one existing→fresh edge, followed by one
//! retraction of an earlier insert. The pendant shape pins the
//! seeded-insert fast path by construction: with no edge *leaving* the
//! fresh node, every derivable fact ends in it, so the batch derives only
//! genuinely new facts and no recorded first derivation can change. (An
//! edge *between* existing nodes may instead re-derive an old fact along
//! an earlier path, which correctly falls back to a re-chase.) Under
//! transitive closure every base edge unifies with the rule head, so the
//! final retraction exercises the delete/rederive fallback and its cone
//! accounting.
//!
//! The measured claim is the tentpole's: amortized per-batch maintenance
//! cost stays below one full re-chase of the final base. Wall times carry
//! the machine-dependent version; `candidates_incr` vs `candidates_cold`
//! (matcher candidates enumerated across the insert batches vs by one cold
//! chase of the final fact set) carries the deterministic, drift-gated
//! version of the same comparison.

use std::time::Instant;

use qr_chase::{chase_with, Chase, ChaseBudget, IncrementalChase, WriteBatch};
use qr_exec::Executor;
use qr_syntax::{parse_theory, Fact, Instance, Pred, Symbol, TermId};

use crate::experiments::e11_chase_engine::random_graph;
use crate::report::IncrRun;

/// Insert batches per workload (the final retraction batch rides on top).
const INSERT_BATCHES: usize = 8;

fn edge(a: &str, b: &str) -> Fact {
    Fact::new(
        Pred::new("e", 2),
        vec![
            TermId::constant(Symbol::intern(a)),
            TermId::constant(Symbol::intern(b)),
        ],
    )
}

fn candidates(ch: &Chase) -> u64 {
    ch.stats.rounds.iter().map(|r| r.candidates).sum()
}

/// The pinned incremental-maintenance runs the harness's `--incr` mode
/// measures and `--json` writes into `BENCH_chase.json` (schema chase-v4).
/// Everything but the wall times is deterministic at any thread count: the
/// batch modes, replay/rederive/cone counters and candidate totals are
/// pure functions of (theory, base, batch sequence, budget).
pub fn stats_runs(exec: &Executor) -> Vec<IncrRun> {
    let tc = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").expect("parses");
    let budget = ChaseBudget {
        max_rounds: 12,
        max_facts: 2_000_000,
    };
    let mut out = Vec::new();
    for (n, m) in [(24usize, 40usize), (40, 80), (60, 120)] {
        let base = random_graph(n, m, 0xC0FFEE + n as u64);
        let mut inc = IncrementalChase::new(&tc, &base, budget, exec);
        let mut candidates_incr = 0u64;
        let t0 = Instant::now();
        for i in 0..INSERT_BATCHES {
            let batch =
                WriteBatch::insert([edge(&format!("v{}", (i * 5 + 1) % n), &format!("w{i}"))]);
            inc.apply(&tc, &batch, budget, exec);
            candidates_incr += candidates(inc.chase());
        }
        let retract = WriteBatch::retract([edge("v1", "w0")]);
        inc.apply(&tc, &retract, budget, exec);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let batches = INSERT_BATCHES + 1;

        // Baseline: one cold chase of the final base — what every single
        // batch would cost if writes re-chased the world.
        let mut db = Instance::new();
        for i in 0..inc.chase().round_snapshots[0].facts() {
            db.insert(inc.chase().instance.fact(i).to_fact());
        }
        let t1 = Instant::now();
        let cold = chase_with(&tc, &db, budget, exec);
        let rechase_ms = t1.elapsed().as_secs_f64() * 1e3;
        debug_assert_eq!(cold.instance, *inc.instance());

        out.push(IncrRun {
            workload: format!("TC incr on G({n},{m})"),
            threads: exec.threads(),
            batches,
            wall_ms,
            batch_ms: wall_ms / batches as f64,
            rechase_ms,
            facts_out: inc.instance().len(),
            rounds_run: inc.chase().rounds,
            counters: inc.stats(),
            candidates_incr,
            candidates_cold: candidates(&cold),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs() -> Vec<IncrRun> {
        stats_runs(&Executor::sequential())
    }

    #[test]
    fn every_insert_takes_the_seeded_fast_path() {
        for r in runs() {
            let c = r.counters;
            assert_eq!(c.batches as usize, r.batches, "{}", r.workload);
            assert_eq!(
                c.seeded_inserts as usize, INSERT_BATCHES,
                "{}: pendant-node inserts must seed, not re-chase",
                r.workload
            );
            assert_eq!(c.noops, 0, "{}", r.workload);
            assert_eq!(
                c.rechases, 1,
                "{}: the TC retraction falls back to delete/rederive",
                r.workload
            );
            assert!(
                c.cone_facts > 0,
                "{}: retracting an absorbed edge invalidates derived paths",
                r.workload
            );
            assert!(c.rederived_facts > 0, "{}", r.workload);
        }
    }

    #[test]
    fn incremental_enumeration_beats_per_batch_rechase() {
        for r in runs() {
            // The deterministic form of the amortized-cost claim: all the
            // insert batches together enumerate fewer candidates than
            // re-chasing the final base once per batch would.
            assert!(
                r.candidates_incr < r.candidates_cold * INSERT_BATCHES as u64,
                "{}: incremental candidates {} vs {} per-batch-rechase",
                r.workload,
                r.candidates_incr,
                r.candidates_cold * INSERT_BATCHES as u64
            );
            assert!(r.candidates_cold > 0, "{}", r.workload);
        }
    }

    #[test]
    fn counters_are_thread_invariant() {
        let seq = runs();
        let par = stats_runs(&Executor::with_threads(4));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.counters, b.counters, "{}", a.workload);
            assert_eq!(a.candidates_incr, b.candidates_incr, "{}", a.workload);
            assert_eq!(a.candidates_cold, b.candidates_cold, "{}", a.workload);
            assert_eq!(a.facts_out, b.facts_out, "{}", a.workload);
            assert_eq!(a.rounds_run, b.rounds_run, "{}", a.workload);
        }
    }
}
