//! Operation-level edge cases of the marked-query process (Definitions
//! 56–58 and the K-colour generalization).

use query_rewritability::core::marked::{
    rewrite_td, rewrite_tdk, ColorMap, MarkedQuery, StepResult,
};
use query_rewritability::hom::containment::equivalent;
use query_rewritability::prelude::*;

const G: u8 = 1;
const R: u8 = 2;

#[test]
fn cut_removes_a_dangling_edge() {
    // marked A --g--> unmarked B (maximal): cut leaves the edge-less query.
    let q = MarkedQuery::new(2, [(G, 0, 1)], [0], vec![0]);
    assert!(q.is_properly_marked() && q.is_live());
    match q.step() {
        StepResult::Replaced(qs) => {
            assert_eq!(qs.len(), 1);
            assert!(qs[0].edges().is_empty());
            assert!(qs[0].is_totally_marked());
        }
        other => panic!("expected cut, got {other:?}"),
    }
}

#[test]
fn fuse_merges_same_colour_sources() {
    // g(A,X), g(B,X) with X unmarked maximal: A and B must coincide.
    let q = MarkedQuery::new(
        2,
        [(G, 0, 2), (G, 1, 2), (R, 3, 0), (R, 3, 1)],
        [0, 1, 3],
        vec![3],
    );
    assert!(q.is_properly_marked());
    match q.step() {
        StepResult::Replaced(qs) => {
            assert_eq!(qs.len(), 1);
            // A and B merged: the two r-edges collapse too.
            assert_eq!(qs[0].count(R), 1);
            assert_eq!(qs[0].count(G), 1);
        }
        other => panic!("expected fuse, got {other:?}"),
    }
}

#[test]
fn reduce_produces_at_most_three_proper_markings() {
    // r(A,X), g(B,X) with X unmarked maximal, A and B unmarked... A,B must
    // be unmarked-compatible: keep them unmarked via a marked anchor.
    let q = MarkedQuery::new(
        2,
        [(R, 0, 2), (G, 1, 2), (G, 3, 0), (G, 3, 1)],
        [3],
        vec![3],
    );
    assert!(q.is_properly_marked(), "{q:?}");
    match q.step() {
        StepResult::Replaced(qs) => {
            assert!(!qs.is_empty() && qs.len() <= 3, "got {}", qs.len());
            for nq in &qs {
                assert!(nq.is_properly_marked());
                // x is gone; the grid body pattern appeared.
                assert_eq!(nq.count(R), 1);
                assert_eq!(nq.count(G), 4);
            }
        }
        other => panic!("expected reduce, got {other:?}"),
    }
}

#[test]
fn reduce_into_marked_target_forces_markings() {
    // r(A,X), g(B,X) with A marked: the new green chain ends at A, so the
    // fresh variables are forced marked by condition (i).
    let q = MarkedQuery::new(2, [(R, 0, 2), (G, 1, 2), (G, 0, 1)], [0, 1], vec![0]);
    assert!(q.is_properly_marked());
    match q.step() {
        StepResult::Replaced(qs) => {
            for nq in &qs {
                assert!(nq.is_properly_marked());
            }
            // Only the fully marked variant survives: g(x'',A) into marked
            // A forces x'' marked, which forces x' marked.
            assert_eq!(qs.len(), 1);
            assert!(qs[0].is_totally_marked());
        }
        other => panic!("expected reduce, got {other:?}"),
    }
}

#[test]
fn non_adjacent_profile_is_dropped_in_k3() {
    // i3(A,X), i1(B,X): no chase term of T_d^3 has in-edges of colours
    // {3, 1}, and the loop element is unreachable from marked variables:
    // the query is unsatisfiable.
    let q = MarkedQuery::new(
        3,
        [(3, 0, 2), (1, 1, 2), (1, 3, 0), (1, 3, 1)],
        [3],
        vec![3],
    );
    assert!(q.is_properly_marked() || !q.is_properly_marked()); // profile checked in step
    match q.step() {
        StepResult::Dropped => {}
        other => panic!("expected drop, got {other:?}"),
    }
}

#[test]
fn adjacent_profiles_reduce_at_every_level_of_k3() {
    for (hi, lo) in [(2u8, 1u8), (3, 2)] {
        let q = MarkedQuery::new(
            3,
            [(hi, 0, 2), (lo, 1, 2), (lo, 3, 0), (lo, 3, 1)],
            [3],
            vec![3],
        );
        match q.step() {
            StepResult::Replaced(qs) => {
                for nq in &qs {
                    assert_eq!(nq.count(hi), 1, "level ({hi},{lo})");
                }
            }
            other => panic!("expected reduce at ({hi},{lo}), got {other:?}"),
        }
    }
}

#[test]
fn true_disjunct_reported() {
    // ?(A) :- g(A,B): rewriting contains the trivial disjunct because every
    // domain element grows a green edge (rule pins).
    let q = parse_query("?(A) :- g(A, B).").unwrap();
    let r = rewrite_td(&q, 1000).unwrap();
    assert!(r.has_true_disjunct);
}

#[test]
fn red_query_rewrites_like_green() {
    // Colour symmetry at the top level: ?(A) :- r(A,B) also cuts to true.
    let q = parse_query("?(A) :- r(A, B).").unwrap();
    let r = rewrite_td(&q, 1000).unwrap();
    assert!(r.has_true_disjunct);
}

#[test]
fn fully_marked_query_is_its_own_rewriting() {
    // A query between two answer variables over g: the only disjuncts are
    // over D (no chase term can be an interior, by Observation 50).
    let q = parse_query("?(A,B) :- g(A,C), g(C,B).").unwrap();
    let r = rewrite_td(&q, 10_000).unwrap();
    assert!(!r.has_true_disjunct);
    assert_eq!(r.disjuncts.len(), 1);
    assert!(equivalent(&r.disjuncts[0], &q));
}

#[test]
fn k1_theory_only_cuts() {
    // T_d^1 has no grid rule: every unmarked variable is eventually cut.
    let q = parse_query("?(A) :- i1(A,B), i1(B,C).").unwrap();
    let r = rewrite_tdk(1, &q, 1000).unwrap();
    assert!(r.has_true_disjunct);
    let _ = ColorMap::tdk(1);
}
