//! Located, structured check failures.
//!
//! Every rejection names the certificate it happened in and what was
//! wrong there — mirroring how [`qr_storage::DecodeError`] locates codec
//! failures by byte offset. The checker never panics on malformed input:
//! every way a certificate can lie maps to a [`CheckErrorKind`].

use std::fmt;

/// What a certificate got wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckErrorKind {
    /// A rewrite bundle with no certificates at all (no seed node).
    EmptyBundle,
    /// Node 0 must be the seed and carries no step.
    SeedHasStep,
    /// A non-seed node without a recorded step.
    MissingStep,
    /// A step whose parent is not an earlier node — the chain must be
    /// well-founded (ground out at the seed).
    ParentNotEarlier { parent: u32 },
    /// A rule index outside the theory.
    RuleOutOfRange { rule: u32, rules: usize },
    /// The recorded piece unifier does not replay: the `(query atom,
    /// head atom)` pairs are out of range, out of order, predicate-
    /// mismatched, or inadmissible.
    UnifierRejected,
    /// An answer-arity mismatch between map source and target.
    AnswerArity { expected: usize, got: usize },
    /// A variable map of the wrong length for its source query.
    MapLength { expected: usize, got: usize },
    /// A variable map that does not send answer position `position` to
    /// the target's answer variable at that position.
    AnswerMismatch { position: usize },
    /// The image of source atom `atom` under the map is not an atom of
    /// the target query.
    AtomImageMissing { atom: usize },
    /// The bundle's final-disjunct list disagrees with the UCQ's length.
    FinalCount { expected: usize, got: usize },
    /// A final-disjunct entry referencing a node that does not exist.
    FinalOutOfRange { node: u32 },
    /// UCQ disjunct `cert` is not literally the referenced node's query.
    FinalMismatch,
    /// The chase bundle's base does not fit the instance.
    BaseMismatch { base: u32, facts: usize },
    /// The chase bundle does not cover exactly the derived facts.
    CertCount { expected: usize, got: usize },
    /// A chase certificate out of fact order (`certs[k].fact` must be
    /// `base + k`).
    FactIndexMismatch { expected: u32, got: u32 },
    /// A frontier fact already present in the instance it extends — the
    /// certificate indices cannot align.
    FrontierDuplicate { index: u32 },
    /// Wrong number of trigger facts for the rule's regular body atoms.
    TriggerCount { expected: usize, got: usize },
    /// A trigger fact index not strictly below the derived fact —
    /// well-foundedness is by fact-index ordering.
    TriggerNotEarlier { slot: usize, index: u32 },
    /// Trigger slot `slot` does not unify with its body atom (predicate
    /// mismatch, constant clash, or inconsistent variable binding).
    TriggerClash { slot: usize },
    /// Wrong number of `dom` witnesses for the rule's `dom` body atoms.
    DomCount { expected: usize, got: usize },
    /// A `dom` witness fact index not strictly below the derived fact.
    DomWitnessNotEarlier { slot: usize, index: u32 },
    /// A `dom` witness position outside its witness fact.
    DomWitnessOutOfRange { slot: usize },
    /// The witnessed term clashes with the `dom` atom's argument.
    DomMismatch { slot: usize },
    /// A head variable left unbound after trigger and `dom` resolution —
    /// the certificate cannot instantiate the rule head.
    UnboundVariable { var: u32 },
    /// Replaying the rule head does not produce the certified fact.
    FactNotInHead,
}

impl fmt::Display for CheckErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CheckErrorKind::*;
        match self {
            EmptyBundle => write!(f, "bundle has no certificates"),
            SeedHasStep => write!(f, "seed node records a rewrite step"),
            MissingStep => write!(f, "non-seed node records no rewrite step"),
            ParentNotEarlier { parent } => write!(f, "parent node {parent} is not earlier"),
            RuleOutOfRange { rule, rules } => {
                write!(f, "rule {rule} out of range (theory has {rules})")
            }
            UnifierRejected => write!(f, "recorded piece unifier does not replay"),
            AnswerArity { expected, got } => {
                write!(f, "answer arity mismatch (expected {expected}, got {got})")
            }
            MapLength { expected, got } => {
                write!(
                    f,
                    "variable map length {got} (source has {expected} variables)"
                )
            }
            AnswerMismatch { position } => {
                write!(f, "answer position {position} is not mapped positionally")
            }
            AtomImageMissing { atom } => {
                write!(f, "image of atom {atom} is missing from the target query")
            }
            FinalCount { expected, got } => {
                write!(f, "final-disjunct count {got} (UCQ has {expected})")
            }
            FinalOutOfRange { node } => write!(f, "final disjunct references missing node {node}"),
            FinalMismatch => write!(f, "UCQ disjunct differs from its certified query"),
            BaseMismatch { base, facts } => {
                write!(f, "base {base} exceeds the instance's {facts} facts")
            }
            CertCount { expected, got } => {
                write!(f, "{got} certificates for {expected} derived facts")
            }
            FactIndexMismatch { expected, got } => {
                write!(
                    f,
                    "certificate for fact {got} where fact {expected} was expected"
                )
            }
            FrontierDuplicate { index } => {
                write!(f, "frontier fact already present at fact {index}")
            }
            TriggerCount { expected, got } => {
                write!(f, "{got} trigger facts for {expected} regular body atoms")
            }
            TriggerNotEarlier { slot, index } => {
                write!(
                    f,
                    "trigger slot {slot} references fact {index}, not earlier"
                )
            }
            TriggerClash { slot } => write!(f, "trigger slot {slot} does not unify"),
            DomCount { expected, got } => {
                write!(f, "{got} dom witnesses for {expected} dom body atoms")
            }
            DomWitnessNotEarlier { slot, index } => {
                write!(f, "dom witness {slot} references fact {index}, not earlier")
            }
            DomWitnessOutOfRange { slot } => {
                write!(f, "dom witness {slot} positions outside its fact")
            }
            DomMismatch { slot } => write!(f, "dom witness {slot} clashes with its atom"),
            UnboundVariable { var } => write!(f, "head variable {var} left unbound"),
            FactNotInHead => write!(f, "replayed head does not contain the certified fact"),
        }
    }
}

/// A rejected certificate: which one, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckError {
    /// Location: the node index (rewrite bundles) or certificate
    /// position (chase bundles) the failure was detected in. Final-
    /// disjunct failures use the disjunct position.
    pub cert: usize,
    /// What went wrong there.
    pub kind: CheckErrorKind,
}

impl CheckError {
    /// An error of `kind` at certificate `cert`.
    pub fn at(cert: usize, kind: CheckErrorKind) -> CheckError {
        CheckError { cert, kind }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate {}: {}", self.cert, self.kind)
    }
}

impl std::error::Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_locates_the_certificate() {
        let e = CheckError::at(7, CheckErrorKind::UnifierRejected);
        assert_eq!(
            e.to_string(),
            "certificate 7: recorded piece unifier does not replay"
        );
        let e = CheckError::at(0, CheckErrorKind::TriggerClash { slot: 2 });
        assert_eq!(
            e.to_string(),
            "certificate 0: trigger slot 2 does not unify"
        );
    }
}
