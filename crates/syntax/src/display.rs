//! Pretty printing for queries and rules.
//!
//! Renderings round-trip through the parser in [`crate::parser`]: variable
//! names are uppercased on output if needed so the Prolog-style convention
//! (variables start with an uppercase letter) is preserved.

use crate::query::{ConjunctiveQuery, QAtom, QTerm, Ucq};
use crate::rule::Tgd;
use crate::symbol::Symbol;

fn display_var_name(names: &[Symbol], v: crate::query::Var) -> String {
    // Sanitize: parser identifiers are [A-Za-z0-9_'], and variables must
    // start uppercase. Fresh symbols like `x#26` become `X_26`.
    let raw = names[v.index()].as_str();
    let mut s: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    match s.chars().next() {
        Some(c) if c.is_ascii_uppercase() || c == '_' => s,
        Some(c) if c.is_ascii_lowercase() => {
            s.replace_range(..1, &c.to_ascii_uppercase().to_string());
            s
        }
        _ => format!("V{}", v.index()),
    }
}

fn render_qterm(names: &[Symbol], t: &QTerm) -> String {
    match t {
        QTerm::Var(v) => display_var_name(names, *v),
        QTerm::Const(c) => c.as_str().to_owned(),
    }
}

/// Renders one atom with the given variable-name table.
pub fn render_qatom(names: &[Symbol], a: &QAtom) -> String {
    let mut out = String::new();
    out.push_str(a.pred.name().as_str());
    out.push('(');
    for (i, t) in a.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_qterm(names, t));
    }
    out.push(')');
    out
}

fn render_atom_list(names: &[Symbol], atoms: &[QAtom]) -> String {
    atoms
        .iter()
        .map(|a| render_qatom(names, a))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders a conjunctive query, e.g. `?(X) :- mother(X,Y), human(Y)`.
pub fn render_cq(q: &ConjunctiveQuery) -> String {
    let names = q.var_names();
    let head = if q.is_boolean() {
        "?".to_owned()
    } else {
        format!(
            "?({})",
            q.answer_vars()
                .iter()
                .map(|v| display_var_name(names, *v))
                .collect::<Vec<_>>()
                .join(",")
        )
    };
    format!("{head} :- {}", render_atom_list(names, q.atoms()))
}

/// Renders a UCQ as one query per line.
pub fn render_ucq(u: &Ucq) -> String {
    u.disjuncts()
        .iter()
        .map(render_cq)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders a rule, e.g. `human(X) -> mother(X,Y)`.
pub fn render_tgd(r: &Tgd) -> String {
    let names = r.var_names();
    let body = if r.body().is_empty() {
        "true".to_owned()
    } else {
        render_atom_list(names, r.body())
    };
    format!("{body} -> {}", render_atom_list(names, r.head()))
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_query, parse_theory};

    #[test]
    fn cq_round_trip() {
        let q = parse_query("?(X) :- mother(X,Y), human(Y).").unwrap();
        let s = q.render();
        let q2 = parse_query(&format!("{s}.")).unwrap();
        assert_eq!(q.canonical(), q2.canonical());
    }

    #[test]
    fn tgd_round_trip() {
        let t =
            parse_theory("human(X) -> mother(X,Y).\ntrue -> r(X,X).\ndom(X) -> r(X,Z).").unwrap();
        let rendered = t.render();
        let t2 = parse_theory(&rendered).unwrap();
        assert_eq!(t.len(), t2.len());
        for (a, b) in t.rules().iter().zip(t2.rules()) {
            assert_eq!(a.body().len(), b.body().len());
            assert_eq!(a.head().len(), b.head().len());
        }
    }
}
