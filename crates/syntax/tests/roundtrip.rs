//! Property tests: renderings of randomly generated theories, queries and
//! instances re-parse to structurally equal objects.

use proptest::prelude::*;

use qr_syntax::{parse_instance, parse_query, parse_theory};

/// A random predicate name (lowercase).
fn pred_name() -> impl Strategy<Value = String> {
    "[a-h]{1,3}".prop_map(|s| s)
}

fn var_name() -> impl Strategy<Value = String> {
    "[A-E][0-9]?".prop_map(|s| s)
}

fn atom() -> impl Strategy<Value = String> {
    (pred_name(), proptest::collection::vec(var_name(), 1..4)).prop_map(|(p, vs)| {
        format!("{p}_{}({})", vs.len(), vs.join(","))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theory_round_trip(bodies in proptest::collection::vec(
        (proptest::collection::vec(atom(), 1..4), proptest::collection::vec(atom(), 1..3)),
        1..5,
    )) {
        let src: String = bodies
            .iter()
            .map(|(b, h)| format!("{} -> {}.\n", b.join(", "), h.join(", ")))
            .collect();
        let Ok(theory) = parse_theory(&src) else {
            // Arity clashes between random atoms are fine — skip.
            return Ok(());
        };
        let rendered = theory.render();
        let theory2 = parse_theory(&rendered).expect("rendering must re-parse");
        prop_assert_eq!(theory.len(), theory2.len());
        for (a, b) in theory.rules().iter().zip(theory2.rules()) {
            prop_assert_eq!(a.body().len(), b.body().len());
            prop_assert_eq!(a.head().len(), b.head().len());
            prop_assert_eq!(a.frontier().len(), b.frontier().len());
            prop_assert_eq!(a.existential_vars().len(), b.existential_vars().len());
        }
    }

    #[test]
    fn query_round_trip(atoms in proptest::collection::vec(atom(), 1..5)) {
        let src = format!("? :- {}.", atoms.join(", "));
        let Ok(q) = parse_query(&src) else { return Ok(()) };
        let rendered = format!("{}.", q.render());
        let q2 = parse_query(&rendered).expect("rendering must re-parse");
        prop_assert_eq!(q.canonical(), q2.canonical());
    }

    #[test]
    fn instance_round_trip(facts in proptest::collection::vec(
        (pred_name(), proptest::collection::vec("[a-z][0-9]?", 1..4)),
        1..8,
    )) {
        let src: String = facts
            .iter()
            .map(|(p, args)| format!("{p}_{}({}).\n", args.len(), args.join(",")))
            .collect();
        let Ok(inst) = parse_instance(&src) else { return Ok(()) };
        // Instances render via Display as `{fact, fact}`; re-render fact by
        // fact instead.
        let rendered: String = inst.iter().map(|f| format!("{f}.\n")).collect();
        let inst2 = parse_instance(&rendered).expect("rendering must re-parse");
        prop_assert_eq!(inst, inst2);
    }

    #[test]
    fn parser_never_panics(src in "[ -~]{0,60}") {
        let _ = parse_theory(&src);
        let _ = parse_query(&src);
        let _ = parse_instance(&src);
    }
}
