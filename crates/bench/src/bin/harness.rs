//! Prints every experiment table of DESIGN.md (E1-E12), streaming each as
//! it completes.
//!
//! Usage: `cargo run -p qr-bench --release --bin harness [e01 e07 ...]`
//! With no arguments all experiments run in order.

use qr_bench::experiments;

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).map(|s| s.to_ascii_lowercase()).collect();
    for (id, build) in experiments::all() {
        if !filters.is_empty() && !filters.iter().any(|f| f == id) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let table = build();
        println!("{table}   [{id} total {:?}]\n", t0.elapsed());
    }
}
