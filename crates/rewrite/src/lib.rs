//! UCQ rewriting for existential rules — the procedure behind the paper's
//! Theorem 1 ("a theory is BDD iff every CQ has a finite, minimal UCQ
//! rewriting").
//!
//! One *rewriting step* resolves a subset of query atoms (a "piece") against
//! the head of a rule through a most-general *piece unifier* ([`unify`]),
//! replacing the piece with the rule body. Saturating a query under all
//! rewriting steps, modulo containment-based subsumption, yields the set
//! `rew(ψ)` of Theorem 1 whenever the process terminates — which it does
//! exactly for the queries/theories the paper calls BDD. The engine
//! therefore runs under an explicit [`RewriteBudget`] and reports
//! [`RewriteOutcome::Complete`] (a genuine finite rewriting — a *witness*
//! of BDD behaviour for this query) or [`RewriteOutcome::Budget`]
//! (divergence evidence).
//!
//! Rules with empty or `dom`-scoped bodies (the paper's `true ⇒ …` rules)
//! are not supported here — the paper itself introduces the *marked-query
//! process* (Sections 10–11, implemented in `qr-core`) to rewrite against
//! such theories.

pub mod cert;
pub mod engine;
pub mod stats;
mod trie;
pub mod unify;

pub use cert::{CertBuilder, RewriteCert, RewriteCertBundle, RewriteStep};
pub use engine::{
    rewrite, rewrite_certified, rewrite_with, rewrite_with_mode, rewrite_with_trace,
    rewrite_with_trace_on, RewriteBudget, RewriteError, RewriteOutcome, Rewriting, SaturationMode,
};
pub use stats::{RewriteStats, WindowStats};
pub use unify::{
    apply_piece_unifier, piece_rewritings, piece_rewritings_indexed, query_pred_mask, PieceUnifier,
    RuleIndex, TheoryIndex, UnifyCounters,
};
