//! A small text format for theories, queries, and instances.
//!
//! * Variables start with an uppercase letter or `_` (Prolog convention);
//!   anything else in term position is a constant.
//! * Rules: `body -> head.` where `body` is `true` or a comma-separated atom
//!   list (possibly using the builtin `dom/1`), e.g.
//!   `r(X,X1), g(X,U), g(U,U1) -> r(U1,Z), g(X1,Z).`
//! * Queries: `?(X,Y) :- e(X,U), e(U,Y).` — Boolean queries use a bare `?`.
//! * Instances: `e(a,b). e(b,c).` — all arguments must be constants.
//! * Comments run from `#` or `%` to end of line.

use std::collections::HashMap;
use std::fmt;

use crate::atom::{Fact, Pred};
use crate::instance::Instance;
use crate::query::{ConjunctiveQuery, QAtom, QTerm, VarPool};
use crate::rule::{Tgd, Theory};
use crate::symbol::Symbol;
use crate::term::TermId;

/// A parse error with 1-based line/column position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Question,
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,
    ColonDash,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

type Spanned = (Tok, usize, usize);

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            while let Some(c) = self.peek() {
                if c == b'#' || c == b'%' {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                } else if c.is_ascii_whitespace() {
                    self.bump();
                } else {
                    break;
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'?' => {
                    self.bump();
                    Tok::Question
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        return Err(self.error("expected '>' after '-'"));
                    }
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::ColonDash
                    } else {
                        return Err(self.error("expected '-' after ':'"));
                    }
                }
                c if c.is_ascii_alphanumeric() || c == b'_' => {
                    let mut ident = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                            ident.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(ident)
                }
                other => {
                    return Err(self.error(format!("unexpected character '{}'", other as char)))
                }
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    arities: HashMap<String, u32>,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: Lexer::new(src).tokens()?,
            pos: 0,
            arities: HashMap::new(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or((1, 1), |(_, l, c)| (*l, *c))
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn pred(&mut self, name: &str, arity: u32) -> Result<Pred, ParseError> {
        match self.arities.get(name) {
            Some(&a) if a != arity => Err(self.error(format!(
                "predicate '{name}' used with arity {arity}, previously {a}"
            ))),
            _ => {
                self.arities.insert(name.to_owned(), arity);
                Ok(Pred::new(name, arity))
            }
        }
    }

    /// Parses `ident` or `ident(t1,…,tk)`; `term` maps an identifier to a QTerm.
    fn atom(&mut self, term: &mut impl FnMut(&str) -> QTerm) -> Result<QAtom, ParseError> {
        let name = self.ident("a predicate name")?;
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    let id = self.ident("a term")?;
                    args.push(term(&id));
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen, "')'")?;
        }
        let pred = self.pred(&name, args.len() as u32)?;
        Ok(QAtom::new(pred, args))
    }

    fn atom_list(
        &mut self,
        term: &mut impl FnMut(&str) -> QTerm,
    ) -> Result<Vec<QAtom>, ParseError> {
        let mut atoms = vec![self.atom(term)?];
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            atoms.push(self.atom(term)?);
        }
        Ok(atoms)
    }
}

fn is_var_name(id: &str) -> bool {
    id.starts_with(|c: char| c.is_ascii_uppercase() || c == '_')
}

/// Parses a theory: a sequence of `body -> head.` rules.
pub fn parse_theory(src: &str) -> Result<Theory, ParseError> {
    let mut p = Parser::new(src)?;
    let mut rules = Vec::new();
    while !p.at_end() {
        let mut pool = VarPool::new();
        // Scope the term-builder closure so its borrow of `pool` ends
        // before `pool.into_names()`.
        let (body, head) = {
            let mut term = |id: &str| {
                if is_var_name(id) {
                    QTerm::Var(pool.var(id))
                } else {
                    QTerm::Const(Symbol::intern(id))
                }
            };
            // Body: `true` or an atom list.
            let body = if matches!(p.peek(), Some(Tok::Ident(s)) if s == "true") {
                p.bump();
                Vec::new()
            } else {
                p.atom_list(&mut term)?
            };
            p.expect(&Tok::Arrow, "'->'")?;
            let head = p.atom_list(&mut term)?;
            p.expect(&Tok::Dot, "'.' after rule")?;
            (body, head)
        };
        for a in &head {
            if a.pred.is_dom() {
                return Err(p.error("builtin dom/1 may not occur in a rule head"));
            }
        }
        let name = format!("r{}", rules.len() + 1);
        rules.push(Tgd::new(name, body, head, pool.into_names()));
    }
    Ok(Theory::new("theory", rules))
}

/// Parses a single query `?(X,…) :- atoms.` (or Boolean `? :- atoms.`).
pub fn parse_query(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let queries = parse_queries(src)?;
    match <[_; 1]>::try_from(queries) {
        Ok([q]) => Ok(q),
        Err(qs) => Err(ParseError {
            line: 1,
            col: 1,
            msg: format!("expected exactly one query, found {}", qs.len()),
        }),
    }
}

/// Parses a sequence of queries, one per `.`-terminated statement.
pub fn parse_queries(src: &str) -> Result<Vec<ConjunctiveQuery>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_end() {
        p.expect(&Tok::Question, "'?' starting a query")?;
        let mut pool = VarPool::new();
        let mut answer_names: Vec<String> = Vec::new();
        if p.peek() == Some(&Tok::LParen) {
            p.bump();
            if p.peek() != Some(&Tok::RParen) {
                loop {
                    let id = p.ident("an answer variable")?;
                    if !is_var_name(&id) {
                        return Err(p.error(format!(
                            "answer position '{id}' must be a variable (uppercase)"
                        )));
                    }
                    answer_names.push(id);
                    if p.peek() == Some(&Tok::Comma) {
                        p.bump();
                    } else {
                        break;
                    }
                }
            }
            p.expect(&Tok::RParen, "')'")?;
        }
        let answer: Vec<_> = answer_names.iter().map(|n| pool.var(n)).collect();
        p.expect(&Tok::ColonDash, "':-'")?;
        // Scope the term-builder closure so its borrow of `pool` ends
        // before `pool.into_names()`.
        let atoms = {
            let mut term = |id: &str| {
                if is_var_name(id) {
                    QTerm::Var(pool.var(id))
                } else {
                    QTerm::Const(Symbol::intern(id))
                }
            };
            let atoms = p.atom_list(&mut term)?;
            p.expect(&Tok::Dot, "'.' after query")?;
            atoms
        };
        for a in &atoms {
            if a.pred.is_dom() {
                return Err(p.error("builtin dom/1 may not occur in a query"));
            }
        }
        out.push(ConjunctiveQuery::new(answer, atoms, pool.into_names()));
    }
    Ok(out)
}

/// Parses an instance: a sequence of ground facts `p(a,b).`.
pub fn parse_instance(src: &str) -> Result<Instance, ParseError> {
    let mut p = Parser::new(src)?;
    let mut inst = Instance::new();
    while !p.at_end() {
        let mut term = |id: &str| QTerm::Const(Symbol::intern(id));
        let before = p.here();
        let atom = p.atom(&mut term)?;
        p.expect(&Tok::Dot, "'.' after fact")?;
        if atom.pred.is_dom() {
            return Err(ParseError {
                line: before.0,
                col: before.1,
                msg: "builtin dom/1 may not occur in an instance".to_owned(),
            });
        }
        let args: Vec<TermId> = atom
            .args
            .iter()
            .map(|t| match t {
                QTerm::Const(c) => TermId::constant(*c),
                QTerm::Var(_) => unreachable!("instance terms are constants"),
            })
            .collect();
        inst.insert(Fact::new(atom.pred, args));
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_1_theory() {
        // Example 1 of the paper.
        let t = parse_theory(
            "human(Y) -> mother(Y, Z).\n\
             mother(X, Y) -> human(Y).",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        let r1 = &t.rules()[0];
        assert_eq!(r1.frontier().len(), 1);
        assert_eq!(r1.existential_vars().len(), 1);
        assert!(t.rules()[1].is_datalog());
    }

    #[test]
    fn parses_t_d() {
        // Definition 45 of the paper.
        let t = parse_theory(
            "true -> r(X,X), g(X,X).\n\
             dom(X) -> r(X,Z).\n\
             dom(X) -> g(X,Z).\n\
             r(X,X1), g(X,U), g(U,U1) -> r(U1,Z), g(X1,Z).",
        )
        .unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.rules()[0].has_builtin_body());
        assert!(t.rules()[0].is_detached());
        assert!(t.rules()[1].has_builtin_body());
        assert_eq!(t.rules()[3].head().len(), 2);
        assert!(!t.rules()[3].has_builtin_body());
        assert_eq!(t.max_arity(), 2);
    }

    #[test]
    fn parses_query_and_instance() {
        let q = parse_query("?(X) :- mother(X, Y), human(Y).").unwrap();
        assert_eq!(q.answer_vars().len(), 1);
        assert_eq!(q.size(), 2);
        let i = parse_instance("human(abel). mother(abel, eve).").unwrap();
        assert_eq!(i.len(), 2);
        assert_eq!(i.domain().len(), 2);
    }

    #[test]
    fn boolean_query() {
        let q = parse_query("? :- e(X,Y), e(Y,X).").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.vars().len(), 2);
    }

    #[test]
    fn nullary_atoms() {
        let t = parse_theory("p(X), m -> q(X).").unwrap();
        assert_eq!(t.rules()[0].body()[1].pred.arity(), 0);
    }

    #[test]
    fn constants_in_queries() {
        let q = parse_query("?(X) :- siblings(abel, X), female(X).").unwrap();
        assert_eq!(q.vars().len(), 1);
        assert!(matches!(q.atoms()[0].args[0], QTerm::Const(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = parse_theory("p(X) -> p(X, Y).").unwrap_err();
        assert!(e.msg.contains("arity"));
    }

    #[test]
    fn dom_restrictions() {
        assert!(parse_theory("p(X) -> dom(X).").is_err());
        assert!(parse_query("? :- dom(X).").is_err());
        assert!(parse_instance("dom(a).").is_err());
        assert!(parse_theory("dom(X) -> p(X).").is_ok());
    }

    #[test]
    fn error_positions() {
        let e = parse_theory("p(X) ->\n q(X,").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn comments_are_skipped() {
        let t = parse_theory("# comment\np(X) -> q(X). % trailing\n").unwrap();
        assert_eq!(t.len(), 1);
    }
}
