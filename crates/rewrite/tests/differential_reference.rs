//! Randomized differential test: the dedup/index/trie engine must render
//! byte-identical UCQs to the pre-change (PR 5) engine.
//!
//! The reference below re-implements that engine's decision procedure
//! from public APIs only — linear alive-set sweeps, core minimization
//! *before* the subsumption check, no structural dedup, no predicate-set
//! trie, sequential FIFO windows — so any behavioural drift introduced by
//! the generation-side dedup machinery (seen-set, piece-unifier index,
//! trie-filtered sweeps, core-on-accept, speculation gate) shows up as a
//! render/counter mismatch on seeded random theories, across 1/2/4
//! threads and both saturation modes.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use qr_exec::Executor;
use qr_hom::kernel::{HomKernel, QueryEntry};
use qr_rewrite::{
    piece_rewritings, rewrite_with_mode, RewriteBudget, RewriteOutcome, Rewriting, SaturationMode,
};
use qr_syntax::{parse_query, parse_theory, ConjunctiveQuery, Symbol, Theory, Var};
use qr_testkit::{check, Rng};

/// Local copy of the engine's canonical renaming (existentials become
/// `U0, U1, …` in variable-index order; answer names survive).
fn canonical_named(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let answer: HashSet<Var> = q.answer_vars().iter().copied().collect();
    let reserved: HashSet<&str> = q
        .answer_vars()
        .iter()
        .map(|v| q.var_name(*v).as_str())
        .collect();
    let mut names = q.var_names().to_vec();
    let mut next = 0usize;
    for (i, slot) in names.iter_mut().enumerate() {
        if answer.contains(&Var(i as u32)) {
            continue;
        }
        let name = loop {
            let cand = format!("U{next}");
            next += 1;
            if !reserved.contains(cand.as_str()) {
                break cand;
            }
        };
        *slot = Symbol::intern(&name);
    }
    ConjunctiveQuery::new(q.answer_vars().to_vec(), q.atoms().to_vec(), names)
}

/// What both engines must agree on, byte for byte.
#[derive(Debug, PartialEq)]
struct Snapshot {
    renders: Vec<String>,
    outcome: RewriteOutcome,
    generated: usize,
    oversized: usize,
    depth: usize,
}

impl Snapshot {
    fn of(r: &Rewriting) -> Snapshot {
        Snapshot {
            renders: r.ucq.disjuncts().iter().map(|d| d.render()).collect(),
            outcome: r.outcome,
            generated: r.generated,
            oversized: r.oversized_discarded,
            depth: r.depth,
        }
    }
}

/// The PR 5 saturation loop, sequential barrier windows, rebuilt from
/// public kernel primitives: every candidate is core-minimized up front,
/// checked against a *linear* scan of the alive kept set, and no
/// structural dedup exists — isomorphic regenerations go through the full
/// subsumption sweep every time.
fn reference_rewrite(theory: &Theory, query: &ConjunctiveQuery, budget: RewriteBudget) -> Snapshot {
    let exec = Executor::sequential();
    let kernel = HomKernel::new();
    let seed = canonical_named(&kernel.query_core(query));
    // (query, entry, alive), in insertion order.
    let mut kept: Vec<(ConjunctiveQuery, Arc<QueryEntry>, bool)> = Vec::new();
    let entry = kernel.entry(&seed);
    kept.push((seed.clone(), entry, true));
    let mut queue: VecDeque<(ConjunctiveQuery, usize)> = VecDeque::new();
    queue.push_back((seed, 0));
    let (mut generated, mut oversized, mut depth, mut truncated) = (0usize, 0usize, 0usize, false);
    'outer: while !queue.is_empty() {
        let batch: Vec<(ConjunctiveQuery, usize)> = queue.drain(..).collect();
        for (q, d) in batch {
            // Evicted before its merge turn: dropped without generating.
            if !kept.iter().any(|(kq, _, alive)| *alive && *kq == q) {
                continue;
            }
            for rule in theory.rules() {
                for pu in piece_rewritings(&q, rule) {
                    generated += 1;
                    if generated > budget.max_generated {
                        truncated = true;
                        break 'outer;
                    }
                    if pu.result.size() > budget.max_atoms {
                        oversized += 1;
                        continue;
                    }
                    let cand = canonical_named(&kernel.query_core(&pu.result));
                    let cand_entry = kernel.entry(&cand);
                    let alive: Vec<usize> = (0..kept.len()).filter(|&i| kept[i].2).collect();
                    let refs: Vec<&Arc<QueryEntry>> = alive.iter().map(|&i| &kept[i].1).collect();
                    if kernel.subsumed_by_any(&exec, &cand_entry, &refs) {
                        continue;
                    }
                    let covered = kernel.covered_by(&exec, &refs, &cand_entry);
                    let mut evicted = 0usize;
                    for (flag, &i) in covered.iter().zip(&alive) {
                        if *flag {
                            kept[i].2 = false;
                            evicted += 1;
                        }
                    }
                    let alive_now = kept.iter().filter(|(_, _, a)| *a).count();
                    if alive_now >= budget.max_queries {
                        truncated = true;
                        if evicted > 0 {
                            depth = depth.max(d + 1);
                            kept.push((cand, cand_entry, true));
                        }
                        break 'outer;
                    }
                    depth = depth.max(d + 1);
                    queue.push_back((cand.clone(), d + 1));
                    kept.push((cand, cand_entry, true));
                }
            }
        }
    }
    let outcome = if truncated {
        RewriteOutcome::Budget
    } else if oversized > 0 {
        RewriteOutcome::AtomCapped
    } else {
        RewriteOutcome::Complete
    };
    Snapshot {
        renders: kept
            .into_iter()
            .filter(|(_, _, alive)| *alive)
            .map(|(q, _, _)| q.render())
            .collect(),
        outcome,
        generated,
        oversized,
        depth,
    }
}

const BODY_VARS: [&str; 4] = ["X", "Y", "Z", "W"];
const QUERY_TERMS: [&str; 4] = ["A", "B", "C", "a"];
// (name, arity) — small alphabet so random rules actually interact.
const PREDS: [(&str, usize); 4] = [("p", 1), ("q", 1), ("e", 2), ("f", 2)];

fn atom(rng: &mut Rng, terms: &[&str]) -> String {
    let (name, arity) = *rng.pick(&PREDS);
    let args: Vec<&str> = (0..arity).map(|_| *rng.pick(terms)).collect();
    format!("{name}({})", args.join(","))
}

/// 1–3 constant-free rules, 1–2 body atoms, single-atom head. Head
/// variables not in the body are existential; that is exactly what the
/// piece-unifier's admissibility checks must navigate.
fn random_theory(rng: &mut Rng) -> String {
    let nrules = rng.range(1, 4);
    let mut rules = Vec::new();
    for _ in 0..nrules {
        let nbody = rng.range(1, 3);
        let body: Vec<String> = (0..nbody).map(|_| atom(rng, &BODY_VARS)).collect();
        let head = atom(rng, &BODY_VARS);
        rules.push(format!("{} -> {}.", body.join(", "), head));
    }
    rules.join("\n")
}

/// 1–2 atoms over variables `A, B, C` and the constant `a`; at most one
/// answer variable, drawn from the variables actually used.
fn random_query(rng: &mut Rng) -> String {
    let natoms = rng.range(1, 3);
    let atoms: Vec<String> = (0..natoms).map(|_| atom(rng, &QUERY_TERMS)).collect();
    let body = atoms.join(", ");
    let used: Vec<&str> = ["A", "B", "C"]
        .into_iter()
        .filter(|v| {
            atoms
                .iter()
                .any(|a| a.split(['(', ',', ')']).any(|t| t == *v))
        })
        .collect();
    if !used.is_empty() && rng.bool() {
        format!("?({}) :- {body}.", rng.pick(&used))
    } else {
        format!("? :- {body}.")
    }
}

#[test]
fn new_engine_matches_reference_on_random_theories() {
    let budget = RewriteBudget {
        max_queries: 10,
        max_generated: 60,
        max_atoms: 5,
    };
    check("differential-reference", 20, |rng| {
        let tsrc = random_theory(rng);
        let qsrc = random_query(rng);
        let theory = parse_theory(&tsrc).expect("generated theory parses");
        let query = parse_query(&qsrc).expect("generated query parses");
        let expect = reference_rewrite(&theory, &query, budget);
        for threads in [1, 2, 4] {
            let exec = Executor::with_threads(threads);
            for mode in [SaturationMode::Pipelined, SaturationMode::Barrier] {
                let r = rewrite_with_mode(&theory, &query, budget, &exec, mode)
                    .expect("no builtin bodies generated");
                assert_eq!(
                    Snapshot::of(&r),
                    expect,
                    "theory:\n{tsrc}\nquery: {qsrc} @{threads} {mode:?}"
                );
            }
        }
    });
}
