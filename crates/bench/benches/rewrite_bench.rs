//! Criterion micro-benchmarks for the UCQ rewriting engine: linear
//! theories (E7's workload), the sticky Example 39, and divergence probes
//! under budget (Example 41).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qr_core::theories::{ex39, ex41, t_a};
use qr_rewrite::{rewrite, RewriteBudget};
use qr_syntax::parse_query;

fn bench_linear_chains(c: &mut Criterion) {
    let theory = t_a();
    let mut group = c.benchmark_group("rewrite/mother_chain");
    for k in [2usize, 4, 6] {
        let atoms: Vec<String> = (0..k)
            .map(|i| format!("mother(X{i}, X{})", i + 1))
            .collect();
        let q = parse_query(&format!("?(X0) :- {}.", atoms.join(", "))).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &q, |b, q| {
            b.iter(|| rewrite(&theory, q, RewriteBudget::default()).unwrap().ucq.len())
        });
    }
    group.finish();
}

fn bench_sticky(c: &mut Criterion) {
    let theory = ex39();
    let q = parse_query("?(A,D) :- e(A,B,C,D).").unwrap();
    c.bench_function("rewrite/sticky_ex39_atomic", |b| {
        b.iter(|| rewrite(&theory, &q, RewriteBudget::default()).unwrap().ucq.len())
    });
}

fn bench_divergent_budget(c: &mut Criterion) {
    let theory = ex41();
    let q = parse_query("?(Y,Z) :- r(Y,Z).").unwrap();
    let mut group = c.benchmark_group("rewrite/ex41_divergence");
    for max_atoms in [8usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(max_atoms), &max_atoms, |b, &m| {
            b.iter(|| {
                rewrite(
                    &theory,
                    &q,
                    RewriteBudget {
                        max_queries: 1024,
                        max_generated: 100_000,
                        max_atoms: m,
                    },
                )
                .unwrap()
                .ucq
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linear_chains, bench_sticky, bench_divergent_budget);
criterion_main!(benches);
