//! Dependency-free test support: a deterministic PRNG and a property-test
//! loop, replacing the external `proptest`/`rand` crates so the workspace
//! builds and tests hermetically.
//!
//! Every generator is a plain function of a [`Rng`]; [`check`] runs a
//! property over a fixed number of derived seeds and reports the failing
//! seed so a case can be replayed (and pinned as a regression test) with
//! [`Rng::new`].

/// A splitmix64 PRNG: deterministic, seedable, and good enough for test
/// case generation (not for cryptography).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below needs a positive bound");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform value in the non-empty half-open range `lo..hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range needs lo < hi");
        lo + self.below(hi - lo)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A random ASCII string of length `lo..hi` drawn from `alphabet`.
    pub fn string(&mut self, alphabet: &[u8], lo: usize, hi: usize) -> String {
        let len = self.range(lo, hi.max(lo + 1));
        (0..len).map(|_| *self.pick(alphabet) as char).collect()
    }
}

/// Runs `property` over `cases` deterministic seeds derived from `seed`.
///
/// On panic the failing derived seed is printed so the case can be replayed
/// in isolation with `Rng::new(failing_seed)`.
pub fn check(name: &str, cases: usize, property: impl Fn(&mut Rng)) {
    let mut meta = Rng::new(0xC0FFEE ^ name.len() as u64);
    for case in 0..cases {
        let seed = meta.next_u64() ^ case as u64;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            property(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property `{name}` failed on case {case} (replay with Rng::new({seed:#x}))");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
            let r = rng.range(3, 9);
            assert!((3..9).contains(&r));
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let mut count = 0usize;
        let counter = std::cell::Cell::new(0usize);
        check("counts", 17, |_| counter.set(counter.get() + 1));
        count += counter.get();
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic]
    fn check_propagates_failures() {
        check("fails", 5, |rng| assert!(rng.below(10) > 100));
    }
}
