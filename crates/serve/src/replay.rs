//! Replay files: pinned request streams and their deterministic traces.
//!
//! A replay file is plain text, one item per line:
//!
//! ```text
//! # comment
//! path   ?(A) :- e(A,B), e(B,C).
//! family ? :- mother(ann, X).
//! !insert path e(d,x).
//! !retract path e(a,b).
//! ```
//!
//! A plain line is a query: the first whitespace-separated token is the
//! registered theory id, the rest is the CQ text. A `!insert` / `!retract`
//! line is a [`FactWrite`]: the directive, the theory id, then base facts
//! in instance syntax. Blank lines and `#` comments are skipped. Running a
//! replay through [`Engine::replay`](crate::Engine::replay) and rendering
//! the responses with [`render_trace`] yields bytes that are identical at
//! any worker-pool width — the repo's pinning convention applied to server
//! behavior (golden traces live under `crates/serve/tests/replays/`).
//!
//! Malformed lines report a typed, located [`ReplayError`] (line number
//! plus kind), mirroring `qr-check`'s `DecodeError` convention.

use std::fmt;

use qr_chase::WriteBatch;

use crate::engine::{CqRequest, FactWrite, Request, Response};

/// Why a replay line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayErrorKind {
    /// A query line with no query text after the theory id.
    MissingQuery {
        /// The offending line.
        got: String,
    },
    /// A `!` line whose directive is not `!insert` or `!retract`.
    UnknownDirective {
        /// The directive token, including the `!`.
        got: String,
    },
    /// A write line with no theory id or no facts after the directive.
    MissingWrite {
        /// The directive that was missing its operands.
        directive: String,
    },
    /// A write line whose fact text did not parse as instance syntax.
    BadFact {
        /// The parse error reported by `qr-syntax`.
        error: String,
    },
}

impl fmt::Display for ReplayErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayErrorKind::MissingQuery { got } => {
                write!(f, "expected '<theory> <query>', got '{got}'")
            }
            ReplayErrorKind::UnknownDirective { got } => {
                write!(
                    f,
                    "unknown directive '{got}' (expected !insert or !retract)"
                )
            }
            ReplayErrorKind::MissingWrite { directive } => {
                write!(f, "expected '{directive} <theory> <facts>'")
            }
            ReplayErrorKind::BadFact { error } => write!(f, "bad fact: {error}"),
        }
    }
}

/// A located replay parse error: the 1-based source line plus what went
/// wrong there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number in the replay source.
    pub line: usize,
    /// What went wrong.
    pub kind: ReplayErrorKind,
}

impl ReplayError {
    fn at(line: usize, kind: ReplayErrorKind) -> ReplayError {
        ReplayError { line, kind }
    }
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replay line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for ReplayError {}

/// Parses a replay file into a request stream (queries and fact writes, in
/// line order).
pub fn parse_replay(src: &str) -> Result<Vec<Request>, ReplayError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(directive) = line
            .split_whitespace()
            .next()
            .filter(|t| t.starts_with('!'))
        {
            let insert = match directive {
                "!insert" => true,
                "!retract" => false,
                _ => {
                    return Err(ReplayError::at(
                        lineno,
                        ReplayErrorKind::UnknownDirective {
                            got: directive.to_owned(),
                        },
                    ))
                }
            };
            let rest = line[directive.len()..].trim();
            let Some((theory, facts_src)) = rest.split_once(char::is_whitespace) else {
                return Err(ReplayError::at(
                    lineno,
                    ReplayErrorKind::MissingWrite {
                        directive: directive.to_owned(),
                    },
                ));
            };
            let facts = qr_syntax::parse_instance(facts_src.trim()).map_err(|e| {
                ReplayError::at(
                    lineno,
                    ReplayErrorKind::BadFact {
                        error: e.to_string(),
                    },
                )
            })?;
            let facts: Vec<_> = facts.iter().map(|fr| fr.to_fact()).collect();
            let batch = if insert {
                WriteBatch::insert(facts)
            } else {
                WriteBatch::retract(facts)
            };
            out.push(Request::Write(FactWrite {
                theory: theory.to_owned(),
                batch,
            }));
            continue;
        }
        let Some((theory, query)) = line.split_once(char::is_whitespace) else {
            return Err(ReplayError::at(
                lineno,
                ReplayErrorKind::MissingQuery {
                    got: line.to_owned(),
                },
            ));
        };
        out.push(Request::Query(CqRequest {
            theory: theory.to_owned(),
            query: query.trim().to_owned(),
        }));
    }
    Ok(out)
}

/// Renders requests back into the replay format (round-trips through
/// [`parse_replay`]).
pub fn render_replay(requests: &[Request]) -> String {
    let mut out = String::new();
    for r in requests {
        match r {
            Request::Query(q) => {
                out.push_str(&q.theory);
                out.push(' ');
                out.push_str(&q.query);
                out.push('\n');
            }
            Request::Write(w) => {
                for (directive, facts) in [
                    ("!insert", &w.batch.inserts),
                    ("!retract", &w.batch.retracts),
                ] {
                    if facts.is_empty() {
                        continue;
                    }
                    out.push_str(directive);
                    out.push(' ');
                    out.push_str(&w.theory);
                    for fact in facts {
                        out.push(' ');
                        out.push_str(&format!("{fact}."));
                    }
                    out.push('\n');
                }
            }
        }
    }
    out
}

/// Renders a response stream as its deterministic trace: one
/// [`Response::trace_line`] per line.
pub fn render_trace(responses: &[Response]) -> String {
    let mut out = String::new();
    for r in responses {
        out.push_str(&r.trace_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_round_trips() {
        let src = "# a comment\n\npath ?(A) :- e(A,B).\nfamily   ? :- human(ann).\n";
        let reqs = parse_replay(src).unwrap();
        assert_eq!(reqs.len(), 2);
        let Request::Query(q0) = &reqs[0] else {
            panic!("query expected");
        };
        assert_eq!(q0.theory, "path");
        assert_eq!(q0.query, "?(A) :- e(A,B).");
        let Request::Query(q1) = &reqs[1] else {
            panic!("query expected");
        };
        assert_eq!(q1.theory, "family");
        assert_eq!(q1.query, "? :- human(ann).");
        let rendered = render_replay(&reqs);
        assert_eq!(parse_replay(&rendered).unwrap(), reqs);
    }

    #[test]
    fn parse_write_directives() {
        let src = "!insert path e(d,x). e(x,y).\n!retract path e(a,b).\n";
        let reqs = parse_replay(src).unwrap();
        assert_eq!(reqs.len(), 2);
        let Request::Write(w) = &reqs[0] else {
            panic!("write expected");
        };
        assert_eq!(w.theory, "path");
        assert_eq!(w.batch.inserts.len(), 2);
        assert!(w.batch.retracts.is_empty());
        let Request::Write(w) = &reqs[1] else {
            panic!("write expected");
        };
        assert_eq!(w.batch.retracts.len(), 1);
        let rendered = render_replay(&reqs);
        assert_eq!(parse_replay(&rendered).unwrap(), reqs);
    }

    #[test]
    fn errors_are_typed_and_located() {
        let err = parse_replay("path ?(A) :- e(A,B).\njustonetoken\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ReplayErrorKind::MissingQuery { .. }));
        assert!(err.to_string().contains("replay line 2"), "{err}");

        let err = parse_replay("!explode path e(a,b).\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, ReplayErrorKind::UnknownDirective { .. }));

        let err = parse_replay("\n\n!insert path\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, ReplayErrorKind::MissingWrite { .. }));

        let err = parse_replay("!insert path not a fact\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, ReplayErrorKind::BadFact { .. }));
    }
}
