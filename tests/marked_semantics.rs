//! Exact validation of the marked-query machinery against the chase, using
//! the true Definition 48 semantics (`MarkedQuery::holds_in`):
//!
//! * Lemma 52 (soundness of the five operations): a step replaces a query
//!   by a set with the **same** marked satisfaction, on concrete instances.
//! * The disjunction over `S_0` equals plain satisfaction of the query
//!   (the process invariant (♠)).
//! * Improperly marked queries are unsatisfiable (Observation 50).

use std::collections::HashSet;

use query_rewritability::chase::{chase, ChaseBudget};
use query_rewritability::core::marked::{ColorMap, MarkedQuery, StepResult};
use query_rewritability::core::theories::{green_path, phi_r_n, t_d};
use query_rewritability::hom::holds;
use query_rewritability::prelude::*;

fn chase_of(db: &Instance, depth: usize) -> Instance {
    chase(
        &t_d(),
        db,
        ChaseBudget {
            max_rounds: depth,
            max_facts: 500_000,
        },
    )
    .instance
}

/// All instances used as test data: green paths and mixed red/green paths.
fn test_instances() -> Vec<(Instance, Vec<TermId>)> {
    let mut out = Vec::new();
    for m in 1..=4usize {
        let (db, a, b) = green_path(m, &format!("ms{m}"));
        out.push((db, vec![a, b]));
    }
    let mixed = parse_instance("g(x0,x1). r(x1,x2). g(x2,x3).").unwrap();
    let endpoints = vec![
        TermId::constant(Symbol::intern("x0")),
        TermId::constant(Symbol::intern("x3")),
    ];
    out.push((mixed, endpoints));
    out
}

#[test]
fn s0_disjunction_equals_plain_satisfaction() {
    // (♠) at the start of the process: Ch(D) ⊨ φ(ā) iff some marking in
    // S_0 is satisfied in the marked sense.
    let colors = ColorMap::td();
    for n in [1usize, 2] {
        let q = phi_r_n(n);
        let s0 = MarkedQuery::markings_of(&q, &colors).unwrap();
        for (db, answer) in test_instances() {
            let ch = chase_of(&db, 2 * n + 2);
            let dom: HashSet<TermId> = db.domain().iter().copied().collect();
            let plain = holds(&q, &ch, &answer);
            let marked_any = s0.iter().any(|m| m.holds_in(&ch, &dom, &answer, &colors));
            assert_eq!(plain, marked_any, "n={n} on {db}");
        }
    }
}

#[test]
fn lemma_52_step_soundness_exact() {
    // Drive the process on φ_R^1 and φ_R^2; at every step, the replaced
    // set has the same marked satisfaction as the original on every test
    // instance. (Deeper chases make the satisfaction sets stabilize; the
    // depth is past the query's entailment depth on these instances.)
    let colors = ColorMap::td();
    let data: Vec<(Instance, Vec<TermId>, Instance, HashSet<TermId>)> = test_instances()
        .into_iter()
        .map(|(db, ans)| {
            let ch = chase_of(&db, 6);
            let dom: HashSet<TermId> = db.domain().iter().copied().collect();
            (db, ans, ch, dom)
        })
        .collect();

    for n in [1usize, 2] {
        let mut work: Vec<MarkedQuery> = MarkedQuery::markings_of(&phi_r_n(n), &colors)
            .unwrap()
            .into_iter()
            .filter(|m| m.is_live())
            .collect();
        let mut steps = 0;
        while let Some(q) = work.pop() {
            steps += 1;
            assert!(steps < 2_000, "cap for the exact-soundness sweep");
            let StepResult::Replaced(qs) = q.step() else {
                continue;
            };
            for (db, answer, ch, dom) in &data {
                let before = q.holds_in(ch, dom, answer, &colors);
                let after = qs.iter().any(|nq| nq.holds_in(ch, dom, answer, &colors));
                assert_eq!(
                    before, after,
                    "Lemma 52 violated at n={n} on {db} for {q:?} -> {qs:?}"
                );
            }
            work.extend(qs.into_iter().filter(|x| x.is_live()));
        }
    }
}

#[test]
fn improper_markings_are_unsatisfiable() {
    // Observation 50: a marking violating condition (i) — unmarked source
    // into marked target — has no witness in any chase.
    let colors = ColorMap::td();
    let bad = MarkedQuery::new(2, [(1u8, 0u32, 1u32)], [1u32], vec![1]);
    assert!(!bad.is_properly_marked());
    for (db, _) in test_instances() {
        let ch = chase_of(&db, 4);
        let dom: HashSet<TermId> = db.domain().iter().copied().collect();
        for t in db.domain() {
            assert!(!bad.holds_in(&ch, &dom, &[*t], &colors));
        }
    }
}

#[test]
fn totally_marked_satisfaction_is_plain_satisfaction_over_d() {
    // For totally marked queries, Definition 48 collapses to D ⊨ φ(ā):
    // chase-invented terms are excluded from every variable.
    let colors = ColorMap::td();
    let q = parse_query("?(A,B) :- g(A,C), g(C,B).").unwrap();
    let markings = MarkedQuery::markings_of(&q, &colors).unwrap();
    let total = markings
        .iter()
        .find(|m| m.is_totally_marked())
        .expect("total marking exists");
    let (db, a, b) = green_path(2, "tm");
    let ch = chase_of(&db, 3);
    let dom: HashSet<TermId> = db.domain().iter().copied().collect();
    assert!(total.holds_in(&ch, &dom, &[a, b], &colors));
    assert_eq!(
        total.holds_in(&ch, &dom, &[a, b], &colors),
        holds(&q, &db, &[a, b])
    );
    // And for a pair with no 2-path in D, both are false.
    assert!(!total.holds_in(&ch, &dom, &[b, a], &colors));
}
