//! The negative suite: every class of certificate mutation the issue
//! names must be *rejected with a located error* — wrong rule ids,
//! permuted homomorphisms, truncated chains, corrupted codec bytes —
//! and the checker must never panic, whatever the bytes say.

use qr_chase::{chase, emit_chase_certs, ChaseBudget, ChaseCertBundle};
use qr_check::{
    check_chase, check_rewrite, decode_chase_certs, decode_rewrite_certs, encode_chase_certs,
    encode_rewrite_certs, CheckErrorKind,
};
use qr_exec::Executor;
use qr_rewrite::{rewrite_certified, RewriteBudget, RewriteCertBundle, SaturationMode};
use qr_syntax::{
    parse_instance, parse_query, parse_theory, ConjunctiveQuery, Instance, Theory, Ucq,
};

fn rewrite_fixture() -> (Theory, ConjunctiveQuery, Ucq, RewriteCertBundle) {
    let theory = parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap();
    let query = parse_query("?(X) :- mother(X, M).").unwrap();
    let (r, bundle) = rewrite_certified(
        &theory,
        &query,
        RewriteBudget::default(),
        &Executor::sequential(),
        SaturationMode::Pipelined,
    )
    .unwrap();
    (theory, query, r.ucq, bundle)
}

fn chase_fixture() -> (Theory, Instance, ChaseCertBundle) {
    let theory = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).\nhuman(X) -> mother(X,Y).").unwrap();
    let db = parse_instance("e(a,b). e(b,c). e(c,d). human(abel).").unwrap();
    let c = chase(&theory, &db, ChaseBudget::default());
    let bundle = emit_chase_certs(&theory, &c);
    (theory, c.instance, bundle)
}

#[test]
fn rewrite_wrong_rule_id_is_rejected() {
    let (theory, phi, ucq, bundle) = rewrite_fixture();
    assert!(bundle.certs.len() > 2, "fixture accepts several disjuncts");

    // Out-of-range rule id.
    let mut m = bundle.clone();
    m.certs[1].step.as_mut().unwrap().rule = 77;
    let e = check_rewrite(&theory, &phi, &ucq, &m).unwrap_err();
    assert_eq!(e.cert, 1);
    assert_eq!(
        e.kind,
        CheckErrorKind::RuleOutOfRange { rule: 77, rules: 2 }
    );

    // In-range but *different* rule: the recorded pairs cannot unify, or
    // unify to something the recorded maps no longer witness.
    let mut m = bundle.clone();
    let step = m.certs[1].step.as_mut().unwrap();
    step.rule = 1 - step.rule;
    let e = check_rewrite(&theory, &phi, &ucq, &m).unwrap_err();
    assert_eq!(e.cert, 1, "rejection locates the mutated node: {e}");
}

#[test]
fn rewrite_permuted_homomorphism_is_rejected() {
    let (theory, phi, ucq, bundle) = rewrite_fixture();
    let victim = bundle
        .certs
        .iter()
        .position(|c| c.to_query.len() >= 2)
        .expect("some node has two variables");

    let mut m = bundle.clone();
    m.certs[victim].to_query.swap(0, 1);
    let e = check_rewrite(&theory, &phi, &ucq, &m).unwrap_err();
    assert_eq!(e.cert, victim, "to_query permutation located: {e}");

    let victim = bundle
        .certs
        .iter()
        .position(|c| c.from_query.len() >= 2)
        .expect("some node has two variables");
    let mut m = bundle.clone();
    m.certs[victim].from_query.swap(0, 1);
    let e = check_rewrite(&theory, &phi, &ucq, &m).unwrap_err();
    assert_eq!(e.cert, victim, "from_query permutation located: {e}");
}

#[test]
fn rewrite_truncated_chain_is_rejected() {
    let (theory, phi, ucq, bundle) = rewrite_fixture();

    // Drop a middle node: every later parent reference now points at the
    // wrong query (or past the end), and the finals shift.
    let mut m = bundle.clone();
    m.certs.remove(1);
    for c in &mut m.certs {
        if let Some(s) = &mut c.step {
            s.parent = s.parent.saturating_sub(1);
        }
    }
    for f in &mut m.final_disjuncts {
        *f = f.saturating_sub(1);
    }
    assert!(
        check_rewrite(&theory, &phi, &ucq, &m).is_err(),
        "a spliced chain must not certify"
    );

    // Drop the whole tail including the finals' nodes.
    let mut m = bundle.clone();
    m.certs.truncate(1);
    assert!(check_rewrite(&theory, &phi, &ucq, &m).is_err());

    // Empty bundle.
    let m = RewriteCertBundle {
        certs: Vec::new(),
        final_disjuncts: Vec::new(),
    };
    let e = check_rewrite(&theory, &phi, &ucq, &m).unwrap_err();
    assert_eq!(e.kind, CheckErrorKind::EmptyBundle);
}

#[test]
fn rewrite_mutated_unifier_pairs_are_rejected() {
    let (theory, phi, ucq, bundle) = rewrite_fixture();
    let mut m = bundle.clone();
    let step = m.certs[1].step.as_mut().unwrap();
    step.unified[0].0 += 13; // query atom index out of range
    let e = check_rewrite(&theory, &phi, &ucq, &m).unwrap_err();
    assert_eq!(e.cert, 1);
    assert_eq!(e.kind, CheckErrorKind::UnifierRejected);
}

#[test]
fn rewrite_redirected_finals_are_rejected() {
    let (theory, phi, ucq, bundle) = rewrite_fixture();
    let mut m = bundle.clone();
    m.final_disjuncts[0] = m.certs.len() as u32;
    let e = check_rewrite(&theory, &phi, &ucq, &m).unwrap_err();
    assert_eq!(
        e.kind,
        CheckErrorKind::FinalOutOfRange {
            node: m.final_disjuncts[0]
        }
    );

    // Point two finals at the same node: one of them no longer matches
    // its disjunct.
    let mut m = bundle.clone();
    let first = m.final_disjuncts[0];
    for f in &mut m.final_disjuncts {
        *f = first;
    }
    assert!(check_rewrite(&theory, &phi, &ucq, &m).is_err());
}

#[test]
fn chase_wrong_rule_id_is_rejected() {
    let (theory, inst, bundle) = chase_fixture();
    assert!(!bundle.is_empty());

    let mut m = bundle.clone();
    m.certs[0].rule = 9;
    let e = check_chase(&theory, &inst, &m).unwrap_err();
    assert_eq!(e.cert, 0);
    assert_eq!(e.kind, CheckErrorKind::RuleOutOfRange { rule: 9, rules: 2 });

    // In-range but different rule: trigger arity or unification breaks.
    let mut m = bundle.clone();
    m.certs[0].rule = 1 - m.certs[0].rule;
    let e = check_chase(&theory, &inst, &m).unwrap_err();
    assert_eq!(e.cert, 0, "rejection locates the mutated cert: {e}");
}

#[test]
fn chase_permuted_trigger_is_rejected() {
    let (theory, inst, bundle) = chase_fixture();
    // A transitivity step e(x,y), e(y,z) -> e(x,z): swapping the two
    // trigger facts breaks the shared-variable join (y binds both ways
    // only on a cycle, and this instance is a path).
    let victim = bundle
        .certs
        .iter()
        .position(|c| c.trigger.len() == 2 && c.trigger[0] != c.trigger[1])
        .expect("a transitivity derivation exists");
    let mut m = bundle.clone();
    m.certs[victim].trigger.swap(0, 1);
    let e = check_chase(&theory, &inst, &m).unwrap_err();
    assert_eq!(e.cert, victim, "swap located: {e}");
    assert!(
        matches!(
            e.kind,
            CheckErrorKind::TriggerClash { .. } | CheckErrorKind::FactNotInHead
        ),
        "unexpected kind: {e}"
    );
}

#[test]
fn chase_forward_and_missing_certs_are_rejected() {
    let (theory, inst, bundle) = chase_fixture();

    // Circular: a trigger pointing at the certified fact itself.
    let victim = bundle
        .certs
        .iter()
        .position(|c| !c.trigger.is_empty())
        .unwrap();
    let mut m = bundle.clone();
    m.certs[victim].trigger[0] = m.certs[victim].fact;
    let e = check_chase(&theory, &inst, &m).unwrap_err();
    assert_eq!(e.cert, victim);
    assert!(matches!(e.kind, CheckErrorKind::TriggerNotEarlier { .. }));

    // Coverage gap: dropping a cert leaves a derived fact uncertified.
    let mut m = bundle.clone();
    m.certs.pop();
    let e = check_chase(&theory, &inst, &m).unwrap_err();
    assert!(matches!(e.kind, CheckErrorKind::CertCount { .. }));
}

#[test]
fn corrupted_rewrite_bytes_never_panic() {
    let (theory, phi, ucq, bundle) = rewrite_fixture();
    let bytes = encode_rewrite_certs(&bundle);
    let mut rejected = 0;
    for i in 0..bytes.len() {
        let mut b = bytes.clone();
        b[i] ^= 0xff;
        // Every flip must either fail to decode (located) or decode to a
        // bundle the checker handles without panicking. Flips inside
        // variable-name strings can survive both — names are semantically
        // inert — but structural flips must be caught somewhere.
        match decode_rewrite_certs(&b) {
            Err(e) => {
                assert!(e.offset <= b.len());
                rejected += 1;
            }
            Ok(decoded) => {
                if check_rewrite(&theory, &phi, &ucq, &decoded).is_err() {
                    rejected += 1;
                }
            }
        }
    }
    assert!(
        rejected * 2 > bytes.len(),
        "most byte flips must be caught ({rejected}/{})",
        bytes.len()
    );
}

#[test]
fn corrupted_chase_bytes_never_panic() {
    let (theory, inst, bundle) = chase_fixture();
    let bytes = encode_chase_certs(&bundle);
    let mut rejected = 0;
    for i in 0..bytes.len() {
        let mut b = bytes.clone();
        b[i] ^= 0xff;
        match decode_chase_certs(&b) {
            Err(e) => {
                assert!(e.offset <= b.len());
                rejected += 1;
            }
            Ok(decoded) => {
                if check_chase(&theory, &inst, &decoded).is_err() {
                    rejected += 1;
                }
            }
        }
    }
    // QRCC is pure index data: every byte is load-bearing.
    assert_eq!(rejected, bytes.len(), "every chase-bundle flip is caught");
}

#[test]
fn truncated_streams_never_panic() {
    let (_, _, _, bundle) = rewrite_fixture();
    let bytes = encode_rewrite_certs(&bundle);
    for cut in 0..bytes.len() {
        assert!(decode_rewrite_certs(&bytes[..cut]).is_err());
    }
    let (_, _, bundle) = chase_fixture();
    let bytes = encode_chase_certs(&bundle);
    for cut in 0..bytes.len() {
        assert!(decode_chase_certs(&bytes[..cut]).is_err());
    }
}
