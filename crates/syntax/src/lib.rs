//! Syntactic foundations for the query-rewritability workspace.
//!
//! This crate provides the vocabulary of the paper *"A Journey to the
//! Frontiers of Query Rewritability"* (PODS 2022): interned symbols,
//! hash-consed ground terms (constants and Skolem terms), facts and indexed
//! database instances, conjunctive queries and unions thereof, tuple
//! generating dependencies (existential rules) and theories, together with a
//! text parser, pretty printers, and Gaifman-graph utilities.
//!
//! # Conventions
//!
//! * Ground terms are hash-consed in a process-global arena ([`TermId`]),
//!   which makes the paper's Observation 8 — `Ch(T,F) = Ch(T,D)` holds
//!   *literally*, not merely up to isomorphism — directly observable as set
//!   equality of instances.
//! * Skolem functions follow the paper's Definition 3/4: a Skolem function is
//!   determined by the *isomorphism type* of the (skolemized) rule head and
//!   the canonical index of the existential variable, so two rules with
//!   isomorphic heads share Skolem functions.
//! * Rules of the shape `∀x (true ⇒ ∃z R(x,z))` (used by the paper's theory
//!   `T_d`, Definition 45) are modelled with the builtin domain predicate
//!   [`Pred::dom`], whose single argument ranges over the active domain.
//!
//! # Text syntax
//!
//! The parser ([`parser`]) accepts a Prolog-flavoured syntax:
//!
//! ```text
//! # a theory: variables start with an uppercase letter, '_' or '?'
//! human(X) -> mother(X, Y).          # Y is existential (head-only)
//! mother(X, Y) -> human(Y).
//! true -> r(X, X), g(X, X).          # fully existential head ("loop" rule)
//! dom(X) -> r(X, Z).                 # domain-scoped rule ("pins" rule)
//!
//! # a query: answer variables are listed in the head
//! ?(X) :- mother(X, Y), human(Y).
//!
//! # an instance: all arguments are constants
//! human(abel). mother(abel, eve).
//! ```

pub mod atom;
pub mod display;
pub mod gaifman;
pub mod instance;
pub mod parser;
pub mod query;
pub mod rule;
pub mod symbol;
pub mod term;

pub use atom::{Fact, Pred};
pub use instance::{FactIdx, FactRef, Instance, InstanceSnapshot, StorageStats};
pub use parser::{parse_instance, parse_query, parse_theory, ParseError};
pub use query::{ConjunctiveQuery, QAtom, QTerm, Ucq, Var};
pub use rule::{Tgd, Theory};
pub use symbol::Symbol;
pub use term::{SkolemFn, TermId};

/// A tuple of ground terms, used as query answers and as frontier images.
pub type Tuple = Vec<TermId>;
