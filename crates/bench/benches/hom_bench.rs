//! Micro-benchmarks for the homomorphism engine: CQ evaluation over
//! indexed instances, containment checks, and query cores.

use qr_bench::experiments::e11_chase_engine::random_graph;
use qr_bench::microbench::{bench, group};
use qr_hom::containment::contains;
use qr_hom::kernel::HomKernel;
use qr_hom::qcore::query_core;
use qr_hom::{all_answers, holds};
use qr_syntax::parse_query;

fn bench_evaluation() {
    let path3 = parse_query("?(A,D) :- e(A,B), e(B,C), e(C,D).").unwrap();
    let triangle = parse_query("? :- e(X,Y), e(Y,Z), e(Z,X).").unwrap();
    group("hom/evaluate");
    for (n, m) in [(30usize, 60usize), (80, 200)] {
        let db = random_graph(n, m, 7);
        bench(&format!("path3_all_answers/G({n},{m})"), || {
            all_answers(&path3, &db, 0).len()
        });
        bench(&format!("triangle_boolean/G({n},{m})"), || {
            holds(&triangle, &db, &[])
        });
    }
}

fn bench_containment() {
    group("hom/containment");
    for k in [4usize, 8, 12] {
        let atoms: Vec<String> = (0..k).map(|i| format!("e(X{i}, X{})", i + 1)).collect();
        let long = parse_query(&format!("?(X0) :- {}.", atoms.join(", "))).unwrap();
        let short = parse_query("?(X0) :- e(X0, Y).").unwrap();
        bench(&format!("chain/{k}"), || contains(&long, &short));
    }
}

fn bench_query_core() {
    // A 2k-cycle with a chord folds onto smaller structures; core search is
    // the expensive primitive behind rewriting minimization.
    group("hom/query_core");
    for k in [3usize, 5] {
        let n = 2 * k;
        let mut atoms: Vec<String> = (0..n)
            .map(|i| format!("e(X{i}, X{})", (i + 1) % n))
            .collect();
        atoms.push("e(X0, X2)".into());
        let q = parse_query(&format!("? :- {}.", atoms.join(", "))).unwrap();
        bench(&format!("cycle_with_chord/{n}"), || query_core(&q).size());
    }
}

fn bench_kernel_caches() {
    // Warm-kernel calls (freeze + plan caches hit) against a cold kernel
    // built per call: the gap is what the caches buy a rewrite run.
    group("hom/kernel");
    let atoms: Vec<String> = (0..8).map(|i| format!("e(X{i}, X{})", i + 1)).collect();
    let long = parse_query(&format!("?(X0) :- {}.", atoms.join(", "))).unwrap();
    let short = parse_query("?(X0) :- e(X0, Y).").unwrap();
    let warm = HomKernel::new();
    warm.contains_queries(&long, &short);
    bench("contains_warm_caches/chain8", || {
        warm.contains_queries(&long, &short)
    });
    bench("contains_cold_kernel/chain8", || {
        HomKernel::new().contains_queries(&long, &short)
    });
}

fn main() {
    bench_evaluation();
    bench_containment();
    bench_query_core();
    bench_kernel_caches();
}
