//! Process-global string interning.
//!
//! Symbols are cheap (`u32`) copies; the backing strings are leaked once and
//! live for the duration of the process, so [`Symbol::as_str`] can hand out
//! `&'static str` without locking on the read path.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Two symbols are equal iff they intern the same string, so equality and
/// hashing are `u32` operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct InternerState {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<InternerState> {
    static INTERNER: OnceLock<Mutex<InternerState>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(InternerState {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its unique symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut state = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = state.by_name.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(state.names.len()).expect("symbol table overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        state.names.push(leaked);
        state.by_name.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let state = interner().lock().expect("symbol interner poisoned");
        state.names[self.0 as usize]
    }

    /// A fresh symbol guaranteed not to collide with previously interned
    /// names, derived from `stem`. Useful for generated variable names.
    pub fn fresh(stem: &str) -> Symbol {
        let mut state = interner().lock().expect("symbol interner poisoned");
        let mut counter = state.names.len();
        loop {
            let candidate = format!("{stem}#{counter}");
            if !state.by_name.contains_key(candidate.as_str()) {
                let id = u32::try_from(state.names.len()).expect("symbol table overflow");
                let leaked: &'static str = Box::leak(candidate.into_boxed_str());
                state.names.push(leaked);
                state.by_name.insert(leaked, id);
                return Symbol(id);
            }
            counter += 1;
        }
    }

    /// The raw interner index (stable for the process lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(value: &str) -> Self {
        Symbol::intern(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("abel");
        let b = Symbol::intern("abel");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "abel");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("r"), Symbol::intern("g"));
    }

    #[test]
    fn fresh_symbols_do_not_collide() {
        let f1 = Symbol::fresh("x");
        let f2 = Symbol::fresh("x");
        assert_ne!(f1, f2);
        // And a later intern of the same text maps back to the fresh symbol.
        assert_eq!(Symbol::intern(f1.as_str()), f1);
    }
}
