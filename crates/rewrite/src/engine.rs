//! Saturation: computing `rew(ψ)` by exhaustive piece rewriting with
//! containment-based subsumption (Theorem 1 of the paper).

use std::collections::VecDeque;

use qr_hom::containment::contains;
use qr_hom::qcore::query_core;
use qr_syntax::{ConjunctiveQuery, Theory, Ucq};

use crate::unify::piece_rewritings;

/// Resource limits for the saturation loop.
#[derive(Clone, Copy, Debug)]
pub struct RewriteBudget {
    /// Maximum number of queries kept in the rewriting set.
    pub max_queries: usize,
    /// Maximum number of candidate queries generated overall.
    pub max_generated: usize,
    /// Candidates larger than this many atoms are discarded (counted as
    /// budget pressure, since a complete rewriting may need them).
    pub max_atoms: usize,
}

impl Default for RewriteBudget {
    fn default() -> Self {
        RewriteBudget {
            max_queries: 512,
            max_generated: 20_000,
            max_atoms: 48,
        }
    }
}

/// Whether saturation finished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RewriteOutcome {
    /// The rewriting set is saturated: it **is** `rew(ψ)` (finite, minimal
    /// up to the containment pruning) — a witness of BDD behaviour of the
    /// theory on this query.
    Complete,
    /// Budget exhausted (or candidates above `max_atoms` discarded): the
    /// returned set is sound but possibly incomplete — divergence evidence.
    Budget,
}

/// Rejection of inputs outside the engine's fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// The theory contains a rule with an empty or `dom`-scoped body; such
    /// theories (e.g. the paper's `T_d`) are handled by the marked-query
    /// process in `qr-core`, not by generic piece rewriting.
    BuiltinBody {
        /// Rendering of the offending rule.
        rule: String,
    },
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::BuiltinBody { rule } => {
                write!(
                    f,
                    "rule with builtin body unsupported by piece rewriting: {rule}"
                )
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// The result of a rewriting run.
#[derive(Clone, Debug)]
pub struct Rewriting {
    /// The rewriting set (each disjunct core-minimized; mutually
    /// incomparable under containment).
    pub ucq: Ucq,
    /// Saturated or budget-limited.
    pub outcome: RewriteOutcome,
    /// Number of candidate queries generated.
    pub generated: usize,
    /// Maximum rewriting-step depth reached.
    pub depth: usize,
}

impl Rewriting {
    /// The paper's rewriting-size measure `rs_T(ψ)`: the maximal number of
    /// atoms in a disjunct.
    pub fn rs(&self) -> usize {
        self.ucq.max_disjunct_size()
    }

    /// `true` iff saturation completed.
    pub fn is_complete(&self) -> bool {
        self.outcome == RewriteOutcome::Complete
    }

    /// Theorem 1's minimality condition: no disjunct contains another
    /// (pairwise containment-incomparable). The saturation loop maintains
    /// this invariant; this re-checks it from scratch.
    pub fn is_minimal(&self) -> bool {
        let ds = self.ucq.disjuncts();
        for i in 0..ds.len() {
            for j in 0..ds.len() {
                if i != j && contains(&ds[i], &ds[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Computes a UCQ rewriting of `query` under `theory` (see module docs).
pub fn rewrite(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
) -> Result<Rewriting, RewriteError> {
    rewrite_with_trace(theory, query, budget, |_, _| {})
}

/// Like [`rewrite`], invoking `trace(depth, query)` for every query accepted
/// into the rewriting set (useful for experiments and debugging).
pub fn rewrite_with_trace(
    theory: &Theory,
    query: &ConjunctiveQuery,
    budget: RewriteBudget,
    mut trace: impl FnMut(usize, &ConjunctiveQuery),
) -> Result<Rewriting, RewriteError> {
    for r in theory.rules() {
        if r.has_builtin_body() {
            return Err(RewriteError::BuiltinBody { rule: r.render() });
        }
    }

    let mut set: Vec<ConjunctiveQuery> = Vec::new();
    let mut work: VecDeque<(ConjunctiveQuery, usize)> = VecDeque::new();
    let mut generated = 0usize;
    let mut depth_reached = 0usize;
    let mut truncated = false;

    let seed = query_core(query);
    trace(0, &seed);
    set.push(seed.clone());
    work.push_back((seed, 0));

    'outer: while let Some((q, depth)) = work.pop_front() {
        // The query may have been evicted by a more general later arrival.
        if !set.iter().any(|r| r == &q) {
            continue;
        }
        for rule in theory.rules() {
            for pu in piece_rewritings(&q, rule) {
                generated += 1;
                if generated > budget.max_generated {
                    truncated = true;
                    break 'outer;
                }
                if pu.result.size() > budget.max_atoms {
                    truncated = true;
                    continue;
                }
                let cand = query_core(&pu.result);
                // Subsumed: some kept query already covers it (whenever the
                // candidate holds, the kept one does).
                if set.iter().any(|r| contains(&cand, r)) {
                    continue;
                }
                // Evict kept queries covered by the candidate.
                set.retain(|r| !contains(r, &cand));
                if set.len() >= budget.max_queries {
                    truncated = true;
                    break 'outer;
                }
                depth_reached = depth_reached.max(depth + 1);
                trace(depth + 1, &cand);
                set.push(cand.clone());
                work.push_back((cand, depth + 1));
            }
        }
    }

    let outcome = if truncated || !work.is_empty() {
        RewriteOutcome::Budget
    } else {
        RewriteOutcome::Complete
    };
    Ok(Rewriting {
        ucq: Ucq::new(set),
        outcome,
        generated,
        depth: depth_reached,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_query, parse_theory};

    fn run(theory: &str, query: &str) -> Rewriting {
        rewrite(
            &parse_theory(theory).unwrap(),
            &parse_query(query).unwrap(),
            RewriteBudget::default(),
        )
        .unwrap()
    }

    #[test]
    fn example_1_family() {
        let r = run(
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            "?(X) :- mother(X, M).",
        );
        assert!(r.is_complete());
        // mother(X,M) ∨ human(X) ∨ mother(U,X) (X a mother's child is human,
        // and humans have mothers).
        assert_eq!(r.ucq.len(), 3);
    }

    #[test]
    fn exercise_12_linear_path() {
        // T_p = e(X,Y) -> e(Y,Z) is BDD; a 2-path rewrites to a single edge.
        let r = run("e(X,Y) -> e(Y,Z).", "? :- e(A,B), e(B,C).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn longer_paths_still_one_edge() {
        let r = run("e(X,Y) -> e(Y,Z).", "? :- e(A,B), e(B,C), e(C,D), e(D,E).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn anchored_query_keeps_prefix_disjuncts() {
        // Ch(T,D) has a 2-path from A iff A touches any edge of D (every
        // element grows an infinite forward path), so the rewriting is the
        // pair of single-edge queries around A.
        let r = run("e(X,Y) -> e(Y,Z).", "?(A) :- e(A,B), e(B,C).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 2); // e(A,B) and e(B,A)
        assert_eq!(r.rs(), 1);
    }

    #[test]
    fn transitivity_diverges() {
        // Unbounded Datalog: not BDD; the engine must hit its budget.
        let r = rewrite(
            &parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap(),
            &parse_query("? :- e(a, b).").unwrap(),
            RewriteBudget {
                max_queries: 64,
                max_generated: 2_000,
                max_atoms: 12,
            },
        )
        .unwrap();
        assert_eq!(r.outcome, RewriteOutcome::Budget);
        assert!(r.ucq.len() > 8, "paths of many lengths should appear");
    }

    #[test]
    fn t_d_is_rejected() {
        let t = parse_theory("true -> r(X,X).\ndom(X) -> r(X,Z).").unwrap();
        let q = parse_query("? :- r(A,B).").unwrap();
        let err = rewrite(&t, &q, RewriteBudget::default()).unwrap_err();
        assert!(matches!(err, RewriteError::BuiltinBody { .. }));
    }

    #[test]
    fn guarded_two_rule_theory() {
        let r = run("p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).", "? :- p(A).");
        // p(A) ∨ q(A) ∨ p(B),e(B,A) ∨ q(B),e(B,A) ∨ longer chains... p is
        // propagated along edges, so this is unbounded Datalog-ish — but
        // each new disjunct extends the chain: budget or growth expected.
        assert!(r.ucq.len() >= 2);
    }

    #[test]
    fn sticky_example_39_atomic_query() {
        // Example 39: E(x,y,y',t), R(x,t') -> ∃y'' E(x,y',y,t') — for the
        // fully existential atomic query, every rewriting step introduces an
        // e-atom, so all rewrites are subsumed by the query itself.
        let r = run("e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).", "? :- e(A,B,C,D).");
        assert!(r.is_complete());
        assert_eq!(r.ucq.len(), 1);
        // Anchoring the spectator and the color makes the r-atom matter.
        let r2 = run(
            "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
            "?(A,D) :- e(A,B,C,D).",
        );
        assert!(r2.is_complete());
        assert_eq!(r2.ucq.len(), 2);
        assert_eq!(r2.rs(), 2);
    }

    #[test]
    fn trace_sees_every_kept_query() {
        let t = parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap();
        let q = parse_query("?(X) :- mother(X, M).").unwrap();
        let mut seen = Vec::new();
        let r = rewrite_with_trace(&t, &q, RewriteBudget::default(), |d, cq| {
            seen.push((d, cq.render()));
        })
        .unwrap();
        assert!(seen.len() >= r.ucq.len());
        assert_eq!(seen[0].0, 0);
    }
}
