//! The FUS/FES conjecture, executably (Sections 6 and 8).
//!
//! A theory is **UBDD** (Definition 26 / Observation 27) when one chase
//! depth `c_T` works for every instance and query:
//! `Core(T,D) ⊆ Ch_{c_T}(T,D)` for all `D`. Theorem 4 proves this for
//! *local* core-terminating theories by assembling a global fold from the
//! cores of the ≤`l_T`-element subinstances (`I_D`, `C_D`, the structures
//! `M_F` of Definition 36).
//!
//! This module measures the per-instance constant `c_{T,D}` over instance
//! families ([`uniform_bound_profile`]) — flat profiles witness UBDD
//! behaviour, growing ones (e.g. the Example 28 truncations) refute a
//! uniform bound — and implements the constructive objects of Theorem 4's
//! proof on bounded chase prefixes ([`c_d_of`], [`theorem4_certificate`]).

use std::collections::HashSet;

use qr_chase::core_term::{core_termination, CoreTermBudget, CoreTermination};
use qr_chase::engine::{chase, ChaseBudget};
use qr_chase::model::is_model;
use qr_hom::structure::{apply_term_map, instance_hom, structure_core};
use qr_syntax::{Fact, Instance, TermId, Theory};

/// Per-family measurement of the uniformity constant.
#[derive(Clone, Debug)]
pub struct UniformBoundProfile {
    /// For each instance: its size and the certified `c_{T,D}` (an upper
    /// bound from the core-termination probe), `None` when no certificate
    /// was found within budget.
    pub per_instance: Vec<(usize, Option<usize>)>,
}

impl UniformBoundProfile {
    /// `true` if every instance received a certificate.
    pub fn all_certified(&self) -> bool {
        self.per_instance.iter().all(|(_, c)| c.is_some())
    }

    /// The largest certified bound.
    pub fn max_bound(&self) -> Option<usize> {
        self.per_instance.iter().filter_map(|(_, c)| *c).max()
    }

    /// `true` if all certified bounds are equal (the UBDD signature on this
    /// family).
    pub fn is_flat(&self) -> bool {
        let bounds: Vec<usize> = self.per_instance.iter().filter_map(|(_, c)| *c).collect();
        bounds.windows(2).all(|w| w[0] == w[1])
    }
}

/// Measures `c_{T,D}` across an instance family (Observation 27's
/// quantity). For a UBDD theory the numbers are bounded by `c_T`
/// independently of the instance; for BDD-but-not-FES theories (`T_p`) no
/// certificates appear; for the Example 28 truncations the bound grows with
/// the truncation parameter.
pub fn uniform_bound_profile(
    theory: &Theory,
    family: &[Instance],
    budget: CoreTermBudget,
) -> UniformBoundProfile {
    let per_instance = family
        .iter()
        .map(|db| {
            let c = match core_termination(theory, db, budget) {
                CoreTermination::CoreTerminates { depth, .. } => Some(depth),
                CoreTermination::Unknown { .. } => None,
            };
            (db.len(), c)
        })
        .collect();
    UniformBoundProfile { per_instance }
}

/// All subsets of `db` with at most `l` facts — the paper's `I_D`
/// (Definition 32). Exponential; intended for small instances.
pub fn small_subsets(db: &Instance, l: usize) -> Vec<Instance> {
    let facts: Vec<Fact> = db.iter().map(|f| f.to_fact()).collect();
    assert!(facts.len() <= 24, "I_D enumeration is exponential");
    let mut out = Vec::new();
    for mask in 0u64..(1 << facts.len()) {
        if (mask.count_ones() as usize) > l || mask == 0 {
            continue;
        }
        out.push(Instance::from_facts(
            facts
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, f)| f.clone()),
        ));
    }
    out
}

/// The paper's `C_D` (Definition 32): the union of `Core(T,F)` over all
/// subsets `F ⊆ D` with `|F| ≤ l`, plus the observed `k_T` (Lemma 33).
pub fn c_d_of(
    theory: &Theory,
    db: &Instance,
    l: usize,
    budget: CoreTermBudget,
) -> Option<(Instance, usize)> {
    let mut union = Instance::new();
    let mut k = 0usize;
    for f in small_subsets(db, l) {
        match core_termination(theory, &f, budget) {
            CoreTermination::CoreTerminates { depth, core } => {
                k = k.max(depth);
                union.extend(core.iter().map(|f| f.to_fact()));
            }
            CoreTermination::Unknown { .. } => return None,
        }
    }
    Some((union, k))
}

/// A Theorem-4-style certificate: a verified model `M ⊨ T` with
/// `D ⊆ M ⊆ Ch_n(T,D)` and `dom(M) ⊆ dom(C_D)` (the conclusion of
/// Lemma 34). Returns `(M, n)`.
pub fn theorem4_certificate(
    theory: &Theory,
    db: &Instance,
    l: usize,
    budget: CoreTermBudget,
) -> Option<(Instance, usize)> {
    let (cd, _k) = c_d_of(theory, db, l, budget)?;
    let total = budget.max_depth + budget.lookahead;
    let ch = chase(
        theory,
        db,
        ChaseBudget {
            max_rounds: total,
            max_facts: budget.max_facts,
        },
    );
    let cd_terms: HashSet<TermId> = cd.domain().iter().copied().collect();
    let frozen: HashSet<TermId> = db.domain().iter().copied().collect();
    for n in 0..=ch.rounds.min(budget.max_depth) {
        let target = ch.prefix(n).induced(&cd_terms);
        if !db.subset_of(&target) {
            continue;
        }
        let fixed: std::collections::HashMap<TermId, TermId> =
            frozen.iter().map(|t| (*t, *t)).collect();
        if let Some(h) = instance_hom(&ch.instance, &target, &fixed) {
            let image = apply_term_map(&ch.instance, &h);
            let (folded, _) = structure_core(&image, &frozen);
            for candidate in [folded, image] {
                if is_model(&candidate, theory) {
                    return Some((candidate, n));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theories::{ex23, ex28, t_p};
    use qr_syntax::parse_instance;

    fn e_path(n: usize) -> Instance {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("e(p{i}, p{}).\n", i + 1));
        }
        parse_instance(&src).unwrap()
    }

    #[test]
    fn ex23_has_flat_profile() {
        // FES + BDD (and local): the uniformity constant is flat across
        // growing paths — the Theorem 4 signature.
        let family: Vec<Instance> = (1..=5).map(e_path).collect();
        let p = uniform_bound_profile(&ex23(), &family, CoreTermBudget::default());
        assert!(p.all_certified(), "{:?}", p.per_instance);
        assert!(p.max_bound().unwrap() <= 2);
    }

    #[test]
    fn t_p_is_never_certified() {
        let family: Vec<Instance> = (1..=3).map(e_path).collect();
        let p = uniform_bound_profile(&t_p(), &family, CoreTermBudget::default());
        assert!(p.per_instance.iter().all(|(_, c)| c.is_none()));
    }

    #[test]
    fn ex28_bound_grows_with_truncation() {
        // The Example 28 phenomenon: c_T(K) = K on the single-edge E_K
        // instance, so no uniform bound exists for the infinite union.
        for k in 2..=4 {
            let db = parse_instance(&format!("e{k}(a, b).")).unwrap();
            let p = uniform_bound_profile(
                &ex28(k),
                std::slice::from_ref(&db),
                CoreTermBudget {
                    max_depth: 8,
                    lookahead: 2,
                    max_facts: 100_000,
                },
            );
            assert_eq!(p.per_instance[0].1, Some(k), "truncation {k}");
        }
    }

    #[test]
    fn small_subsets_counts() {
        let db = e_path(3);
        assert_eq!(small_subsets(&db, 1).len(), 3);
        assert_eq!(small_subsets(&db, 2).len(), 6);
        assert_eq!(small_subsets(&db, 3).len(), 7);
    }

    #[test]
    fn c_d_and_certificate_for_ex23() {
        let db = e_path(3);
        let (cd, k) = c_d_of(&ex23(), &db, 2, CoreTermBudget::default()).unwrap();
        assert!(db.subset_of(&cd));
        assert!(k <= 2);
        let (m, n) = theorem4_certificate(&ex23(), &db, 2, CoreTermBudget::default())
            .expect("certificate exists");
        assert!(db.subset_of(&m));
        assert!(is_model(&m, &ex23()));
        assert!(n <= 2);
    }
}
