//! Serving workloads behind `BENCH_serve.json`.
//!
//! Each workload is a *seeded, pinned* request stream against a fixed set
//! of tenants, replayed through [`qr_serve::Engine`]. The stream mixes
//! labeled segments — cold distinct shapes, α-renamed isomorphic variants
//! of a small base pool, and hot exact repeats — shuffled together, so the
//! cache sees realistic interleaved traffic while per-segment hit rates
//! stay attributable. Everything the report carries except wall times is
//! deterministic: the engine's [`ServeCounters`](qr_serve::ServeCounters)
//! are updated only at the ordered merge point, and the full response
//! trace is condensed into an FNV-1a hash that pins request/response
//! behavior byte-for-byte across thread counts and commits.

use std::time::Instant;

use qr_rewrite::RewriteBudget;
use qr_serve::{render_trace, CqRequest, Engine, EngineConfig, ResponseStatus, Tier};
use qr_testkit::Rng;

use crate::report::{ServeRun, ServeSegment};

/// One pinned serving workload: label, engine config (threads overridden
/// at run time), and the tagged request stream.
pub struct ServeWorkload {
    /// Workload label (the `BENCH_serve.json` key).
    pub label: &'static str,
    /// Engine config the workload runs under (`threads` is replaced by the
    /// harness's pool width).
    pub config: EngineConfig,
    /// The request stream, in submission order.
    pub requests: Vec<CqRequest>,
    /// Segment tag per request, aligned with `requests`.
    pub tags: Vec<&'static str>,
}

/// FNV-1a over the rendered response trace: a 64-bit determinism pin that
/// is cheap to store in the baseline and collides only on real drift.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Registers the four benchmark tenants. `path`/`family`/`guarded`
/// saturate under the workload budget; `tc` (transitive closure) budgets
/// out, pinning the sound-but-incomplete serving path.
fn register_tenants(engine: &mut Engine) {
    let mut path_data = String::new();
    for i in 0..20 {
        path_data.push_str(&format!("e(n{i},n{}). ", i + 1));
    }
    engine
        .register("path", "e(X,Y) -> e(Y,Z).", &path_data)
        .expect("path tenant registers");

    let mut family_data = String::new();
    for i in 0..9 {
        family_data.push_str(&format!("mother(m{i},m{}). ", i + 1));
    }
    family_data.push_str("human(solo).");
    engine
        .register(
            "family",
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            &family_data,
        )
        .expect("family tenant registers");

    let mut guarded_data = String::from("q(g0). ");
    for i in 0..9 {
        guarded_data.push_str(&format!("e(g{i},g{}). ", i + 1));
    }
    engine
        .register(
            "guarded",
            "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
            &guarded_data,
        )
        .expect("guarded tenant registers");

    engine
        .register(
            "tc",
            "e(X,Y), e(Y,Z) -> e(X,Z).",
            "e(c0,c1). e(c1,c2). e(c2,c3). e(c3,c4).",
        )
        .expect("tc tenant registers");
}

/// The isomorphism base pool: query templates whose `{i}` slots are
/// variable placeholders. Rendering a template with any injective naming
/// (same slot order) parses to the same structure, so every rendering of
/// one template shares a freeze key — the α-renamed cache-hit traffic.
const ISO_SHAPES: [(&str, &str); 16] = [
    ("path", "?({0}) :- e({0},{1}), e({1},{2})."),
    ("path", "? :- e({0},{1}), e({1},{2}), e({2},{3})."),
    ("path", "?({0},{2}) :- e({0},{1}), e({1},{2})."),
    ("path", "? :- e(n0, {0}), e({0}, n2)."),
    ("family", "?({0}) :- mother({0},{1})."),
    ("family", "?({1}) :- mother({0},{1}), mother({1},{2})."),
    ("family", "? :- mother({0},{1}), human({1})."),
    ("family", "?({0}) :- human({0})."),
    ("guarded", "? :- p({0})."),
    ("guarded", "? :- p({0}), e({0},{1})."),
    ("guarded", "? :- p({0}), p({1})."),
    ("tc", "? :- e(c0,{0}), e({0},c2)."),
    ("path", "?({0}) :- e({0},{1}), e({2},{1})."),
    ("family", "? :- mother({0},{1}), mother({2},{1})."),
    ("guarded", "? :- q({0}), e({0},{1})."),
    ("path", "? :- e({0},{0})."),
];

/// Renders a template, substituting `{i}` with `name(i)`.
fn render_template(tpl: &str, name: &dyn Fn(usize) -> String) -> String {
    let mut out = String::new();
    let bytes = tpl.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            let close = tpl[i..].find('}').expect("template braces balance") + i;
            let slot: usize = tpl[i + 1..close].parse().expect("numeric template slot");
            out.push_str(&name(slot));
            i = close + 1;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

fn request(theory: &str, query: String) -> CqRequest {
    CqRequest {
        theory: theory.to_owned(),
        query,
    }
}

/// The workload budget: small enough that the `tc` tenant's rewritings
/// budget out quickly (bounding per-miss cost and pinning the incomplete
/// path), large enough that every other tenant saturates.
fn workload_budget() -> RewriteBudget {
    RewriteBudget {
        max_queries: 24,
        max_generated: 400,
        max_atoms: 8,
    }
}

/// `serve-mixed`: 1200 requests — 120 cold distinct shapes, 700 α-renamed
/// variants over the 16-template base pool, 380 hot exact repeats —
/// shuffled under a pinned seed. The isomorphic-variant segment's hit rate
/// is ≥ (700 − 16)/700 ≈ 97% by construction (each template misses at
/// most once across the whole stream).
pub fn serve_mixed() -> ServeWorkload {
    let mut rng = Rng::new(0x5e7_e01);
    let mut tagged: Vec<(&'static str, CqRequest)> = Vec::new();

    // Cold segment: distinct freeze keys via constant anchors, each
    // submitted exactly once.
    for i in 0..20 {
        tagged.push((
            "cold",
            request("path", format!("? :- e(n{i}, V0), e(V0, V1).")),
        ));
        tagged.push(("cold", request("path", format!("?(V0) :- e(n{i}, V0)."))));
        tagged.push((
            "cold",
            request("path", format!("? :- e(n{i},V0), e(V0,V1), e(V1,V2).")),
        ));
    }
    for i in 0..10 {
        tagged.push(("cold", request("family", format!("? :- mother(m{i}, V0)."))));
        tagged.push((
            "cold",
            request("family", format!("?(V0) :- mother(V0, m{i}).")),
        ));
        tagged.push(("cold", request("guarded", format!("? :- p(g{i})."))));
        tagged.push((
            "cold",
            request("family", format!("? :- mother(m{i}, V0), mother(V0, V1).")),
        ));
        tagged.push((
            "cold",
            request("guarded", format!("? :- p(g{i}), e(g{i}, V0).")),
        ));
    }
    for (i, j) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
        tagged.push(("cold", request("tc", format!("? :- e(c{i}, c{j})."))));
    }
    assert_eq!(tagged.len(), 116, "cold pool is pinned");

    // Isomorphic-variant segment: α-renamings of the base pool. The salt
    // keeps names fresh per request; slot order is untouched, so every
    // rendering of a template shares its freeze key.
    for _ in 0..704 {
        let (tenant, tpl) = *rng.pick(&ISO_SHAPES);
        let salt = rng.below(100_000);
        tagged.push((
            "iso",
            request(tenant, render_template(tpl, &|v| format!("V{salt}x{v}"))),
        ));
    }

    // Hot segment: exact repeats of the first eight templates' identity
    // renderings — the steady-state cache-resident traffic.
    for _ in 0..380 {
        let (tenant, tpl) = ISO_SHAPES[rng.below(8)];
        tagged.push((
            "hot",
            request(tenant, render_template(tpl, &|v| format!("H{v}"))),
        ));
    }

    // Fisher–Yates under the same pinned stream: the mixed order is part
    // of the workload definition.
    for i in (1..tagged.len()).rev() {
        let j = rng.below(i + 1);
        tagged.swap(i, j);
    }

    let (tags, requests) = tagged.into_iter().unzip();
    ServeWorkload {
        label: "serve-mixed",
        config: EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            rewrite_budget: workload_budget(),
            answer_limit: 12,
        },
        requests,
        tags,
    }
}

/// `serve-churn`: 320 requests cycling through 40 distinct shapes under a
/// byte budget that holds only a handful of entries — the LRU eviction
/// stress. Immediate repeats (25% of steps) are the only hits; cyclic
/// sweeps through 40 keys always evict before reuse.
pub fn serve_churn() -> ServeWorkload {
    let mut rng = Rng::new(0xc4u64);
    let mut requests = Vec::new();
    let mut tags = Vec::new();
    let mut k = 0usize;
    while requests.len() < 320 {
        let repeat = !requests.is_empty() && rng.below(4) == 0;
        if !repeat {
            k = (k + 1) % 40;
        }
        requests.push(request(
            "path",
            format!("? :- e(n{}, V0), e(V0, V1).", k % 40),
        ));
        tags.push("churn");
    }
    ServeWorkload {
        label: "serve-churn",
        config: EngineConfig {
            threads: 1,
            cache_bytes: 3_000,
            rewrite_budget: workload_budget(),
            answer_limit: 0,
        },
        requests,
        tags,
    }
}

/// Replays a workload on a pool of `threads` workers and condenses the
/// outcome into a [`ServeRun`].
pub fn run_workload(w: &ServeWorkload, threads: usize) -> ServeRun {
    let mut engine = Engine::new(EngineConfig {
        threads,
        ..w.config
    });
    register_tenants(&mut engine);
    let t0 = Instant::now();
    let responses = engine.run(w.requests.clone());
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut segments: Vec<ServeSegment> = Vec::new();
    for (tag, resp) in w.tags.iter().zip(&responses) {
        let seg = match segments.iter_mut().find(|s| s.name == *tag) {
            Some(seg) => seg,
            None => {
                segments.push(ServeSegment {
                    name: (*tag).to_owned(),
                    requests: 0,
                    hits: 0,
                    misses: 0,
                });
                segments.last_mut().expect("just pushed")
            }
        };
        seg.requests += 1;
        match resp.status {
            ResponseStatus::Answered {
                tier: Tier::Hit, ..
            } => seg.hits += 1,
            ResponseStatus::Answered {
                tier: Tier::Miss, ..
            } => seg.misses += 1,
            ResponseStatus::Rejected { .. } | ResponseStatus::Written { .. } => {}
        }
    }
    segments.sort_by(|a, b| a.name.cmp(&b.name));

    let stats = engine.stats();
    ServeRun {
        workload: w.label.to_owned(),
        threads: engine.threads(),
        wall_ms,
        counters: stats.counters,
        segments,
        trace_fnv: fnv1a(render_trace(&responses).as_bytes()),
        p50_ms: stats.p50_ms(),
        p95_ms: stats.p95_ms(),
        p99_ms: stats.p99_ms(),
    }
}

/// Known serve workload labels, in run order.
pub fn workload_labels() -> Vec<&'static str> {
    vec!["serve-mixed", "serve-churn"]
}

/// All serve runs for `BENCH_serve.json`, optionally filtered by label
/// (empty filter = all), on a pool of `threads` workers.
pub fn stats_runs(threads: usize, filter: &[String]) -> Vec<ServeRun> {
    let selected = |label: &str| filter.is_empty() || filter.iter().any(|f| f == label);
    let mut out = Vec::new();
    if selected("serve-mixed") {
        out.push(run_workload(&serve_mixed(), threads));
    }
    if selected("serve-churn") {
        out.push(run_workload(&serve_churn(), threads));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment<'a>(run: &'a ServeRun, name: &str) -> &'a ServeSegment {
        run.segments
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("segment {name} missing"))
    }

    #[test]
    fn generator_is_pinned() {
        let a = serve_mixed();
        let b = serve_mixed();
        assert_eq!(a.requests, b.requests, "seeded stream is reproducible");
        assert_eq!(a.tags, b.tags);
        assert!(a.requests.len() >= 1000, "acceptance floor");
        let c = serve_churn();
        assert_eq!(c.requests, serve_churn().requests);
    }

    /// The tentpole acceptance gate: ≥ 1000 mixed requests, > 80% hit rate
    /// on the isomorphic-variant segment, and counters + trace hash
    /// invariant across worker-pool widths.
    #[test]
    fn mixed_workload_hits_and_is_thread_invariant() {
        let w = serve_mixed();
        let seq = run_workload(&w, 1);
        assert_eq!(seq.counters.requests as usize, w.requests.len());
        assert_eq!(seq.counters.rejected, 0, "the generator emits no garbage");

        let iso = segment(&seq, "iso");
        assert!(
            iso.hits as f64 > 0.8 * iso.requests as f64,
            "iso segment hit rate must exceed 80%: {}/{} hits",
            iso.hits,
            iso.requests
        );
        let cold = segment(&seq, "cold");
        assert_eq!(cold.hits, 0, "cold shapes are all distinct");
        assert_eq!(cold.misses, 116);
        let hot = segment(&seq, "hot");
        assert!(hot.hits > hot.misses, "hot repeats are cache-resident");

        assert!(
            seq.counters.incomplete > 0,
            "tc serves budget-capped answers"
        );
        assert!(seq.counters.truncated > 0, "the answer limit fires");
        assert_eq!(seq.counters.evictions, 0, "mixed fits its byte budget");

        let par = run_workload(&w, 3);
        assert_eq!(seq.counters, par.counters, "counters are thread-invariant");
        assert_eq!(seq.trace_fnv, par.trace_fnv, "traces are byte-identical");
        for (a, b) in seq.segments.iter().zip(&par.segments) {
            assert_eq!(
                (a.requests, a.hits, a.misses),
                (b.requests, b.hits, b.misses)
            );
        }
    }

    #[test]
    fn churn_workload_forces_evictions_soundly() {
        let w = serve_churn();
        let run = run_workload(&w, 1);
        assert!(run.counters.evictions > 0, "the tiny budget must churn");
        assert!(run.counters.hits > 0, "immediate repeats still hit");
        assert!(
            run.counters.misses > run.counters.hits,
            "cyclic sweeps defeat a tiny LRU"
        );
        // Eviction-churn must stay invisible in the answers: same stream,
        // roomy cache, same responses modulo the hit/miss tier. Answer
        // counts are part of the trace, so compare emitted totals.
        let mut roomy = Engine::new(EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            ..w.config
        });
        register_tenants(&mut roomy);
        let responses = roomy.run(w.requests.clone());
        assert_eq!(
            roomy.stats().counters.answers_emitted,
            run.counters.answers_emitted,
            "evictions change tiers, never answers"
        );
        assert_eq!(roomy.stats().counters.evictions, 0);
        assert_eq!(responses.len(), w.requests.len());
    }

    #[test]
    fn template_renderer_substitutes_slots() {
        let q = render_template("?({0}) :- e({0},{1}).", &|v| format!("Z{v}"));
        assert_eq!(q, "?(Z0) :- e(Z0,Z1).");
    }

    #[test]
    fn fnv_is_the_reference_implementation() {
        // Pinned reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
