//! Skolemization of rule heads (Definitions 3–4 of the paper).
//!
//! A Skolem function `f_i^τ` is determined by the *isomorphism type* `τ` of
//! the (head of the) rule and by the existential variable it witnesses — not
//! by the rule itself. Two rules with isomorphic heads therefore share
//! Skolem functions, and the paper's Observation 8 (literal equality of
//! chases) holds across theories that share head shapes.
//!
//! The isomorphism type is computed by canonicalizing the head: frontier
//! variables and existential variables are renumbered in first-occurrence
//! order over a deterministically sorted atom list, and the result is
//! rendered to a tag string. The canonicalization is exact for the
//! single-atom heads of the paper's Definition 3 and a sound (deterministic,
//! renaming-invariant in practice) generalization for multi-atom heads.

use std::collections::HashMap;

use qr_syntax::query::{QAtom, QTerm, Var};
use qr_syntax::{Fact, SkolemFn, Symbol, TermId, Tgd};

/// A rule pre-processed for chasing: canonical frontier order and one Skolem
/// function per existential variable.
#[derive(Clone, Debug)]
pub struct SkolemizedRule {
    /// Frontier variables in the canonical order used as Skolem arguments.
    pub frontier: Vec<Var>,
    /// For each existential variable, its Skolem function.
    pub skolem_of: HashMap<Var, SkolemFn>,
}

impl SkolemizedRule {
    /// Pre-processes a rule.
    pub fn new(rule: &Tgd) -> SkolemizedRule {
        let frontier_set: Vec<Var> = rule.frontier();
        let existential: Vec<Var> = rule.existential_vars();

        // Canonicalize the head: sort atoms by a label-rendering, renumber
        // variables in first-occurrence order, repeat to stabilize.
        let mut labels: HashMap<Var, String> = HashMap::new();
        for v in &frontier_set {
            labels.insert(*v, "f".to_owned());
        }
        for v in &existential {
            labels.insert(*v, "e".to_owned());
        }
        let mut atoms: Vec<&QAtom> = rule.head().iter().collect();
        let mut frontier_order: Vec<Var> = Vec::new();
        let mut exist_order: Vec<Var> = Vec::new();
        for _ in 0..2 {
            atoms.sort_by_key(|a| render_atom(a, &labels));
            frontier_order.clear();
            exist_order.clear();
            for a in &atoms {
                for v in a.vars() {
                    if frontier_set.contains(&v) {
                        if !frontier_order.contains(&v) {
                            frontier_order.push(v);
                        }
                    } else if !exist_order.contains(&v) {
                        exist_order.push(v);
                    }
                }
            }
            for (i, v) in frontier_order.iter().enumerate() {
                labels.insert(*v, format!("f{i}"));
            }
            for (i, v) in exist_order.iter().enumerate() {
                labels.insert(*v, format!("e{i}"));
            }
        }
        atoms.sort_by_key(|a| render_atom(a, &labels));
        let tau: String = atoms
            .iter()
            .map(|a| render_atom(a, &labels))
            .collect::<Vec<_>>()
            .join(",");

        let arity = frontier_order.len() as u32;
        let skolem_of = exist_order
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let tag = Symbol::intern(&format!("sk!{i}[{tau}]"));
                (*v, SkolemFn::intern(tag, arity))
            })
            .collect();

        SkolemizedRule {
            frontier: frontier_order,
            skolem_of,
        }
    }

    /// Instantiates the head of `rule` under a complete body assignment,
    /// producing the facts of `appl(ρ,σ)` (Definition 5) plus the frontier
    /// image used by provenance.
    ///
    /// `lookup` maps each frontier variable to its ground term.
    pub fn apply(&self, rule: &Tgd, lookup: impl Fn(Var) -> TermId) -> (Vec<Fact>, Vec<TermId>) {
        let frontier_args: Vec<TermId> = self.frontier.iter().map(|v| lookup(*v)).collect();
        let facts = self.apply_with_frontier(rule, &frontier_args, lookup);
        (facts, frontier_args)
    }

    /// Like [`apply`](Self::apply), but with the frontier image already
    /// computed by the caller (the chase computes it first, for trigger
    /// deduplication, and must not pay for it twice). `frontier_args` must
    /// be `lookup` applied to [`frontier`](Self::frontier), in order.
    pub fn apply_with_frontier(
        &self,
        rule: &Tgd,
        frontier_args: &[TermId],
        lookup: impl Fn(Var) -> TermId,
    ) -> Vec<Fact> {
        let term_of = |v: Var| -> TermId {
            if let Some(f) = self.skolem_of.get(&v) {
                TermId::skolem(*f, frontier_args)
            } else {
                lookup(v)
            }
        };
        rule.head()
            .iter()
            .map(|a| {
                Fact::new(
                    a.pred,
                    a.args
                        .iter()
                        .map(|t| match t {
                            QTerm::Var(v) => term_of(*v),
                            QTerm::Const(c) => TermId::constant(*c),
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }
}

fn render_atom(a: &QAtom, labels: &HashMap<Var, String>) -> String {
    let mut out = String::new();
    out.push_str(a.pred.name().as_str());
    out.push('/');
    out.push_str(&a.pred.arity().to_string());
    out.push('(');
    for (i, t) in a.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match t {
            QTerm::Var(v) => match labels.get(v) {
                Some(l) => out.push_str(l),
                None => out.push('?'),
            },
            QTerm::Const(c) => {
                out.push('"');
                out.push_str(c.as_str());
                out.push('"');
            }
        }
    }
    out.push(')');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::parse_theory;

    #[test]
    fn isomorphic_heads_share_skolems() {
        // Two rules with different bodies but isomorphic heads must use the
        // same Skolem function (Definition 4: sh(ρ) does not depend on the
        // body).
        let t = parse_theory(
            "p(X) -> m(X, Y).\n\
             q(X, U), p(U) -> m(X, Y).",
        )
        .unwrap();
        let s1 = SkolemizedRule::new(&t.rules()[0]);
        let s2 = SkolemizedRule::new(&t.rules()[1]);
        let f1 = *s1.skolem_of.values().next().unwrap();
        let f2 = *s2.skolem_of.values().next().unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn different_equality_patterns_differ() {
        // R(y,v,z,v) vs R(y,v,z,w): different isomorphism types.
        let t = parse_theory(
            "e(X,Y,Z) -> r(Y,V,Z,V).\n\
             e(X,Y,Z) -> r(Y,V,Z,W).",
        )
        .unwrap();
        let s1 = SkolemizedRule::new(&t.rules()[0]);
        let s2 = SkolemizedRule::new(&t.rules()[1]);
        let f1 = *s1.skolem_of.values().next().unwrap();
        let f2: Vec<SkolemFn> = s2.skolem_of.values().copied().collect();
        assert!(!f2.contains(&f1));
    }

    #[test]
    fn skolem_ignores_non_frontier_body_vars() {
        // Semi-oblivious: E(x,y,z),P(x) ⇒ ∃v R(y,v,z,v) skolemizes v as
        // f(y,z) — x does not appear.
        let t = parse_theory("e(X,Y,Z), p(X) -> r(Y,V,Z,V).").unwrap();
        let s = SkolemizedRule::new(&t.rules()[0]);
        assert_eq!(s.frontier.len(), 2);
        let f = *s.skolem_of.values().next().unwrap();
        assert_eq!(f.arity(), 2);
    }

    #[test]
    fn apply_instantiates_head() {
        let t = parse_theory("human(X) -> mother(X, Y).").unwrap();
        let rule = &t.rules()[0];
        let s = SkolemizedRule::new(rule);
        let abel = TermId::constant(Symbol::intern("abel"));
        let (facts, frontier) = s.apply(rule, |_| abel);
        assert_eq!(frontier, vec![abel]);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].args[0], abel);
        assert!(!facts[0].args[1].is_const());
        // Determinism: applying twice yields the identical fact.
        let (facts2, _) = s.apply(rule, |_| abel);
        assert_eq!(facts, facts2);
    }

    #[test]
    fn multi_head_shares_existential_witness() {
        // true -> r(X,X), g(X,X): one existential X appearing in both atoms
        // must be witnessed by one Skolem term.
        let t = parse_theory("true -> r(X,X), g(X,X).").unwrap();
        let rule = &t.rules()[0];
        let s = SkolemizedRule::new(rule);
        assert!(s.frontier.is_empty());
        assert_eq!(s.skolem_of.len(), 1);
        let (facts, _) = s.apply(rule, |_| unreachable!("no frontier"));
        assert_eq!(facts.len(), 2);
        assert_eq!(facts[0].args[0], facts[0].args[1]);
        assert_eq!(facts[0].args[0], facts[1].args[0]);
    }
}
