//! **E14 — Exercises 13 & 17, Observation 29**: the "BDD is local"
//! intuitions, quantified.
//!
//! * Exercise 13: input constants joined by a chase fact were already close
//!   in `D` (bounded *edge contraction*) — flat for BDD theories, growing
//!   with the instance for transitive closure (not BDD).
//! * Exercise 17: facts about existing terms appear with constant delay
//!   (`n_at`) — again flat for BDD, growing for transitive closure.
//! * Observation 29: entailment is always witnessed by ≤ `rs_T(ψ)` facts.

use std::time::Instant;

use qr_classes::exercises::{edge_contraction_bound, observation29_check, production_delay_bound};
use qr_core::theories::{t_a, t_p};
use qr_syntax::{parse_instance, parse_query, parse_theory, Instance, Theory};

use crate::Table;

fn path(n: usize) -> Instance {
    let mut s = String::new();
    for i in 0..n {
        s.push_str(&format!("e(x{i}, x{}).\n", i + 1));
    }
    parse_instance(&s).expect("path parses")
}

/// The E14 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E14  Ex. 13/17, Obs. 29 — BDD locality intuitions, quantified",
        "contraction d and delay n_at flat for BDD theories, growing for transitive closure; Obs. 29 holds",
        &["theory", "|D| (path)", "Ex.13 d", "Ex.17 n_at", "Obs.29 ok", "ms"],
    );
    let tc = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").expect("parses");
    let cases: Vec<(&str, Theory, usize)> = vec![
        ("T_p (BDD)", t_p(), 1),
        ("T_a (BDD)", t_a(), 1),
        ("transitive closure (not BDD)", tc, usize::MAX),
    ];
    for (name, theory, rs) in cases {
        for n in [4usize, 8, 16] {
            let t0 = Instant::now();
            let db = if name.starts_with("T_a") {
                parse_instance(&format!("human(h{n}). mother(h{n}, m{n}).\n")).expect("parses")
            } else {
                path(n)
            };
            let d = edge_contraction_bound(&theory, &db, 6);
            let delay = production_delay_bound(&theory, &db, 6);
            let obs29 = if rs == usize::MAX {
                "n/a".to_string()
            } else {
                let q = parse_query(if name.starts_with("T_a") {
                    "?(X) :- mother(X, M)."
                } else {
                    "? :- e(A,B), e(B,C)."
                })
                .expect("parses");
                let ans: Vec<qr_syntax::TermId> = if q.answer_vars().is_empty() {
                    vec![]
                } else {
                    vec![db.domain()[0]]
                };
                observation29_check(&theory, &q, rs, &db, &ans, 6).to_string()
            };
            t.row(vec![
                name.into(),
                db.len().to_string(),
                d.map_or("-".into(), |d| d.to_string()),
                delay.to_string(),
                obs29,
                t0.elapsed().as_millis().to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdd_flat_tc_grows() {
        let tc = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        assert!(
            edge_contraction_bound(&tc, &path(8), 6).unwrap()
                > edge_contraction_bound(&tc, &path(4), 6).unwrap()
        );
        let tp = t_p();
        assert_eq!(
            edge_contraction_bound(&tp, &path(4), 6),
            edge_contraction_bound(&tp, &path(8), 6)
        );
    }
}
