//! **E6 — Example 41**: `E(x,y,z), R(x,z) ⇒ R(y,z)` is bd-local but **not
//! BDD**: the rewriting of the atomic query `?(Y,Z) :- r(Y,Z)` keeps
//! growing (each step prepends one `e`-atom), so the generic engine
//! exhausts any budget with ever-longer chains — while on bounded-degree
//! instances the minimal supports stay small.

use std::time::Instant;

use qr_classes::empirical::empirical_locality;
use qr_core::theories::ex41;
use qr_rewrite::{rewrite, RewriteBudget};
use qr_syntax::{parse_instance, parse_query, Instance};

use crate::Table;

/// A bounded-degree chain for the locality side: `e(xᵢ,xᵢ₊₁,zᵢ)` with
/// per-edge fresh `zᵢ` plus `r(x₀,z₀)`.
pub fn bounded_degree_chain(n: usize) -> Instance {
    let mut src = String::from("r(x0, z0).\n");
    for i in 0..n {
        src.push_str(&format!("e(x{i}, x{}, z{i}).\n", i + 1));
    }
    parse_instance(&src).expect("chain parses")
}

/// The E6 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E6  Ex. 41 — bd-local but not BDD: rewriting diverges, supports stay small",
        "disjunct count grows with the budget (never Complete); bounded-degree supports ≤ 2",
        &[
            "budget (max atoms)",
            "outcome",
            "disjuncts",
            "rs",
            "bd-chain support",
            "ms",
        ],
    );
    let q = parse_query("?(Y,Z) :- r(Y,Z).").expect("query parses");
    for max_atoms in [8usize, 16, 32] {
        let t0 = Instant::now();
        let r = rewrite(
            &ex41(),
            &q,
            RewriteBudget {
                max_queries: 4096,
                max_generated: 100_000,
                max_atoms,
            },
        )
        .expect("no builtin bodies");
        let p = empirical_locality(&ex41(), &bounded_degree_chain(6), 8);
        t.row(vec![
            max_atoms.to_string(),
            format!("{:?}", r.outcome),
            r.ucq.len().to_string(),
            r.rs().to_string(),
            p.max_support.to_string(),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_rewrite::RewriteOutcome;

    #[test]
    fn rewriting_diverges() {
        // One rewriting chain of every length exists, so the disjunct count
        // scales with whatever atom budget we allow: never Complete. The
        // generation budget is generous, so the only losses are atom-cap
        // discards — reported as AtomCapped (saturated modulo the cap)
        // with the discard count surfaced, not as Budget.
        let q = parse_query("?(Y,Z) :- r(Y,Z).").unwrap();
        let run = |max_atoms: usize| {
            rewrite(
                &ex41(),
                &q,
                RewriteBudget {
                    max_queries: 512,
                    max_generated: 100_000,
                    max_atoms,
                },
            )
            .unwrap()
        };
        let small = run(8);
        let large = run(24);
        assert_eq!(small.outcome, RewriteOutcome::AtomCapped);
        assert_eq!(large.outcome, RewriteOutcome::AtomCapped);
        assert!(small.oversized_discarded > 0);
        assert!(large.oversized_discarded > 0);
        assert!(!small.is_complete() && !large.is_complete());
        assert!(large.ucq.len() > small.ucq.len());
        assert!(large.rs() > small.rs());
    }

    #[test]
    fn bounded_degree_supports_small() {
        let p = empirical_locality(&ex41(), &bounded_degree_chain(5), 6);
        assert!(p.max_support <= 2, "got {}", p.max_support);
        assert!(p.degree <= 4);
    }
}
