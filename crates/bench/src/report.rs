//! Machine-readable bench output.
//!
//! The harness's `--json` mode serializes per-experiment wall times and the
//! chase engine's [`ChaseStats`] counters to `BENCH_chase.json`, and the
//! rewrite engine's [`RewriteStats`] counters to `BENCH_rewrite.json`, so
//! the repo's perf trajectory is recorded as data points across PRs instead
//! of anecdotes in commit messages. The format is hand-rolled (the
//! workspace is offline — no serde) but stable: see `render_json` and
//! `render_rewrite_json` for the schemas.

use std::fmt::Write as _;

use qr_chase::{ChaseStats, IncrementalStats};
use qr_hom::HomStats;
use qr_rewrite::RewriteStats;

/// One measured chase run: a named workload plus the engine's own counters.
pub struct ChaseRun {
    /// Workload label (matches the E11 table's `workload` column).
    pub workload: String,
    /// Which engine ran (`"semi-naive"` / `"naive"`).
    pub engine: &'static str,
    /// End-to-end wall time of the run, in milliseconds.
    pub wall_ms: f64,
    /// Facts in the final instance.
    pub facts_out: usize,
    /// Completed rounds.
    pub rounds_run: usize,
    /// Per-round engine counters.
    pub stats: ChaseStats,
}

/// One measured incremental-maintenance run (the harness's `--incr`
/// mode): a pinned write-batch sequence absorbed by
/// [`qr_chase::IncrementalChase`], plus a cold re-chase of the final base
/// as the per-batch baseline. The mode/replay/cone counters and both
/// candidate totals are deterministic and drift-gated; every `*_ms` field
/// and `threads` are machine-dependent.
pub struct IncrRun {
    /// Workload label (`"TC incr on G(24,40)"`, ...).
    pub workload: String,
    /// Worker-pool width the run used.
    pub threads: usize,
    /// Write batches absorbed (inserts plus the final retraction).
    pub batches: usize,
    /// Total incremental-maintenance wall time, ms.
    pub wall_ms: f64,
    /// Amortized wall time per batch, ms.
    pub batch_ms: f64,
    /// Wall time of one cold chase of the final base, ms — what each
    /// batch would cost if writes re-chased the world.
    pub rechase_ms: f64,
    /// Facts in the final maintained instance.
    pub facts_out: usize,
    /// Completed rounds of the final maintained chase.
    pub rounds_run: usize,
    /// Cumulative batch-mode and replay/rederive/cone counters.
    pub counters: IncrementalStats,
    /// Matcher candidates enumerated across the insert batches.
    pub candidates_incr: u64,
    /// Matcher candidates of the one cold chase of the final base.
    pub candidates_cold: u64,
}

/// Frontier counters of one marked-query process run (`T_d` / `T_d^k`).
pub struct MarkedCounters {
    /// Frontier steps executed before the process terminated.
    pub steps: usize,
    /// Largest frontier reached.
    pub max_frontier: usize,
    /// Improperly-marked queries dropped along the way.
    pub dropped: usize,
    /// Whether the rewriting contains the always-true disjunct.
    pub has_true: bool,
}

/// Homomorphism-kernel counters attached to a rewrite run.
pub struct HomReport {
    /// The kernel's counter snapshot for this run.
    pub stats: HomStats,
    /// `true` iff the run was fully sequential, making the search/core
    /// tier of [`HomStats`] deterministic too. Only then are those
    /// counters emitted; the cache/prefilter tier (`freezes` through
    /// `components`) is deterministic at every thread count and is always
    /// emitted.
    pub full: bool,
}

/// One measured rewrite run. Saturation fixtures (`engine: "saturation"`)
/// carry the engine's per-window [`RewriteStats`] plus a barrier-mode
/// reference wall time; marked-process runs (`engine: "marked"`) carry the
/// process counters instead.
pub struct RewriteRun {
    /// Workload label (theory + query + budget shape).
    pub workload: String,
    /// Which rewriter ran (`"saturation"` / `"marked"`).
    pub engine: &'static str,
    /// Worker-pool size the run used.
    pub threads: usize,
    /// End-to-end wall time (pipelined mode for saturation runs), ms.
    pub wall_ms: f64,
    /// Wall time of the barrier-mode re-run, saturation runs only.
    pub barrier_wall_ms: Option<f64>,
    /// `RewriteOutcome` as a string (`"Complete"`, `"AtomCapped"`, ...).
    pub outcome: String,
    /// Disjuncts in the returned UCQ.
    pub disjuncts: usize,
    /// Rewriting size `rs` (atoms in the largest disjunct).
    pub rs: usize,
    /// Candidates generated before subsumption.
    pub generated: usize,
    /// Candidates discarded for exceeding the atom cap.
    pub oversized_discarded: usize,
    /// Deepest rewriting step applied.
    pub depth: usize,
    /// Per-window engine counters (saturation runs).
    pub stats: Option<RewriteStats>,
    /// Process counters (marked runs).
    pub process: Option<MarkedCounters>,
    /// Homomorphism-kernel counters (runs that exercise the kernel).
    pub hom: Option<HomReport>,
}

/// Per-segment cache outcome of one serve run. Requests/hits/misses are
/// deterministic (the engine decides tiers at its ordered merge point), so
/// all three are drift-gated.
pub struct ServeSegment {
    /// Segment tag (`"cold"`, `"iso"`, `"hot"`, ...).
    pub name: String,
    /// Requests carrying this tag.
    pub requests: u64,
    /// Rewriting-cache hits within the segment.
    pub hits: u64,
    /// Rewriting-cache misses within the segment.
    pub misses: u64,
}

/// One measured serve-workload replay: the engine's deterministic
/// [`ServeCounters`](qr_serve::ServeCounters), per-segment cache outcomes,
/// and an FNV-1a hash of the full response trace. Only `wall_ms` and the
/// latency percentiles are machine-dependent.
pub struct ServeRun {
    /// Workload label (`"serve-mixed"`, ...).
    pub workload: String,
    /// Worker-pool width the engine ran with.
    pub threads: usize,
    /// End-to-end wall time of the replay, ms.
    pub wall_ms: f64,
    /// The engine's deterministic counter snapshot.
    pub counters: qr_serve::ServeCounters,
    /// Per-segment cache outcomes, sorted by name.
    pub segments: Vec<ServeSegment>,
    /// FNV-1a of the rendered response trace (thread-invariant).
    pub trace_fnv: u64,
    /// Median per-request service time, ms (reported, never gated).
    pub p50_ms: f64,
    /// 95th-percentile per-request service time, ms.
    pub p95_ms: f64,
    /// 99th-percentile per-request service time, ms.
    pub p99_ms: f64,
}

/// One measured bulk-sharding run (the harness's `--shard` mode): a bulk
/// workload chased through [`qr_chase::chase_sharded_opts`] on a pinned
/// worker-pool width. Each workload appears twice — once on a 1-thread
/// pool (`engine: "chase"`, the monolithic bypass) and once on a 4-thread
/// pool (`engine: "sharded"`) — so `BENCH_chase.json` records the speedup
/// pair. Every counter is deterministic (sharding is byte-identical to
/// the monolithic chase; partitioning and packing are deterministic
/// functions of the instance) and drift-gated; `*_ms` fields and
/// `threads` are machine-dependent.
pub struct ShardRun {
    /// Workload label plus engine (`"bulk-tc/sharded"`, ...).
    pub workload: String,
    /// Which engine ran (`"chase"` for the 1-thread bypass, `"sharded"`).
    pub engine: &'static str,
    /// Pinned worker-pool width of this run.
    pub threads: usize,
    /// [`ShardMode`](qr_chase::ShardMode) the run resolved to, as a
    /// string (`"bypass"` / `"gaifman"` / `"pred-group"` / `"fallback"` /
    /// `"exchange"`).
    pub mode: String,
    /// Partition units found (Gaifman components or predicate groups).
    pub components: usize,
    /// Shards actually chased (0 on bypass).
    pub shards: usize,
    /// Frontier-exchange iterations (exchange mode only).
    pub frontier_rounds: usize,
    /// Certificates shipped across the merge boundary.
    pub certs_exchanged: u64,
    /// Certificates replayed successfully before absorption.
    pub certs_checked: u64,
    /// Certificates in rejected bundles.
    pub certs_rejected: u64,
    /// `HomKernel` searches during frontier verification — pinned 0.
    pub kernel_searches: u64,
    /// End-to-end wall time, ms.
    pub wall_ms: f64,
    /// Wall time partitioning the base, ms.
    pub partition_ms: f64,
    /// Wall time chasing the shards, ms.
    pub shard_ms: f64,
    /// Wall time merging (or verifying + catch-up), ms.
    pub merge_ms: f64,
    /// Facts in the final merged instance.
    pub facts_out: usize,
    /// Completed rounds of the merged chase.
    pub rounds_run: usize,
    /// Total triggers across the run.
    pub triggers: u64,
    /// Total matcher candidates across the run.
    pub candidates: u64,
}

/// One certification replay (the harness's `--check` mode): a workload's
/// certificates pushed through the codec and re-verified by `qr-check`.
/// Everything but `wall_ms` is deterministic — certificate counts and
/// encoded sizes are pure functions of (theory, query/instance, budget),
/// `kernel_searches` is pinned to zero (the checker never searches), and
/// `failures` is pinned empty.
pub struct CheckRun {
    /// Workload label (matches the rewrite fixture / E11 chase labels).
    pub workload: String,
    /// Which certificate family replayed (`"rewrite"` / `"chase"`).
    pub kind: &'static str,
    /// Worker-pool width the prover side ran with (the checker itself is
    /// sequential). Machine-dependent, never gated.
    pub threads: usize,
    /// Wall time of the decode+replay span, ms (reported, never gated).
    pub wall_ms: f64,
    /// Certificates replayed successfully.
    pub certs: usize,
    /// Encoded bundle size, bytes.
    pub cert_bytes: usize,
    /// Homomorphism-kernel searches during the replay — zero by the
    /// checker's no-search contract, and drift-gated at zero.
    pub kernel_searches: u64,
    /// Rendered located errors; empty on a fully certified run.
    pub failures: Vec<String>,
}

/// Wall time of one whole experiment table.
pub struct ExperimentTiming {
    /// Experiment id (`"e11"`, ...).
    pub id: String,
    /// Wall time to build the table, in milliseconds.
    pub wall_ms: f64,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ms(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders `BENCH_chase.json`: schema tag, per-experiment wall times, one
/// entry per chase run with totals, memory counters (schema v3: the
/// storage layer's deterministic byte accounting) and per-round counters,
/// one entry per incremental-maintenance run (schema v4: the `--incr`
/// workloads' batch modes, replay/rederive/cone counters and the
/// incremental-vs-cold candidate comparison), and one entry per bulk
/// sharding run (schema v5: the `--shard` workloads' partition, exchange
/// and speedup-relevant counters).
pub fn render_json(
    experiments: &[ExperimentTiming],
    runs: &[ChaseRun],
    incr: &[IncrRun],
    shard: &[ShardRun],
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"qr-bench/chase-v5\",\n  \"experiments\": [\n");
    for (i, e) in experiments.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"wall_ms\": {}}}{}",
            escape(&e.id),
            ms(e.wall_ms),
            if i + 1 < experiments.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"chase_runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"workload\": \"{}\",\n      \"engine\": \"{}\",\n      \"threads\": {},\n      \"wall_ms\": {},\n      \"facts_out\": {},\n      \"rounds_run\": {},\n      \"memory\": {{\"peak_facts\": {}, \"bytes_facts\": {}, \"bytes_index\": {}, \"bytes_tuples\": {}}},\n      \"totals\": {{\"triggers\": {}, \"candidates\": {}, \"dom_sweeps\": {}, \"dom_pruned\": {}, \"facts_added\": {}, \"terms_added\": {}, \"enum_ms\": {}, \"merge_ms\": {}}},\n      \"rounds\": [\n",
            escape(&r.workload),
            escape(r.engine),
            r.stats.threads,
            ms(r.wall_ms),
            r.facts_out,
            r.rounds_run,
            r.stats.peak_facts,
            r.stats.bytes_facts,
            r.stats.bytes_index,
            r.stats.bytes_tuples,
            r.stats.triggers(),
            r.stats.candidates(),
            r.stats.dom_sweeps(),
            r.stats.dom_pruned(),
            r.stats.facts_added(),
            r.stats.terms_added(),
            ms(r.stats.enum_wall().as_secs_f64() * 1e3),
            ms(r.stats.merge_wall().as_secs_f64() * 1e3),
        );
        for (j, round) in r.stats.rounds.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"round\": {}, \"triggers\": {}, \"candidates\": {}, \"dom_sweeps\": {}, \"dom_pruned\": {}, \"facts_added\": {}, \"terms_added\": {}, \"enum_ms\": {}, \"merge_ms\": {}, \"wall_ms\": {}}}{}",
                round.round,
                round.triggers,
                round.candidates,
                round.dom_sweeps,
                round.dom_pruned,
                round.facts_added,
                round.terms_added,
                ms(round.enum_wall.as_secs_f64() * 1e3),
                ms(round.merge_wall.as_secs_f64() * 1e3),
                ms(round.wall.as_secs_f64() * 1e3),
                if j + 1 < r.stats.rounds.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "      ]\n    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"incr_runs\": [\n");
    for (i, r) in incr.iter().enumerate() {
        let c = &r.counters;
        let _ = write!(
            out,
            "    {{\n      \"workload\": \"{}\",\n      \"threads\": {},\n      \"batches\": {},\n      \"wall_ms\": {},\n      \"batch_ms\": {},\n      \"rechase_ms\": {},\n      \"facts_out\": {},\n      \"rounds_run\": {},\n      \"modes\": {{\"noops\": {}, \"seeded_inserts\": {}, \"truncated_retracts\": {}, \"rechases\": {}}},\n      \"counters\": {{\"replayed_facts\": {}, \"rederived_facts\": {}, \"cone_facts\": {}, \"candidates_incr\": {}, \"candidates_cold\": {}}}\n    }}{}\n",
            escape(&r.workload),
            r.threads,
            r.batches,
            ms(r.wall_ms),
            ms(r.batch_ms),
            ms(r.rechase_ms),
            r.facts_out,
            r.rounds_run,
            c.noops,
            c.seeded_inserts,
            c.truncated_retracts,
            c.rechases,
            c.replayed_facts,
            c.rederived_facts,
            c.cone_facts,
            r.candidates_incr,
            r.candidates_cold,
            if i + 1 < incr.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"shard_runs\": [\n");
    for (i, r) in shard.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"workload\": \"{}\",\n      \"engine\": \"{}\",\n      \"threads\": {},\n      \"mode\": \"{}\",\n      \"wall_ms\": {},\n      \"partition_ms\": {},\n      \"shard_ms\": {},\n      \"merge_ms\": {},\n      \"components\": {},\n      \"shards\": {},\n      \"facts_out\": {},\n      \"rounds_run\": {},\n      \"triggers\": {},\n      \"candidates\": {},\n      \"exchange\": {{\"frontier_rounds\": {}, \"certs_exchanged\": {}, \"certs_checked\": {}, \"certs_rejected\": {}, \"kernel_searches\": {}}}\n    }}{}\n",
            escape(&r.workload),
            escape(r.engine),
            r.threads,
            escape(&r.mode),
            ms(r.wall_ms),
            ms(r.partition_ms),
            ms(r.shard_ms),
            ms(r.merge_ms),
            r.components,
            r.shards,
            r.facts_out,
            r.rounds_run,
            r.triggers,
            r.candidates,
            r.frontier_rounds,
            r.certs_exchanged,
            r.certs_checked,
            r.certs_rejected,
            r.kernel_searches,
            if i + 1 < shard.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders `BENCH_rewrite.json` (schema `qr-bench/rewrite-v3`): one entry
/// per rewrite run. Saturation runs carry a `totals` object and a
/// `windows` array of per-window counters and wall splits; marked runs
/// carry a `process` object; runs that exercise the homomorphism kernel
/// carry a `hom` object whose search/core counters appear only for
/// fully sequential runs. v3 adds the generation-side dedup and prefilter
/// counters (`dedup_hits`, `unifier_probes`, `unifier_skipped`,
/// `trie_probes`, `trie_skipped`) to totals and windows. Every emitted
/// counter is deterministic across thread counts; only `*_ms` fields (and
/// `threads`) vary between machines and schedules — `bench_diff` exempts
/// exactly those.
pub fn render_rewrite_json(runs: &[RewriteRun]) -> String {
    let dur_ms = |d: std::time::Duration| ms(d.as_secs_f64() * 1e3);
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"qr-bench/rewrite-v3\",\n  \"rewrite_runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"workload\": \"{}\",\n      \"engine\": \"{}\",\n      \"threads\": {},\n      \"wall_ms\": {},\n",
            escape(&r.workload),
            escape(r.engine),
            r.threads,
            ms(r.wall_ms),
        );
        if let Some(b) = r.barrier_wall_ms {
            let _ = writeln!(out, "      \"barrier_wall_ms\": {},", ms(b));
        }
        let _ = write!(
            out,
            "      \"outcome\": \"{}\",\n      \"disjuncts\": {},\n      \"rs\": {},\n      \"generated\": {},\n      \"oversized_discarded\": {},\n      \"depth\": {}",
            escape(&r.outcome),
            r.disjuncts,
            r.rs,
            r.generated,
            r.oversized_discarded,
            r.depth,
        );
        if let Some(s) = &r.stats {
            let _ = write!(
                out,
                ",\n      \"totals\": {{\"merged\": {}, \"dead_skipped\": {}, \"generated\": {}, \"dedup_hits\": {}, \"subsumption_hits\": {}, \"evictions\": {}, \"oversized\": {}, \"accepted\": {}, \"unifier_probes\": {}, \"unifier_skipped\": {}, \"trie_probes\": {}, \"trie_skipped\": {}, \"gen_ms\": {}, \"merge_ms\": {}, \"wait_ms\": {}, \"overlap_ms\": {}}},\n      \"windows\": [\n",
                s.merged(),
                s.dead_skipped(),
                s.generated(),
                s.dedup_hits(),
                s.subsumption_hits(),
                s.evictions(),
                s.oversized(),
                s.accepted(),
                s.unifier_probes(),
                s.unifier_skipped(),
                s.trie_probes(),
                s.trie_skipped(),
                dur_ms(s.gen_wall()),
                dur_ms(s.merge_wall()),
                dur_ms(s.wait_wall()),
                dur_ms(s.overlap_wall()),
            );
            for (j, w) in s.windows.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{\"window\": {}, \"items\": {}, \"merged\": {}, \"dead_skipped\": {}, \"generated\": {}, \"dedup_hits\": {}, \"subsumption_hits\": {}, \"evictions\": {}, \"oversized\": {}, \"accepted\": {}, \"kept\": {}, \"unifier_probes\": {}, \"unifier_skipped\": {}, \"trie_probes\": {}, \"trie_skipped\": {}, \"gen_ms\": {}, \"merge_ms\": {}, \"wait_ms\": {}, \"overlap_ms\": {}}}{}",
                    w.window,
                    w.items,
                    w.merged,
                    w.dead_skipped,
                    w.generated,
                    w.dedup_hits,
                    w.subsumption_hits,
                    w.evictions,
                    w.oversized,
                    w.accepted,
                    w.kept,
                    w.unifier_probes,
                    w.unifier_skipped,
                    w.trie_probes,
                    w.trie_skipped,
                    dur_ms(w.gen_wall),
                    dur_ms(w.merge_wall),
                    dur_ms(w.wait_wall),
                    dur_ms(w.overlap_wall),
                    if j + 1 < s.windows.len() { "," } else { "" }
                );
            }
            out.push_str("      ]");
        }
        if let Some(p) = &r.process {
            let _ = write!(
                out,
                ",\n      \"process\": {{\"steps\": {}, \"max_frontier\": {}, \"dropped\": {}, \"has_true\": {}}}",
                p.steps, p.max_frontier, p.dropped, p.has_true,
            );
        }
        if let Some(h) = &r.hom {
            let s = &h.stats;
            let _ = write!(
                out,
                ",\n      \"hom\": {{\"freezes\": {}, \"freeze_cache_hits\": {}, \"plan_compiles\": {}, \"plan_cache_hits\": {}, \"prefilter_rejects\": {}, \"components\": {}",
                s.freezes,
                s.freeze_cache_hits,
                s.plan_compiles,
                s.plan_cache_hits,
                s.prefilter_rejects,
                s.components,
            );
            if h.full {
                let _ = write!(
                    out,
                    ", \"searches\": {}, \"search_candidates\": {}, \"core_rounds\": {}, \"core_searches\": {}, \"core_cache_hits\": {}",
                    s.searches,
                    s.search_candidates,
                    s.core_rounds,
                    s.core_searches,
                    s.core_cache_hits,
                );
            }
            out.push('}');
        }
        let _ = write!(
            out,
            "\n    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders `BENCH_serve.json` (schema `qr-bench/serve-v2`, which adds the
/// write-path counters `writes`/`facts_inserted`/`facts_retracted`/
/// `cache_invalidations`): one entry per
/// serve-workload replay. The `counters` object carries every field of
/// [`ServeCounters`](qr_serve::ServeCounters) — all deterministic, all
/// drift-gated — plus the per-segment cache outcomes and the trace hash
/// (emitted as a hex string so the 64-bit value survives f64-based JSON
/// parsers). `wall_ms`, `p50_ms`/`p95_ms`/`p99_ms` and `threads` are
/// machine-dependent; `bench_diff` exempts exactly those.
pub fn render_serve_json(runs: &[ServeRun]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"qr-bench/serve-v2\",\n  \"serve_runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let c = &r.counters;
        let _ = write!(
            out,
            "    {{\n      \"workload\": \"{}\",\n      \"threads\": {},\n      \"wall_ms\": {},\n      \"p50_ms\": {},\n      \"p95_ms\": {},\n      \"p99_ms\": {},\n      \"trace_fnv\": \"{:#018x}\",\n      \"counters\": {{\"requests\": {}, \"answered\": {}, \"rejected\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"plan_compiles\": {}, \"plan_reuses\": {}, \"incomplete\": {}, \"truncated\": {}, \"answers_emitted\": {}, \"match_candidates\": {}, \"rewrite_generated\": {}, \"cache_bytes\": {}, \"peak_cache_bytes\": {}, \"writes\": {}, \"facts_inserted\": {}, \"facts_retracted\": {}, \"cache_invalidations\": {}}},\n      \"segments\": [\n",
            escape(&r.workload),
            r.threads,
            ms(r.wall_ms),
            ms(r.p50_ms),
            ms(r.p95_ms),
            ms(r.p99_ms),
            r.trace_fnv,
            c.requests,
            c.answered,
            c.rejected,
            c.hits,
            c.misses,
            c.evictions,
            c.plan_compiles,
            c.plan_reuses,
            c.incomplete,
            c.truncated,
            c.answers_emitted,
            c.match_candidates,
            c.rewrite_generated,
            c.cache_bytes,
            c.peak_cache_bytes,
            c.writes,
            c.facts_inserted,
            c.facts_retracted,
            c.cache_invalidations,
        );
        for (j, s) in r.segments.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"name\": \"{}\", \"requests\": {}, \"hits\": {}, \"misses\": {}}}{}",
                escape(&s.name),
                s.requests,
                s.hits,
                s.misses,
                if j + 1 < r.segments.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "      ]\n    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders `BENCH_check.json` (schema `qr-bench/check-v2`, which adds
/// `threads`): one entry per certification replay. `certs`, `cert_bytes`,
/// `kernel_searches` and the `failures` array are deterministic and
/// drift-gated; `wall_ms` and `threads` are machine-dependent —
/// `bench_diff` exempts exactly those.
pub fn render_check_json(runs: &[CheckRun]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"qr-bench/check-v2\",\n  \"check_runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let failures = r
            .failures
            .iter()
            .map(|f| format!("\"{}\"", escape(f)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\n      \"workload\": \"{}\",\n      \"kind\": \"{}\",\n      \"threads\": {},\n      \"wall_ms\": {},\n      \"certs\": {},\n      \"cert_bytes\": {},\n      \"kernel_searches\": {},\n      \"failures\": [{}]\n    }}{}\n",
            escape(&r.workload),
            escape(r.kind),
            r.threads,
            ms(r.wall_ms),
            r.certs,
            r.cert_bytes,
            r.kernel_searches,
            failures,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_chase::RoundStats;
    use std::time::Duration;

    #[test]
    fn renders_escaped_well_formed_json() {
        let runs = vec![ChaseRun {
            workload: "TC on \"G(2,2)\"".into(),
            engine: "semi-naive",
            wall_ms: 1.5,
            facts_out: 4,
            rounds_run: 1,
            stats: ChaseStats {
                threads: 4,
                rounds: vec![RoundStats {
                    round: 1,
                    triggers: 2,
                    candidates: 8,
                    dom_sweeps: 1,
                    dom_pruned: 3,
                    facts_added: 2,
                    terms_added: 0,
                    enum_wall: Duration::from_micros(1200),
                    merge_wall: Duration::from_micros(300),
                    wall: Duration::from_micros(1500),
                }],
                peak_facts: 4,
                bytes_facts: 32,
                bytes_index: 120,
                bytes_tuples: 60,
            },
        }];
        let timings = vec![ExperimentTiming {
            id: "e11".into(),
            wall_ms: 10.0,
        }];
        let json = render_json(&timings, &runs, &[], &[]);
        assert!(json.contains("\"schema\": \"qr-bench/chase-v5\""));
        assert!(json.contains("\"incr_runs\": [\n  ]"));
        assert!(json.contains("\"shard_runs\": [\n  ]"));
        assert!(json.contains(
            "\"memory\": {\"peak_facts\": 4, \"bytes_facts\": 32, \"bytes_index\": 120, \"bytes_tuples\": 60}"
        ));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"dom_pruned\": 3"));
        assert!(json.contains("\"enum_ms\": 1.200"));
        assert!(json.contains("\"merge_ms\": 0.300"));
        assert!(json.contains("\\\"G(2,2)\\\""));
        assert!(json.contains("\"wall_ms\": 1.500"));
        assert!(json.contains("\"candidates\": 8"));
        // Braces and brackets balance.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing commas before closers.
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n      ]"));
    }

    #[test]
    fn renders_incr_runs_well_formed() {
        let incr = vec![IncrRun {
            workload: "TC incr on \"G(24,40)\"".into(),
            threads: 4,
            batches: 9,
            wall_ms: 5.25,
            batch_ms: 0.583,
            rechase_ms: 2.5,
            facts_out: 321,
            rounds_run: 7,
            counters: IncrementalStats {
                batches: 9,
                noops: 0,
                seeded_inserts: 8,
                truncated_retracts: 0,
                rechases: 1,
                replayed_facts: 0,
                rederived_facts: 250,
                cone_facts: 17,
            },
            candidates_incr: 900,
            candidates_cold: 4000,
        }];
        let json = render_json(&[], &[], &incr, &[]);
        assert!(json.contains("\"schema\": \"qr-bench/chase-v5\""));
        assert!(json.contains("TC incr on \\\"G(24,40)\\\""));
        assert!(json.contains(
            "\"modes\": {\"noops\": 0, \"seeded_inserts\": 8, \"truncated_retracts\": 0, \"rechases\": 1}"
        ));
        assert!(json.contains(
            "\"counters\": {\"replayed_facts\": 0, \"rederived_facts\": 250, \"cone_facts\": 17, \"candidates_incr\": 900, \"candidates_cold\": 4000}"
        ));
        assert!(json.contains("\"batch_ms\": 0.583"));
        assert!(json.contains("\"rechase_ms\": 2.500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n      ]"));
    }

    #[test]
    fn renders_rewrite_runs_well_formed() {
        use qr_rewrite::{RewriteStats, WindowStats};
        let runs = vec![
            RewriteRun {
                workload: "TC \"wide\"".into(),
                engine: "saturation",
                threads: 4,
                wall_ms: 12.5,
                barrier_wall_ms: Some(20.25),
                outcome: "Budget".into(),
                disjuncts: 7,
                rs: 9,
                generated: 41,
                oversized_discarded: 3,
                depth: 5,
                stats: Some(RewriteStats {
                    threads: 4,
                    windows: vec![WindowStats {
                        window: 0,
                        items: 1,
                        merged: 1,
                        generated: 41,
                        dedup_hits: 11,
                        subsumption_hits: 30,
                        evictions: 1,
                        oversized: 3,
                        accepted: 7,
                        kept: 7,
                        unifier_probes: 120,
                        unifier_skipped: 80,
                        trie_probes: 25,
                        trie_skipped: 60,
                        gen_wall: Duration::from_micros(9000),
                        merge_wall: Duration::from_micros(2000),
                        wait_wall: Duration::from_micros(1500),
                        overlap_wall: Duration::from_micros(7500),
                        ..WindowStats::default()
                    }],
                }),
                process: None,
                hom: Some(HomReport {
                    stats: HomStats {
                        freezes: 12,
                        freeze_cache_hits: 30,
                        plan_compiles: 13,
                        plan_cache_hits: 2,
                        prefilter_rejects: 21,
                        components: 14,
                        searches: 99,
                        search_candidates: 400,
                        core_rounds: 9,
                        core_searches: 17,
                        core_cache_hits: 3,
                    },
                    full: false,
                }),
            },
            RewriteRun {
                workload: "T_d marked n=2".into(),
                engine: "marked",
                threads: 1,
                wall_ms: 3.0,
                barrier_wall_ms: None,
                outcome: "Complete".into(),
                disjuncts: 4,
                rs: 6,
                generated: 0,
                oversized_discarded: 0,
                depth: 0,
                stats: None,
                process: Some(MarkedCounters {
                    steps: 17,
                    max_frontier: 5,
                    dropped: 2,
                    has_true: false,
                }),
                hom: Some(HomReport {
                    stats: HomStats {
                        freezes: 5,
                        freeze_cache_hits: 35,
                        plan_compiles: 5,
                        plan_cache_hits: 1,
                        prefilter_rejects: 8,
                        components: 6,
                        searches: 40,
                        search_candidates: 123,
                        core_rounds: 0,
                        core_searches: 0,
                        core_cache_hits: 0,
                    },
                    full: true,
                }),
            },
        ];
        let json = render_rewrite_json(&runs);
        assert!(json.contains("\"schema\": \"qr-bench/rewrite-v3\""));
        assert!(json.contains("\\\"wide\\\""));
        assert!(json.contains("\"barrier_wall_ms\": 20.250"));
        assert!(json.contains("\"subsumption_hits\": 30"));
        assert!(json.contains("\"dedup_hits\": 11"));
        assert!(json.contains("\"unifier_probes\": 120"));
        assert!(json.contains("\"unifier_skipped\": 80"));
        assert!(json.contains("\"trie_probes\": 25"));
        assert!(json.contains("\"trie_skipped\": 60"));
        assert!(json.contains("\"gen_ms\": 9.000"));
        // 9ms of generation, 1.5ms of it waited out: 7.5ms overlapped.
        assert!(json.contains("\"overlap_ms\": 7.500"));
        assert!(json.contains(
            "\"process\": {\"steps\": 17, \"max_frontier\": 5, \"dropped\": 2, \"has_true\": false}"
        ));
        // Saturation hom object: cache tier only (parallel run).
        assert!(json.contains("\"freeze_cache_hits\": 30"));
        assert!(!json.contains("\"search_candidates\": 400"));
        // Marked hom object: fully sequential, search tier included.
        assert!(json.contains(
            "\"hom\": {\"freezes\": 5, \"freeze_cache_hits\": 35, \"plan_compiles\": 5, \
             \"plan_cache_hits\": 1, \"prefilter_rejects\": 8, \"components\": 6, \
             \"searches\": 40, \"search_candidates\": 123, \"core_rounds\": 0, \
             \"core_searches\": 0, \"core_cache_hits\": 0}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n      ]"));
    }

    #[test]
    fn renders_serve_runs_well_formed() {
        use qr_serve::ServeCounters;
        let runs = vec![ServeRun {
            workload: "serve-\"mixed\"".into(),
            threads: 4,
            wall_ms: 42.125,
            counters: ServeCounters {
                requests: 1200,
                answered: 1200,
                rejected: 0,
                hits: 1050,
                misses: 150,
                evictions: 3,
                plan_compiles: 300,
                plan_reuses: 2100,
                incomplete: 40,
                truncated: 5,
                answers_emitted: 9000,
                match_candidates: 44000,
                rewrite_generated: 8000,
                cache_bytes: 52000,
                peak_cache_bytes: 53000,
                writes: 12,
                facts_inserted: 9,
                facts_retracted: 4,
                cache_invalidations: 7,
            },
            segments: vec![
                ServeSegment {
                    name: "cold".into(),
                    requests: 116,
                    hits: 0,
                    misses: 116,
                },
                ServeSegment {
                    name: "iso".into(),
                    requests: 704,
                    hits: 690,
                    misses: 14,
                },
            ],
            trace_fnv: 0x00ab_cdef_0123_4567,
            p50_ms: 0.011,
            p95_ms: 0.5,
            p99_ms: 1.25,
        }];
        let json = render_serve_json(&runs);
        assert!(json.contains("\"schema\": \"qr-bench/serve-v2\""));
        assert!(json.contains("serve-\\\"mixed\\\""));
        assert!(json.contains("\"trace_fnv\": \"0x00abcdef01234567\""));
        assert!(json.contains("\"hits\": 1050"));
        assert!(json.contains("\"peak_cache_bytes\": 53000"));
        assert!(json.contains("\"writes\": 12"));
        assert!(json.contains("\"cache_invalidations\": 7"));
        assert!(
            json.contains("{\"name\": \"iso\", \"requests\": 704, \"hits\": 690, \"misses\": 14}")
        );
        assert!(json.contains("\"p95_ms\": 0.500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n      ]"));
    }

    #[test]
    fn renders_shard_runs_well_formed() {
        let runs = vec![
            ShardRun {
                workload: "bulk-\"tc\"/chase".into(),
                engine: "chase",
                threads: 1,
                mode: "bypass".into(),
                components: 0,
                shards: 0,
                frontier_rounds: 0,
                certs_exchanged: 0,
                certs_checked: 0,
                certs_rejected: 0,
                kernel_searches: 0,
                wall_ms: 800.5,
                partition_ms: 0.0,
                shard_ms: 0.0,
                merge_ms: 0.0,
                facts_out: 946_000,
                rounds_run: 6,
                triggers: 6_000_000,
                candidates: 9_000_000,
            },
            ShardRun {
                workload: "bulk-\"tc\"/sharded".into(),
                engine: "sharded",
                threads: 4,
                mode: "gaifman".into(),
                components: 4000,
                shards: 16,
                frontier_rounds: 1,
                certs_exchanged: 120,
                certs_checked: 120,
                certs_rejected: 0,
                kernel_searches: 0,
                wall_ms: 300.25,
                partition_ms: 40.0,
                shard_ms: 200.0,
                merge_ms: 60.0,
                facts_out: 946_000,
                rounds_run: 6,
                triggers: 6_000_000,
                candidates: 9_000_000,
            },
        ];
        let json = render_json(&[], &[], &[], &runs);
        assert!(json.contains("\"schema\": \"qr-bench/chase-v5\""));
        assert!(json.contains("bulk-\\\"tc\\\"/sharded"));
        assert!(json.contains("\"engine\": \"sharded\""));
        assert!(json.contains("\"mode\": \"gaifman\""));
        assert!(json.contains("\"components\": 4000"));
        assert!(json.contains("\"shards\": 16"));
        assert!(json.contains("\"partition_ms\": 40.000"));
        assert!(json.contains(
            "\"exchange\": {\"frontier_rounds\": 1, \"certs_exchanged\": 120, \
             \"certs_checked\": 120, \"certs_rejected\": 0, \"kernel_searches\": 0}"
        ));
        assert!(json.contains("\"triggers\": 6000000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n      ]"));
    }

    #[test]
    fn renders_check_runs_well_formed() {
        let runs = vec![
            CheckRun {
                workload: "tc-\"wide\"".into(),
                kind: "rewrite",
                threads: 1,
                wall_ms: 0.75,
                certs: 41,
                cert_bytes: 2048,
                kernel_searches: 0,
                failures: Vec::new(),
            },
            CheckRun {
                workload: "TC on G(60,120)".into(),
                kind: "chase",
                threads: 4,
                wall_ms: 3.5,
                certs: 900,
                cert_bytes: 12000,
                kernel_searches: 0,
                failures: vec!["certificate 7: trigger 0 not earlier".into()],
            },
        ];
        let json = render_check_json(&runs);
        assert!(json.contains("\"schema\": \"qr-bench/check-v2\""));
        assert!(json.contains("tc-\\\"wide\\\""));
        assert!(json.contains("\"kind\": \"rewrite\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"certs\": 41"));
        assert!(json.contains("\"cert_bytes\": 2048"));
        assert!(json.contains("\"kernel_searches\": 0"));
        assert!(json.contains("\"wall_ms\": 0.750"));
        assert!(json.contains("\"failures\": []"));
        assert!(json.contains("\"failures\": [\"certificate 7: trigger 0 not earlier\"]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n      ]"));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
