//! Micro-benchmarks for the UCQ rewriting engine: linear theories (E7's
//! workload), the sticky Example 39, and divergence probes under budget
//! (Example 41).

use qr_bench::microbench::{bench, group};
use qr_core::theories::{ex39, ex41, t_a};
use qr_rewrite::{rewrite, RewriteBudget};
use qr_syntax::parse_query;

fn bench_linear_chains() {
    let theory = t_a();
    group("rewrite/mother_chain");
    for k in [2usize, 4, 6] {
        let atoms: Vec<String> = (0..k)
            .map(|i| format!("mother(X{i}, X{})", i + 1))
            .collect();
        let q = parse_query(&format!("?(X0) :- {}.", atoms.join(", "))).unwrap();
        bench(&format!("chain/{k}"), || {
            rewrite(&theory, &q, RewriteBudget::default())
                .unwrap()
                .ucq
                .len()
        });
    }
}

fn bench_sticky() {
    let theory = ex39();
    let q = parse_query("?(A,D) :- e(A,B,C,D).").unwrap();
    group("rewrite/sticky_ex39");
    bench("atomic", || {
        rewrite(&theory, &q, RewriteBudget::default())
            .unwrap()
            .ucq
            .len()
    });
}

fn bench_divergent_budget() {
    let theory = ex41();
    let q = parse_query("?(Y,Z) :- r(Y,Z).").unwrap();
    group("rewrite/ex41_divergence");
    for max_atoms in [8usize, 16] {
        bench(&format!("max_atoms/{max_atoms}"), || {
            rewrite(
                &theory,
                &q,
                RewriteBudget {
                    max_queries: 1024,
                    max_generated: 100_000,
                    max_atoms,
                },
            )
            .unwrap()
            .ucq
            .len()
        });
    }
}

fn main() {
    bench_linear_chains();
    bench_sticky();
    bench_divergent_budget();
}
