//! Ontology-mediated query answering over a small university ontology —
//! the scenario the paper's introduction motivates: the database is
//! incomplete, the ontology (a set of existential rules) fills the gaps,
//! and because the ontology is **linear** (hence local, hence BDD), every
//! query compiles to a small UCQ that runs directly on the database.
//!
//! Run with `cargo run --example ontology_qa`.

use query_rewritability::chase::{chase, ChaseBudget};
use query_rewritability::classes::{is_linear, is_sticky};
use query_rewritability::hom::all_answers;
use query_rewritability::prelude::*;
use query_rewritability::rewrite::{rewrite, RewriteBudget};

fn main() {
    let ontology = parse_theory(
        "# every professor teaches something\n\
         professor(P) -> teaches(P, C).\n\
         # whatever is taught is a course\n\
         teaches(P, C) -> course(C).\n\
         # teaching staff are employed by some department\n\
         teaches(P, C) -> works_in(P, D).\n\
         # departments have heads, who are professors\n\
         works_in(P, D) -> head_of(H, D).\n\
         head_of(H, D) -> professor(H).",
    )
    .expect("ontology parses");

    println!("ontology ({} rules):", ontology.len());
    print!("{}", ontology.render());
    println!(
        "linear: {}   sticky: {}   (=> BDD, local, linear-size rewritings)",
        is_linear(&ontology),
        is_sticky(&ontology)
    );

    let db = parse_instance(
        "professor(turing).\n\
         teaches(hopper, compilers).\n\
         works_in(dijkstra, algorithms_dept).",
    )
    .expect("database parses");

    let queries = [
        "?(P) :- professor(P).",
        "?(P) :- works_in(P, D).",
        "?(C) :- course(C).",
        "? :- head_of(H, D), professor(H).",
    ];

    let ch = chase(&ontology, &db, ChaseBudget::rounds(8));
    println!(
        "\nchase: {} facts at depth {}",
        ch.instance.len(),
        ch.rounds
    );

    for qsrc in queries {
        let q = parse_query(qsrc).expect("query parses");
        let r = rewrite(&ontology, &q, RewriteBudget::default()).expect("supported");
        assert!(r.is_complete());
        println!("\n{qsrc}");
        println!(
            "  rewriting: {} disjuncts, max size {} (query size {})",
            r.ucq.len(),
            r.rs(),
            q.size()
        );
        let mut answers: Vec<Vec<TermId>> = r
            .ucq
            .disjuncts()
            .iter()
            .flat_map(|d| all_answers(d, &db, 0))
            .collect();
        answers.sort();
        answers.dedup();
        // Cross-check with the chase, restricted to database constants.
        let mut via_chase = all_answers(&q, &ch.instance, 0);
        via_chase.retain(|t| t.iter().all(|x| x.is_const()));
        via_chase.sort();
        via_chase.dedup();
        assert_eq!(answers, via_chase);
        println!("  certain answers: {answers:?}");
    }

    println!("\nall queries answered over D alone; chase agreed on every one.");
}
