//! Hash-consed ground terms: constants and Skolem terms.
//!
//! The chase of the paper (Section 3) uses the *Skolem naming convention*:
//! the term created by a rule application is a function of the Skolem
//! function symbol and the frontier tuple, nothing else. Hash-consing every
//! ground term in a process-global arena makes the chase deterministic and
//! makes Observation 8 (`Ch(T,F) = Ch(T,D)` for `D ⊆ F ⊆ Ch(T,D)`, *literal*
//! equality) hold by construction.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

use crate::symbol::Symbol;

/// An interned Skolem function symbol (the paper's `f_i^τ`, Definition 3).
///
/// A Skolem function is identified by a *tag* — a canonical rendering of the
/// isomorphism type `τ` of the rule head together with the index `i` of the
/// existential variable — plus its arity (the number of frontier variables).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkolemFn(u32);

struct SkolemData {
    tag: Symbol,
    arity: u32,
}

/// A hash-consed ground term: either a constant or a Skolem term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

/// The observable shape of a ground term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermData {
    /// A constant from the original instance.
    Const(Symbol),
    /// A term invented by the chase: `f(args…)`.
    Skolem(SkolemFn, Vec<TermId>),
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum TermKey {
    Const(Symbol),
    Skolem(SkolemFn, Box<[TermId]>),
}

#[derive(Default)]
struct Arena {
    terms: Vec<TermKey>,
    by_key: HashMap<TermKey, u32>,
    skolems: Vec<SkolemData>,
    skolems_by_key: HashMap<(Symbol, u32), u32>,
}

fn arena() -> &'static RwLock<Arena> {
    static ARENA: OnceLock<RwLock<Arena>> = OnceLock::new();
    ARENA.get_or_init(|| RwLock::new(Arena::default()))
}

impl SkolemFn {
    /// Interns a Skolem function symbol with the given tag and arity.
    pub fn intern(tag: Symbol, arity: u32) -> SkolemFn {
        let mut a = arena().write().expect("term arena poisoned");
        if let Some(&id) = a.skolems_by_key.get(&(tag, arity)) {
            return SkolemFn(id);
        }
        let id = u32::try_from(a.skolems.len()).expect("skolem table overflow");
        a.skolems.push(SkolemData { tag, arity });
        a.skolems_by_key.insert((tag, arity), id);
        SkolemFn(id)
    }

    /// The canonical tag of this Skolem function.
    pub fn tag(self) -> Symbol {
        arena().read().expect("term arena poisoned").skolems[self.0 as usize].tag
    }

    /// Number of arguments (frontier size).
    pub fn arity(self) -> u32 {
        arena().read().expect("term arena poisoned").skolems[self.0 as usize].arity
    }
}

impl fmt::Debug for SkolemFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tag())
    }
}

impl TermId {
    /// The hash-consed constant term for `name`.
    pub fn constant(name: Symbol) -> TermId {
        Self::intern(TermKey::Const(name))
    }

    /// The hash-consed Skolem term `f(args…)`.
    ///
    /// # Panics
    /// Panics if `args.len()` does not match the arity of `f`.
    pub fn skolem(f: SkolemFn, args: &[TermId]) -> TermId {
        assert_eq!(
            args.len(),
            f.arity() as usize,
            "skolem arity mismatch for {:?}",
            f
        );
        Self::intern(TermKey::Skolem(f, args.into()))
    }

    fn intern(key: TermKey) -> TermId {
        {
            let a = arena().read().expect("term arena poisoned");
            if let Some(&id) = a.by_key.get(&key) {
                return TermId(id);
            }
        }
        let mut a = arena().write().expect("term arena poisoned");
        if let Some(&id) = a.by_key.get(&key) {
            return TermId(id);
        }
        let id = u32::try_from(a.terms.len()).expect("term arena overflow");
        a.terms.push(key.clone());
        a.by_key.insert(key, id);
        TermId(id)
    }

    /// Returns the shape of this term.
    pub fn data(self) -> TermData {
        let a = arena().read().expect("term arena poisoned");
        match &a.terms[self.0 as usize] {
            TermKey::Const(s) => TermData::Const(*s),
            TermKey::Skolem(f, args) => TermData::Skolem(*f, args.to_vec()),
        }
    }

    /// `true` iff the term is a constant of some original instance.
    pub fn is_const(self) -> bool {
        matches!(
            arena().read().expect("term arena poisoned").terms[self.0 as usize],
            TermKey::Const(_)
        )
    }

    /// The constant's name, if this term is a constant.
    pub fn as_const(self) -> Option<Symbol> {
        match self.data() {
            TermData::Const(s) => Some(s),
            TermData::Skolem(..) => None,
        }
    }

    /// Nesting depth: constants have depth 0, `f(t…)` has depth
    /// `1 + max(depth(t…))` (and depth 1 for nullary Skolem functions).
    pub fn depth(self) -> usize {
        match self.data() {
            TermData::Const(_) => 0,
            TermData::Skolem(_, args) => 1 + args.iter().map(|t| t.depth()).max().unwrap_or(0),
        }
    }

    /// The raw arena index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.data() {
            TermData::Const(s) => write!(f, "{s}"),
            TermData::Skolem(fun, args) => {
                write!(f, "{}(", fun.tag())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_hash_consed() {
        let a = TermId::constant(Symbol::intern("a"));
        let b = TermId::constant(Symbol::intern("a"));
        assert_eq!(a, b);
        assert!(a.is_const());
        assert_eq!(a.depth(), 0);
    }

    #[test]
    fn skolem_terms_are_hash_consed() {
        let f = SkolemFn::intern(Symbol::intern("f_test"), 1);
        let a = TermId::constant(Symbol::intern("a"));
        let t1 = TermId::skolem(f, &[a]);
        let t2 = TermId::skolem(f, &[a]);
        assert_eq!(t1, t2);
        assert!(!t1.is_const());
        assert_eq!(t1.depth(), 1);
        let t3 = TermId::skolem(f, &[t1]);
        assert_ne!(t3, t1);
        assert_eq!(t3.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "skolem arity mismatch")]
    fn skolem_arity_is_checked() {
        let f = SkolemFn::intern(Symbol::intern("f_arity"), 2);
        let a = TermId::constant(Symbol::intern("a"));
        let _ = TermId::skolem(f, &[a]);
    }

    #[test]
    fn display_nests() {
        let f = SkolemFn::intern(Symbol::intern("mum"), 1);
        let abel = TermId::constant(Symbol::intern("abel"));
        let t = TermId::skolem(f, &[TermId::skolem(f, &[abel])]);
        assert_eq!(format!("{t}"), "mum(mum(abel))");
    }
}
