//! Linear replay of rewriting certificates.
//!
//! The engine *searched* for piece unifiers, cores, and containments;
//! this checker only *verifies* what was recorded. Per certificate the
//! work is: one [`qr_rewrite::apply_piece_unifier`] application (pure
//! union-find over the recorded pairs — no enumeration), then one hash
//! lookup per atom to validate the two recorded variable maps. Nothing
//! here touches a `HomKernel`, so drift-gated counters never move.

use std::collections::HashSet;

use qr_rewrite::{apply_piece_unifier, RewriteCertBundle};
use qr_syntax::{ConjunctiveQuery, QAtom, QTerm, Theory, Ucq};

use crate::error::{CheckError, CheckErrorKind};

/// Applies a variable map to a query term.
fn map_term(h: &[QTerm], t: &QTerm) -> QTerm {
    match t {
        QTerm::Var(v) => h[v.index()],
        QTerm::Const(c) => QTerm::Const(*c),
    }
}

/// Verifies that `h` is an answer-preserving homomorphism `src → dst`:
/// right length, positional on answers, and every atom image present in
/// `dst`. One pass, one hash probe per atom.
fn verify_map(
    cert: usize,
    src: &ConjunctiveQuery,
    dst: &ConjunctiveQuery,
    h: &[QTerm],
) -> Result<(), CheckError> {
    if h.len() != src.var_names().len() {
        return Err(CheckError::at(
            cert,
            CheckErrorKind::MapLength {
                expected: src.var_names().len(),
                got: h.len(),
            },
        ));
    }
    if src.answer_vars().len() != dst.answer_vars().len() {
        return Err(CheckError::at(
            cert,
            CheckErrorKind::AnswerArity {
                expected: src.answer_vars().len(),
                got: dst.answer_vars().len(),
            },
        ));
    }
    for (position, (&sv, &dv)) in src.answer_vars().iter().zip(dst.answer_vars()).enumerate() {
        if h[sv.index()] != QTerm::Var(dv) {
            return Err(CheckError::at(
                cert,
                CheckErrorKind::AnswerMismatch { position },
            ));
        }
    }
    let targets: HashSet<&QAtom> = dst.atoms().iter().collect();
    for (atom, a) in src.atoms().iter().enumerate() {
        let image = QAtom::new(
            a.pred,
            a.args.iter().map(|t| map_term(h, t)).collect::<Vec<_>>(),
        );
        if !targets.contains(&image) {
            return Err(CheckError::at(
                cert,
                CheckErrorKind::AtomImageMissing { atom },
            ));
        }
    }
    Ok(())
}

/// Replays a rewriting certificate bundle against the theory, the input
/// query `phi`, and the UCQ the engine returned. On success every
/// accepted disjunct has been re-derived from `phi` by the recorded
/// piece unifiers and every final disjunct matched literally; the number
/// of certificates replayed is returned.
///
/// Linear in the bundle: no search, no kernel, no containment checks.
pub fn check_rewrite(
    theory: &Theory,
    phi: &ConjunctiveQuery,
    ucq: &Ucq,
    bundle: &RewriteCertBundle,
) -> Result<usize, CheckError> {
    if bundle.certs.is_empty() {
        return Err(CheckError::at(0, CheckErrorKind::EmptyBundle));
    }

    for (i, cert) in bundle.certs.iter().enumerate() {
        // Re-derive the raw rewriting this node claims to core-minimize:
        // the seed's raw form is φ itself, every other node replays its
        // recorded step against its (already verified) parent.
        let raw: ConjunctiveQuery = match (&cert.step, i) {
            (None, 0) => phi.clone(),
            (Some(_), 0) => return Err(CheckError::at(0, CheckErrorKind::SeedHasStep)),
            (None, _) => return Err(CheckError::at(i, CheckErrorKind::MissingStep)),
            (Some(step), _) => {
                if step.parent as usize >= i {
                    return Err(CheckError::at(
                        i,
                        CheckErrorKind::ParentNotEarlier {
                            parent: step.parent,
                        },
                    ));
                }
                if step.rule as usize >= theory.rules().len() {
                    return Err(CheckError::at(
                        i,
                        CheckErrorKind::RuleOutOfRange {
                            rule: step.rule,
                            rules: theory.rules().len(),
                        },
                    ));
                }
                let parent = &bundle.certs[step.parent as usize].query;
                let rule = &theory.rules()[step.rule as usize];
                let pairs: Vec<(usize, usize)> = step
                    .unified
                    .iter()
                    .map(|&(a, h)| (a as usize, h as usize))
                    .collect();
                match apply_piece_unifier(parent, rule, &pairs) {
                    Some(q) => q,
                    None => return Err(CheckError::at(i, CheckErrorKind::UnifierRejected)),
                }
            }
        };
        verify_map(i, &raw, &cert.query, &cert.to_query)?;
        verify_map(i, &cert.query, &raw, &cert.from_query)?;
    }

    if bundle.final_disjuncts.len() != ucq.len() {
        return Err(CheckError::at(
            0,
            CheckErrorKind::FinalCount {
                expected: ucq.len(),
                got: bundle.final_disjuncts.len(),
            },
        ));
    }
    for (k, &node) in bundle.final_disjuncts.iter().enumerate() {
        if node as usize >= bundle.certs.len() {
            return Err(CheckError::at(k, CheckErrorKind::FinalOutOfRange { node }));
        }
        if ucq.disjuncts()[k] != bundle.certs[node as usize].query {
            return Err(CheckError::at(k, CheckErrorKind::FinalMismatch));
        }
    }

    Ok(bundle.certs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_exec::Executor;
    use qr_rewrite::{rewrite_certified, RewriteBudget, SaturationMode};
    use qr_syntax::{parse_query, parse_theory};

    fn certified(t: &str, q: &str) -> (Theory, ConjunctiveQuery, Ucq, RewriteCertBundle) {
        let theory = parse_theory(t).unwrap();
        let query = parse_query(q).unwrap();
        let (r, bundle) = rewrite_certified(
            &theory,
            &query,
            RewriteBudget::default(),
            &Executor::sequential(),
            SaturationMode::Pipelined,
        )
        .unwrap();
        (theory, query, r.ucq, bundle)
    }

    #[test]
    fn replays_a_real_run_end_to_end() {
        let (theory, phi, ucq, bundle) = certified(
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            "?(X) :- mother(X, M).",
        );
        let n = check_rewrite(&theory, &phi, &ucq, &bundle).unwrap();
        assert_eq!(n, bundle.certs.len());
        assert!(n >= ucq.len());
    }

    #[test]
    fn rejects_a_wrong_rule_id_with_location() {
        let (theory, phi, ucq, mut bundle) = certified(
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            "?(X) :- mother(X, M).",
        );
        let step = bundle.certs[1].step.as_mut().unwrap();
        step.rule = 99;
        let e = check_rewrite(&theory, &phi, &ucq, &bundle).unwrap_err();
        assert_eq!(e.cert, 1);
        assert_eq!(
            e.kind,
            CheckErrorKind::RuleOutOfRange { rule: 99, rules: 2 }
        );
    }

    #[test]
    fn rejects_a_permuted_map() {
        let (theory, phi, ucq, mut bundle) = certified(
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
            "?(X) :- mother(X, M).",
        );
        // Swap two entries of a to_query map; either the answer check or
        // an atom image must now fail, locating the mutated node.
        let victim = bundle
            .certs
            .iter()
            .position(|c| c.to_query.len() >= 2)
            .expect("some node has two variables");
        bundle.certs[victim].to_query.swap(0, 1);
        let e = check_rewrite(&theory, &phi, &ucq, &bundle).unwrap_err();
        assert_eq!(e.cert, victim);
    }
}
