//! Certification workloads behind `BENCH_check.json` (the harness's
//! `--check` mode).
//!
//! Every pinned rewrite fixture is re-run through the certificate-emitting
//! entry point ([`qr_rewrite::rewrite_certified`]), its bundle pushed
//! through the `QRRC` codec, and replayed by [`qr_check::check_rewrite`];
//! the E11 transitive-closure chase on `G(60,120)` does the same through
//! `QRCC` and [`qr_check::check_chase`]. Two invariants are pinned as
//! drift-gated counters:
//!
//! * `failures` is empty — every certificate replays;
//! * `kernel_searches` is `0` — the checker never touches the shared
//!   [`HomKernel`](qr_hom), it only verifies recorded witnesses. The
//!   delta is measured around the replay alone (the emitting engine run
//!   searches plenty) and additionally asserted here, so a checker that
//!   starts searching fails the harness loudly before `bench_diff` even
//!   runs.
//!
//! Only `wall_ms` and `threads` are machine-dependent; certificate counts
//! and encoded sizes are pure functions of (theory, query/instance,
//! budget).

use std::time::Instant;

use qr_chase::{chase, emit_chase_certs, ChaseBudget};
use qr_check::{
    check_chase, check_rewrite, decode_chase_certs, decode_rewrite_certs, encode_chase_certs,
    encode_rewrite_certs,
};
use qr_exec::Executor;
use qr_hom::global_kernel;
use qr_rewrite::{rewrite_certified, RewriteBudget, SaturationMode};
use qr_syntax::{parse_query, parse_theory};

use crate::experiments::e11_chase_engine::random_graph;
use crate::report::CheckRun;
use crate::rewrite_workloads;

/// Certifies one pinned rewrite fixture end to end: engine → codec →
/// replay. The kernel-search delta is measured around the decode+replay
/// span only.
fn rewrite_check(
    label: &str,
    theory_src: &str,
    query_src: &str,
    budget: RewriteBudget,
    exec: &Executor,
) -> CheckRun {
    let theory = parse_theory(theory_src).expect("fixture theory parses");
    let query = parse_query(query_src).expect("fixture query parses");
    let (r, bundle) = rewrite_certified(&theory, &query, budget, exec, SaturationMode::Pipelined)
        .expect("no builtin bodies");
    let bytes = encode_rewrite_certs(&bundle);

    let before = global_kernel().stats();
    let t0 = Instant::now();
    let mut failures = Vec::new();
    let certs = match decode_rewrite_certs(&bytes) {
        Ok(decoded) => match check_rewrite(&theory, &query, &r.ucq, &decoded) {
            Ok(n) => n,
            Err(e) => {
                failures.push(e.to_string());
                0
            }
        },
        Err(e) => {
            failures.push(e.to_string());
            0
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = global_kernel().stats();
    let kernel_searches =
        (after.searches - before.searches) + (after.core_searches - before.core_searches);
    assert_eq!(kernel_searches, 0, "{label}: the checker must not search");

    CheckRun {
        workload: label.to_owned(),
        kind: "rewrite",
        threads: exec.threads(),
        wall_ms,
        certs,
        cert_bytes: bytes.len(),
        kernel_searches,
        failures,
    }
}

/// Certifies the E11 chase workload `TC on G(60,120)` (the largest pinned
/// transitive-closure instance) end to end.
fn chase_check(exec: &Executor) -> CheckRun {
    let theory = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").expect("parses");
    let db = random_graph(60, 120, 0xC0FFEE + 60);
    let budget = ChaseBudget {
        max_rounds: 12,
        max_facts: 2_000_000,
    };
    let c = chase(&theory, &db, budget);
    let bundle = emit_chase_certs(&theory, &c);
    let bytes = encode_chase_certs(&bundle);

    let before = global_kernel().stats();
    let t0 = Instant::now();
    let mut failures = Vec::new();
    let certs = match decode_chase_certs(&bytes) {
        Ok(decoded) => match check_chase(&theory, &c.instance, &decoded) {
            Ok(n) => n,
            Err(e) => {
                failures.push(e.to_string());
                0
            }
        },
        Err(e) => {
            failures.push(e.to_string());
            0
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after = global_kernel().stats();
    let kernel_searches =
        (after.searches - before.searches) + (after.core_searches - before.core_searches);
    assert_eq!(kernel_searches, 0, "chase checker must not search");

    CheckRun {
        workload: "TC on G(60,120)".to_owned(),
        kind: "chase",
        threads: exec.threads(),
        wall_ms,
        certs,
        cert_bytes: bytes.len(),
        kernel_searches,
        failures,
    }
}

/// Runs the full certification suite: every pinned rewrite fixture plus
/// the E11 chase workload.
pub fn stats_runs(exec: &Executor) -> Vec<CheckRun> {
    let mut out = Vec::new();
    for (label, t, q, budget) in rewrite_workloads::fixtures() {
        out.push(rewrite_check(label, t, q, budget, exec));
    }
    out.push(chase_check(exec));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pinned_workload_certifies_cleanly() {
        let runs = stats_runs(&Executor::sequential());
        assert_eq!(runs.len(), rewrite_workloads::fixtures().len() + 1);
        for r in &runs {
            assert!(r.failures.is_empty(), "{}: {:?}", r.workload, r.failures);
            assert_eq!(r.kernel_searches, 0, "{}", r.workload);
            assert!(r.certs > 0, "{}: no certificates emitted", r.workload);
            assert!(r.cert_bytes > 0, "{}", r.workload);
        }
        assert_eq!(runs.last().unwrap().kind, "chase");
        assert!(runs[..runs.len() - 1].iter().all(|r| r.kind == "rewrite"));
    }
}
