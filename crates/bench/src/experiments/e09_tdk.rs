//! **E9 — Section 12 / Theorem 6**: the `K`-colour theories `T_d^K`.
//!
//! The paper defers its `(K−1)`-fold-exponential witness query to the
//! journal version; what we reproduce is the *compounding mechanism*:
//!
//! 1. at **every** adjacent colour pair `(i+1, i)` of `T_d^K`, the marked
//!    process rewrites `φ^n_{i+1,i}` to a pure `I_i`-path of length `2^n`
//!    (the level-wise single exponential that stacks into the tower), and
//! 2. a recursive "tower" query (each level's bridge replaced by the
//!    level-below pattern) shows the per-level growth composing across
//!    `K = 2, 3, 4`.

use std::time::Instant;

use qr_core::marked::rewrite_tdk;
use qr_core::theories::{colour_path_query, phi_n};
use qr_hom::containment::equivalent;
use qr_syntax::{parse_query, ConjunctiveQuery};

use crate::Table;

/// The recursive tower query: `I_k`-paths of length `n` from `X` and `Y`
/// whose tips are bridged by the level-`(k−1)` pattern; the level-1 bridge
/// is a single `i1`-edge. `tower(2, n)` is `φ^n_{i2,i1}`.
pub fn tower(k: usize, n: usize) -> ConjunctiveQuery {
    fn bridge(k: usize, n: usize, x: &str, y: &str, fresh: &mut usize, atoms: &mut Vec<String>) {
        if k == 1 {
            atoms.push(format!("i1({x}, {y})"));
            return;
        }
        let (mut cx, mut cy) = (x.to_string(), y.to_string());
        for _ in 0..n {
            let nx = format!("V{}", *fresh);
            let ny = format!("V{}", *fresh + 1);
            *fresh += 2;
            atoms.push(format!("i{k}({cx}, {nx})"));
            atoms.push(format!("i{k}({cy}, {ny})"));
            cx = nx;
            cy = ny;
        }
        bridge(k - 1, n, &cx, &cy, fresh, atoms);
    }
    let mut atoms = Vec::new();
    let mut fresh = 0;
    bridge(k, n, "X", "Y", &mut fresh, &mut atoms);
    parse_query(&format!("?(X, Y) :- {}.", atoms.join(", "))).expect("tower parses")
}

/// The E9 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E9  §12 / Thm 6 — T_d^K: the per-level exponential compounds across colours",
        "each level pair yields pure low-colour paths of length 2^n; tower sizes grow with K and n",
        &[
            "K",
            "query",
            "|ψ|",
            "disjuncts",
            "max size",
            "2^n low path",
            "steps",
            "ms",
        ],
    );
    // (1) Per-level single exponential inside T_d^3.
    for (level, hi, lo) in [(1u8, "i2", "i1"), (2u8, "i3", "i2")] {
        for n in 1..=3usize {
            let t0 = Instant::now();
            let q = phi_n(n, hi, lo);
            let r = rewrite_tdk(3, &q, 100_000_000).expect("terminates");
            let path = colour_path_query(1 << n, lo);
            let present = r.disjuncts.iter().any(|d| equivalent(d, &path));
            t.row(vec![
                "3".into(),
                format!("φ^{n} at level {}", level + 1),
                q.size().to_string(),
                r.disjuncts.len().to_string(),
                r.max_disjunct_size().to_string(),
                present.to_string(),
                r.stats.steps.to_string(),
                t0.elapsed().as_millis().to_string(),
            ]);
        }
    }
    // (2) Tower composites across K.
    for (k, n) in [(2usize, 2usize), (2, 3), (3, 1), (3, 2), (4, 1), (4, 2)] {
        let t0 = Instant::now();
        let q = tower(k, n);
        let r = rewrite_tdk(k, &q, 100_000_000).expect("terminates");
        t.row(vec![
            k.to_string(),
            format!("tower(K={k}, n={n})"),
            q.size().to_string(),
            r.disjuncts.len().to_string(),
            r.max_disjunct_size().to_string(),
            "-".into(),
            r.stats.steps.to_string(),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_level_exponential() {
        for (hi, lo) in [("i2", "i1"), ("i3", "i2")] {
            let q = phi_n(2, hi, lo);
            let r = rewrite_tdk(3, &q, 10_000_000).unwrap();
            let path = colour_path_query(4, lo);
            assert!(
                r.disjuncts.iter().any(|d| equivalent(d, &path)),
                "level ({hi},{lo}) missing its 2^2-path disjunct"
            );
        }
    }

    #[test]
    fn tower_grows_with_k() {
        let m2 = rewrite_tdk(2, &tower(2, 1), 1_000_000)
            .unwrap()
            .max_disjunct_size();
        let m3 = rewrite_tdk(3, &tower(3, 1), 1_000_000)
            .unwrap()
            .max_disjunct_size();
        let m4 = rewrite_tdk(4, &tower(4, 1), 1_000_000)
            .unwrap()
            .max_disjunct_size();
        assert!(m2 < m3 && m3 < m4, "{m2} {m3} {m4}");
    }
}
