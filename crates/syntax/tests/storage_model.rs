//! Model-based property tests for the storage-backed [`Instance`].
//!
//! The S20 refactor swapped the `Vec<Fact>` + `HashMap` instance layout
//! for `qr-storage`'s columnar fact store. The chase engine depends on the
//! *observable* contract of the old layout — dense insertion-ordered
//! `FactIdx` values, first-occurrence domain order, per-`(pred)` and
//! `(pred, pos, term)` index streams — so these tests replay randomized
//! insertion sequences against an in-test reference model implementing the
//! old layout directly, and demand byte-for-byte identical observations.

use std::collections::{HashMap, HashSet};

use qr_syntax::{Fact, Instance, Pred, SkolemFn, Symbol, TermId};
use qr_testkit::{check, Rng};

/// The pre-S20 instance layout, reimplemented naively: fact vector plus
/// hash indexes, exactly as `qr_syntax::instance` kept them before the
/// columnar store.
#[derive(Default)]
struct ModelInstance {
    facts: Vec<Fact>,
    seen: HashSet<Fact>,
    by_pred: HashMap<Pred, Vec<usize>>,
    by_pred_pos_term: HashMap<(Pred, u32, TermId), Vec<usize>>,
    domain: Vec<TermId>,
    domain_seen: HashSet<TermId>,
}

impl ModelInstance {
    fn insert(&mut self, fact: Fact) -> Option<usize> {
        if self.seen.contains(&fact) {
            return None;
        }
        let idx = self.facts.len();
        for &t in &fact.args {
            if self.domain_seen.insert(t) {
                self.domain.push(t);
            }
        }
        self.by_pred.entry(fact.pred).or_default().push(idx);
        for (pos, &t) in fact.args.iter().enumerate() {
            self.by_pred_pos_term
                .entry((fact.pred, pos as u32, t))
                .or_default()
                .push(idx);
        }
        self.seen.insert(fact.clone());
        self.facts.push(fact);
        Some(idx)
    }
}

/// A pool of predicates of mixed arity (including a propositional one) and
/// a term generator mixing constants with nested Skolem terms, as chase
/// outputs do.
fn pred_pool() -> Vec<Pred> {
    vec![
        Pred::new("e", 2),
        Pred::new("r", 3),
        Pred::new("p", 1),
        Pred::new("flag", 0),
        Pred::new("e", 1), // same name, different arity: distinct predicate
    ]
}

fn random_term(rng: &mut Rng) -> TermId {
    let c = TermId::constant(Symbol::intern(&format!("c{}", rng.below(6))));
    match rng.below(4) {
        0 | 1 => c,
        2 => TermId::skolem(SkolemFn::intern(Symbol::intern("f"), 1), &[c]),
        _ => {
            let inner = TermId::skolem(SkolemFn::intern(Symbol::intern("g"), 1), &[c]);
            TermId::skolem(SkolemFn::intern(Symbol::intern("f"), 1), &[inner])
        }
    }
}

fn random_fact(rng: &mut Rng, preds: &[Pred]) -> Fact {
    let pred = *rng.pick(preds);
    let args: Vec<TermId> = (0..pred.arity()).map(|_| random_term(rng)).collect();
    Fact::new(pred, args)
}

#[test]
fn storage_instance_replays_the_legacy_layout() {
    let preds = pred_pool();
    check("storage_instance_replays_the_legacy_layout", 120, |rng| {
        let mut model = ModelInstance::default();
        let mut inst = Instance::new();
        let inserts = rng.range(1, 60);
        for _ in 0..inserts {
            let fact = random_fact(rng, &preds);
            // Same dedup outcome and same assigned index.
            assert_eq!(inst.insert(fact.clone()), model.insert(fact));
        }

        // Fact stream: dense indexes, insertion order, identical rendering.
        assert_eq!(inst.len(), model.facts.len());
        for (idx, expected) in model.facts.iter().enumerate() {
            let got = inst.fact(idx);
            assert_eq!(got, *expected);
            assert_eq!(got.to_fact(), *expected);
            assert_eq!(format!("{got}"), format!("{expected}"));
            assert_eq!(inst.index_of(expected), Some(idx));
        }
        let streamed: Vec<Fact> = inst.iter().map(|f| f.to_fact()).collect();
        assert_eq!(streamed, model.facts);

        // Domain: first-occurrence order, exactly as the old layout kept it
        // (the chase's dom-sweep enumeration order depends on this).
        assert_eq!(inst.domain(), model.domain.as_slice());
        assert_eq!(inst.domain_len(), model.domain.len());
        for &t in &model.domain {
            assert!(inst.contains_term(t));
        }

        // Index streams: same posting lists, in insertion order.
        for &pred in &preds {
            let got: Vec<usize> = inst.with_pred(pred).iter().map(|&i| i as usize).collect();
            let want = model.by_pred.get(&pred).cloned().unwrap_or_default();
            assert_eq!(got, want, "with_pred({pred:?})");
        }
        for ((pred, pos, term), want) in &model.by_pred_pos_term {
            let got: Vec<usize> = inst
                .with_pred_pos_term(*pred, *pos, *term)
                .iter()
                .map(|&i| i as usize)
                .collect();
            assert_eq!(got, *want, "with_pred_pos_term({pred:?},{pos},{term:?})");
        }

        // Membership agrees for seen facts and fresh probes alike.
        for _ in 0..10 {
            let probe = random_fact(rng, &preds);
            assert_eq!(inst.contains(&probe), model.seen.contains(&probe));
        }
    });
}

#[test]
fn snapshots_restore_the_exact_model_prefix() {
    let preds = pred_pool();
    check("snapshots_restore_the_exact_model_prefix", 60, |rng| {
        let facts: Vec<Fact> = (0..rng.range(2, 40))
            .map(|_| random_fact(rng, &preds))
            .collect();

        // Insert a prefix, snapshot, insert the rest, restore: the result
        // must be indistinguishable from an instance that only ever saw the
        // prefix — including indexes, domain order and byte accounting.
        let cut = rng.below(facts.len());
        let mut inst = Instance::new();
        for f in &facts[..cut] {
            inst.insert(f.clone());
        }
        let snap = inst.snapshot();
        let peak_before = inst.stats().peak_facts;
        for f in &facts[cut..] {
            inst.insert(f.clone());
        }
        let truncated = inst.truncated(&snap);
        inst.restore(&snap);

        let mut fresh = Instance::new();
        for f in &facts[..cut] {
            fresh.insert(f.clone());
        }
        assert_eq!(inst, fresh);
        assert_eq!(truncated, fresh);
        assert_eq!(truncated.stats(), fresh.stats());
        assert_eq!(inst.domain(), fresh.domain());
        for &pred in &preds {
            assert_eq!(inst.with_pred(pred), fresh.with_pred(pred));
        }
        let streamed: Vec<Fact> = inst.iter().map(|f| f.to_fact()).collect();
        let fresh_streamed: Vec<Fact> = fresh.iter().map(|f| f.to_fact()).collect();
        assert_eq!(streamed, fresh_streamed);

        // `restore` keeps the high-water mark; everything else matches the
        // fresh build exactly.
        let mut stats = inst.stats();
        assert!(stats.peak_facts >= peak_before);
        stats.peak_facts = fresh.stats().peak_facts;
        assert_eq!(stats, fresh.stats());

        // Restoring and re-inserting the suffix replays the original run.
        let mut replay = fresh;
        for f in &facts[cut..] {
            replay.insert(f.clone());
        }
        let mut full = Instance::new();
        for f in &facts {
            full.insert(f.clone());
        }
        assert_eq!(replay, full);
        assert_eq!(replay.stats(), full.stats());
    });
}

#[test]
fn checkpoint_bytes_roundtrip_randomized_instances() {
    let preds = pred_pool();
    check(
        "checkpoint_bytes_roundtrip_randomized_instances",
        60,
        |rng| {
            let mut inst = Instance::new();
            for _ in 0..rng.range(0, 40) {
                inst.insert(random_fact(rng, &preds));
            }
            let bytes = inst.to_bytes();
            let back = Instance::from_bytes(&bytes).expect("decode");
            assert_eq!(back, inst);
            // In-process the round-trip is bit-identical, not merely set-equal:
            // same fact order, same indexes, same counters.
            let a: Vec<Fact> = inst.iter().map(|f| f.to_fact()).collect();
            let b: Vec<Fact> = back.iter().map(|f| f.to_fact()).collect();
            assert_eq!(a, b);
            assert_eq!(back.domain(), inst.domain());
            assert_eq!(back.stats(), inst.stats());
            assert_eq!(back.to_bytes(), bytes);
        },
    );
}
