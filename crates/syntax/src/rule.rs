//! Tuple generating dependencies (existential rules) and theories.

use std::collections::HashSet;

use crate::atom::Pred;
use crate::query::{QAtom, Var};
use crate::symbol::Symbol;

/// A tuple generating dependency
/// `∀x̄,ȳ (β(x̄,ȳ) ⇒ ∃w̄ α(ȳ,w̄))`.
///
/// The body may be empty (the paper's `true ⇒ …` rules) and may contain the
/// builtin domain atom `dom(x)` to scope a variable over the active domain
/// (`∀x (true ⇒ ∃z R(x,z))` becomes `dom(X) -> r(X,Z)`). Heads may contain
/// several atoms (the paper's `T_d` uses multi-head rules; see the remark
/// below Definition 45).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tgd {
    name: String,
    body: Vec<QAtom>,
    head: Vec<QAtom>,
    var_names: Vec<Symbol>,
}

impl Tgd {
    /// Creates a rule.
    ///
    /// # Panics
    /// Panics if the head is empty, if `dom` occurs in the head, or if a
    /// variable index is out of range of `var_names`.
    pub fn new(
        name: impl Into<String>,
        body: Vec<QAtom>,
        head: Vec<QAtom>,
        var_names: Vec<Symbol>,
    ) -> Tgd {
        assert!(!head.is_empty(), "rule head must be non-empty");
        let n = var_names.len() as u32;
        for a in body.iter().chain(head.iter()) {
            for v in a.vars() {
                assert!(v.0 < n, "variable index {v:?} out of range");
            }
        }
        for a in &head {
            assert!(
                !a.pred.is_dom(),
                "builtin dom/1 may not occur in a rule head"
            );
        }
        Tgd {
            name: name.into(),
            body,
            head,
            var_names,
        }
    }

    /// The rule's name (used in provenance and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Body atoms (possibly including `dom/1` atoms; possibly empty).
    pub fn body(&self) -> &[QAtom] {
        &self.body
    }

    /// Body atoms excluding the builtin `dom/1` atoms.
    pub fn proper_body(&self) -> impl Iterator<Item = &QAtom> {
        self.body.iter().filter(|a| !a.pred.is_dom())
    }

    /// Head atoms.
    pub fn head(&self) -> &[QAtom] {
        &self.head
    }

    /// Display name of a variable.
    pub fn var_name(&self, v: Var) -> Symbol {
        self.var_names[v.index()]
    }

    /// The variable name table.
    pub fn var_names(&self) -> &[Symbol] {
        &self.var_names
    }

    /// Variables occurring in the body, in first-occurrence order.
    pub fn body_vars(&self) -> Vec<Var> {
        ordered_vars(&self.body)
    }

    /// Variables occurring in the head, in first-occurrence order.
    pub fn head_vars(&self) -> Vec<Var> {
        ordered_vars(&self.head)
    }

    /// The frontier `fr(ρ)`: variables occurring in both body and head.
    pub fn frontier(&self) -> Vec<Var> {
        let body: HashSet<Var> = self.body_vars().into_iter().collect();
        self.head_vars()
            .into_iter()
            .filter(|v| body.contains(v))
            .collect()
    }

    /// The existential variables `w̄`: head variables not in the body.
    pub fn existential_vars(&self) -> Vec<Var> {
        let body: HashSet<Var> = self.body_vars().into_iter().collect();
        self.head_vars()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// `true` iff the rule has no existential variables (a Datalog rule).
    pub fn is_datalog(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// `true` iff the frontier is empty — the paper's *detached* rules
    /// (Section 13).
    pub fn is_detached(&self) -> bool {
        self.frontier().is_empty()
    }

    /// `true` iff the body uses the builtin `dom/1` predicate or is empty,
    /// i.e. the rule is one of the paper's `true ⇒ …` rules. Such rules are
    /// supported by the chase but not by the generic rewriting engine.
    pub fn has_builtin_body(&self) -> bool {
        self.body.is_empty() || self.body.iter().any(|a| a.pred.is_dom())
    }

    /// A readable rendering, e.g. `human(X) -> mother(X,Y)`.
    pub fn render(&self) -> String {
        crate::display::render_tgd(self)
    }
}

fn ordered_vars(atoms: &[QAtom]) -> Vec<Var> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for a in atoms {
        for v in a.vars() {
            if seen.insert(v) {
                out.push(v);
            }
        }
    }
    out
}

/// A finite set of TGDs.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Theory {
    name: String,
    rules: Vec<Tgd>,
}

impl Theory {
    /// Creates a theory from rules.
    pub fn new(name: impl Into<String>, rules: Vec<Tgd>) -> Theory {
        Theory {
            name: name.into(),
            rules,
        }
    }

    /// The theory's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rules.
    pub fn rules(&self) -> &[Tgd] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff the theory has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The signature: every non-builtin predicate occurring in some rule.
    pub fn signature(&self) -> Vec<Pred> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for r in &self.rules {
            for a in r.body().iter().chain(r.head().iter()) {
                if !a.pred.is_dom() && seen.insert(a.pred) {
                    out.push(a.pred);
                }
            }
        }
        out
    }

    /// Maximum predicate arity in the signature.
    pub fn max_arity(&self) -> u32 {
        self.signature()
            .iter()
            .map(|p| p.arity())
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of atoms in a rule body (the constant `h` of the
    /// paper's Appendix A).
    pub fn max_body_size(&self) -> usize {
        self.rules.iter().map(|r| r.body().len()).max().unwrap_or(0)
    }

    /// The Datalog rules of the theory (the paper's `T_DL`).
    pub fn datalog_part(&self) -> Vec<&Tgd> {
        self.rules.iter().filter(|r| r.is_datalog()).collect()
    }

    /// The existential rules of the theory (the paper's `T_∃`).
    pub fn existential_part(&self) -> Vec<&Tgd> {
        self.rules.iter().filter(|r| !r.is_datalog()).collect()
    }

    /// `true` iff some rule has an empty or `dom`-scoped body.
    pub fn has_builtin_bodies(&self) -> bool {
        self.rules.iter().any(Tgd::has_builtin_body)
    }

    /// A readable multi-line rendering of the theory.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rules {
            out.push_str(&r.render());
            out.push_str(".\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QTerm, VarPool};

    fn binary(pred: &str, a: Var, b: Var) -> QAtom {
        QAtom::new(Pred::new(pred, 2), vec![QTerm::Var(a), QTerm::Var(b)])
    }

    fn unary(pred: &str, a: Var) -> QAtom {
        QAtom::new(Pred::new(pred, 1), vec![QTerm::Var(a)])
    }

    #[test]
    fn frontier_and_existentials() {
        // human(X) -> mother(X, Y)
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let r = Tgd::new(
            "r1",
            vec![unary("human", x)],
            vec![binary("mother", x, y)],
            pool.into_names(),
        );
        assert_eq!(r.frontier(), vec![x]);
        assert_eq!(r.existential_vars(), vec![y]);
        assert!(!r.is_datalog());
        assert!(!r.is_detached());
        assert!(!r.has_builtin_body());
    }

    #[test]
    fn datalog_and_detached_flags() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let dl = Tgd::new(
            "dl",
            vec![binary("mother", x, y)],
            vec![unary("human", y)],
            pool.names().to_vec(),
        );
        assert!(dl.is_datalog());
        let mut pool2 = VarPool::new();
        let u = pool2.var("U");
        let v = pool2.var("V");
        let det = Tgd::new(
            "det",
            vec![unary("p", u)],
            vec![unary("q", v)],
            pool2.into_names(),
        );
        assert!(det.is_detached());
    }

    #[test]
    fn builtin_body_rules() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let z = pool.var("Z");
        // dom(X) -> r(X, Z)
        let pins = Tgd::new(
            "pins",
            vec![QAtom::new(Pred::dom(), vec![QTerm::Var(x)])],
            vec![binary("r", x, z)],
            pool.into_names(),
        );
        assert!(pins.has_builtin_body());
        assert_eq!(pins.frontier(), vec![x]);
        let mut pool2 = VarPool::new();
        let w = pool2.var("W");
        // true -> r(W, W)
        let loop_rule = Tgd::new("loop", vec![], vec![binary("r", w, w)], pool2.into_names());
        assert!(loop_rule.has_builtin_body());
        assert!(loop_rule.is_detached());
    }

    #[test]
    fn theory_signature() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let y = pool.var("Y");
        let t = Theory::new(
            "t",
            vec![Tgd::new(
                "r",
                vec![unary("human", x)],
                vec![binary("mother", x, y)],
                pool.into_names(),
            )],
        );
        let sig = t.signature();
        assert_eq!(sig.len(), 2);
        assert_eq!(t.max_arity(), 2);
        assert_eq!(t.datalog_part().len(), 0);
        assert_eq!(t.existential_part().len(), 1);
    }

    #[test]
    #[should_panic(expected = "dom/1 may not occur in a rule head")]
    fn dom_rejected_in_head() {
        let mut pool = VarPool::new();
        let x = pool.var("X");
        let _ = Tgd::new(
            "bad",
            vec![unary("p", x)],
            vec![QAtom::new(Pred::dom(), vec![QTerm::Var(x)])],
            pool.into_names(),
        );
    }
}
