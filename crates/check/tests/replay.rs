//! End-to-end certification: engine → encode → decode → replay, with
//! zero homomorphism searches on the checker's side.

use qr_chase::{chase, emit_chase_certs, ChaseBudget};
use qr_check::{
    check_chase, check_rewrite, decode_chase_certs, decode_rewrite_certs, encode_chase_certs,
    encode_rewrite_certs,
};
use qr_exec::Executor;
use qr_hom::global_kernel;
use qr_rewrite::{rewrite_certified, RewriteBudget, SaturationMode};
use qr_syntax::{parse_instance, parse_query, parse_theory};

const REWRITE_WORKLOADS: &[(&str, &str, &str)] = &[
    (
        "t_a",
        "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
        "?(X) :- mother(X, M).",
    ),
    ("t_p", "e(X,Y) -> e(Y,Z).", "?(A) :- e(A,B), e(B,C)."),
    (
        "ex39",
        "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
        "?(A,D) :- e(A,B,C,D).",
    ),
    (
        "guarded",
        "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
        "? :- p(A).",
    ),
];

#[test]
fn rewrite_workloads_certify_through_the_codec() {
    for &(label, t, q) in REWRITE_WORKLOADS {
        let theory = parse_theory(t).unwrap();
        let query = parse_query(q).unwrap();
        let (r, bundle) = rewrite_certified(
            &theory,
            &query,
            RewriteBudget::default(),
            &Executor::sequential(),
            SaturationMode::Pipelined,
        )
        .unwrap();
        let bytes = encode_rewrite_certs(&bundle);
        let decoded = decode_rewrite_certs(&bytes).unwrap();
        assert_eq!(decoded, bundle, "{label}: codec must be lossless");

        // The checker must not touch the shared kernel: replay is pure
        // recorded-witness verification, zero search.
        let before = global_kernel().stats();
        let n = check_rewrite(&theory, &query, &r.ucq, &decoded)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let after = global_kernel().stats();
        assert_eq!(n, bundle.certs.len(), "{label}");
        assert_eq!(after.searches, before.searches, "{label}: kernel searched");
        assert_eq!(after.freezes, before.freezes, "{label}: kernel froze");
        assert_eq!(
            after.core_searches, before.core_searches,
            "{label}: kernel folded cores"
        );
    }
}

/// The per-window counters the bench drift-gates (everything but walls).
fn counter_rows(s: &qr_rewrite::RewriteStats) -> Vec<[usize; 15]> {
    s.windows
        .iter()
        .map(|w| {
            [
                w.window,
                w.items,
                w.merged,
                w.dead_skipped,
                w.generated,
                w.dedup_hits,
                w.subsumption_hits,
                w.evictions,
                w.oversized,
                w.accepted,
                w.kept,
                w.unifier_probes,
                w.unifier_skipped,
                w.trie_probes,
                w.trie_skipped,
            ]
        })
        .collect()
}

/// Certificate emission is output-invariant: UCQ renders, outcome, and
/// every drift-gated counter are identical with the cert sink on vs off,
/// at 1/2/4 threads and in both saturation modes.
#[test]
fn certified_runs_match_uncertified_runs_exactly() {
    use qr_rewrite::rewrite_with_mode;
    for &(label, t, q) in REWRITE_WORKLOADS {
        let theory = parse_theory(t).unwrap();
        let query = parse_query(q).unwrap();
        for threads in [1, 2, 4] {
            let exec = Executor::with_threads(threads);
            for mode in [SaturationMode::Pipelined, SaturationMode::Barrier] {
                let plain =
                    rewrite_with_mode(&theory, &query, RewriteBudget::default(), &exec, mode)
                        .unwrap();
                let (certified, bundle) =
                    rewrite_certified(&theory, &query, RewriteBudget::default(), &exec, mode)
                        .unwrap();
                let tag = format!("{label} @{threads} {mode:?}");
                assert_eq!(certified.ucq, plain.ucq, "{tag}");
                let render: Vec<String> = certified
                    .ucq
                    .disjuncts()
                    .iter()
                    .map(|d| d.render())
                    .collect();
                let plain_render: Vec<String> =
                    plain.ucq.disjuncts().iter().map(|d| d.render()).collect();
                assert_eq!(render, plain_render, "{tag}: UCQ renders");
                assert_eq!(certified.generated, plain.generated, "{tag}");
                assert_eq!(certified.outcome, plain.outcome, "{tag}");
                assert_eq!(certified.depth, plain.depth, "{tag}");
                assert_eq!(
                    certified.oversized_discarded, plain.oversized_discarded,
                    "{tag}"
                );
                assert_eq!(
                    counter_rows(&certified.stats),
                    counter_rows(&plain.stats),
                    "{tag}: window counters"
                );
                // The drift-gated kernel cache tier (deterministic at
                // every thread count; search counters are sequential-only).
                let tier = |h: &qr_hom::HomStats| {
                    (
                        h.freezes,
                        h.freeze_cache_hits,
                        h.plan_compiles,
                        h.plan_cache_hits,
                        h.prefilter_rejects,
                        h.components,
                    )
                };
                assert_eq!(tier(&certified.hom), tier(&plain.hom), "{tag}: cache tier");
                if threads == 1 {
                    assert_eq!(certified.hom, plain.hom, "{tag}: full kernel stats");
                }
                check_rewrite(&theory, &query, &certified.ucq, &bundle)
                    .unwrap_or_else(|e| panic!("{tag}: {e}"));
            }
        }
    }
}

#[test]
fn chase_workloads_certify_through_the_codec() {
    let workloads: &[(&str, &str, &str)] = &[
        ("tc", "e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c). e(c,d)."),
        ("exist", "human(X) -> mother(X,Y).", "human(abel)."),
        (
            "dom",
            "dom(X) -> p(X).\np(X), e(X,Y) -> p(Y).",
            "e(a,b). e(b,c).",
        ),
    ];
    for &(label, t, db) in workloads {
        let theory = parse_theory(t).unwrap();
        let d = parse_instance(db).unwrap();
        let c = chase(&theory, &d, ChaseBudget::default());
        let bundle = emit_chase_certs(&theory, &c);
        let bytes = encode_chase_certs(&bundle);
        let decoded = decode_chase_certs(&bytes).unwrap();
        assert_eq!(decoded, bundle, "{label}");

        let before = global_kernel().stats();
        let n =
            check_chase(&theory, &c.instance, &decoded).unwrap_or_else(|e| panic!("{label}: {e}"));
        let after = global_kernel().stats();
        assert_eq!(n, c.instance.len() - bundle.base as usize, "{label}");
        assert_eq!(after.searches, before.searches, "{label}: kernel searched");
    }
}
