//! **E1 — Fig. 1 / Theorem 5B(i)**: `Ch(T_d, G^{2^n}(a,b)) ⊨ φ_R^n(a,b)`.
//!
//! Expected shape: the query of size `2n+1` is entailed on the green path
//! of length `2^n`; the chase depth needed grows linearly in `n` while the
//! chase itself grows exponentially (the grid of Fig. 1).

use std::time::Instant;

use qr_chase::{chase, ChaseBudget};
use qr_core::theories::{green_path, phi_r_n, t_d};
use qr_hom::holds;

use crate::Table;

/// Largest `n` (path length `2^n`) the default harness run covers.
pub const MAX_N: usize = 3;

/// Runs E1 for one `n`: returns `(first entailment depth, chase facts at
/// that depth, entailed)`.
pub fn run_one(n: usize, max_rounds: usize) -> (Option<usize>, usize, bool) {
    let len = 1usize << n;
    let (db, a, b) = green_path(len, "a");
    let theory = t_d();
    let q = phi_r_n(n);
    for rounds in 1..=max_rounds {
        let ch = chase(
            &theory,
            &db,
            ChaseBudget {
                max_rounds: rounds,
                max_facts: 2_000_000,
            },
        );
        if holds(&q, &ch.instance, &[a, b]) {
            return (Some(rounds), ch.instance.len(), true);
        }
    }
    (None, 0, false)
}

/// The E1 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E1  Fig. 1 / Thm 5B(i) — T_d entails φ_R^n on the green path G^{2^n}",
        "entailed at every n; depth grows ~linearly in n, chase size exponentially",
        &[
            "n",
            "|G path|",
            "|φ_R^n|",
            "entailed",
            "depth",
            "chase facts",
            "ms",
        ],
    );
    for n in 0..=MAX_N {
        let t0 = Instant::now();
        let (depth, facts, entailed) = run_one(n, 10);
        t.row(vec![
            n.to_string(),
            (1usize << n).to_string(),
            phi_r_n(n).size().to_string(),
            entailed.to_string(),
            depth.map_or("-".into(), |d| d.to_string()),
            facts.to_string(),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_n_entailed_at_expected_depths() {
        assert_eq!(run_one(0, 4).0, Some(1));
        assert_eq!(run_one(1, 4).0, Some(2));
        assert_eq!(run_one(2, 6).0, Some(4));
    }

    #[test]
    fn longer_paths_do_not_entail_early() {
        // φ_R^2 needs the exact doubling geometry: the path G^3 (≠ 2^2)
        // must not entail it.
        let (db, a, b) = green_path(3, "w");
        let ch = chase(&t_d(), &db, ChaseBudget::rounds(5));
        assert!(!holds(&phi_r_n(2), &ch.instance, &[a, b]));
    }
}
