//! Property-based tests (proptest) for the core invariants:
//! chase monotonicity and Observation 8, containment as a preorder, query
//! cores, instance cores, and soundness of the marked-query operations
//! against the chase (Lemma 52 on random green paths).

use proptest::prelude::*;

use query_rewritability::chase::{chase, ChaseBudget};
use query_rewritability::core::marked::{ColorMap, MarkedQuery, StepResult};
use query_rewritability::core::theories::t_d;
use query_rewritability::hom::containment::{contains, equivalent};
use query_rewritability::hom::qcore::query_core;
use query_rewritability::hom::{holds, structure::structure_core};
use query_rewritability::prelude::*;

/// Strategy: a random small edge instance over `e/2`.
fn edge_instance() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0u8..6, 0u8..6), 1..10).prop_map(|pairs| {
        let mut src = String::new();
        for (a, b) in pairs {
            src.push_str(&format!("e(v{a}, v{b}).\n"));
        }
        parse_instance(&src).unwrap()
    })
}

/// Strategy: a random connected-ish Boolean path/tree query over `e/2`.
fn small_query() -> impl Strategy<Value = ConjunctiveQuery> {
    proptest::collection::vec((0u8..5, 0u8..5), 1..6).prop_map(|pairs| {
        let atoms: Vec<String> = pairs
            .iter()
            .map(|(a, b)| format!("e(X{a}, X{b})"))
            .collect();
        parse_query(&format!("? :- {}.", atoms.join(", "))).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chase_is_monotone(db in edge_instance(), extra in edge_instance()) {
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let big = db.union(&extra);
        let ch_small = chase(&t, &db, ChaseBudget::rounds(4));
        let ch_big = chase(&t, &big, ChaseBudget::rounds(4));
        prop_assert!(ch_small.instance.subset_of(&ch_big.instance));
    }

    #[test]
    fn observation_8_literal(db in edge_instance(), cut in 0usize..3) {
        // D ⊆ F ⊆ Ch(T,D) ⇒ Ch(T,F) = Ch(T,D) — literally, thanks to the
        // Skolem naming convention. On bounded prefixes: Ch_k(D) ⊆ Ch_k(F).
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let ch = chase(&t, &db, ChaseBudget::rounds(6));
        let f = ch.prefix(cut);
        let ch_f = chase(&t, &f, ChaseBudget::rounds(6));
        prop_assert!(ch.instance.subset_of(&ch_f.instance));
    }

    #[test]
    fn containment_is_reflexive_transitive(q1 in small_query(), q2 in small_query(), q3 in small_query()) {
        prop_assert!(contains(&q1, &q1));
        if contains(&q1, &q2) && contains(&q2, &q3) {
            prop_assert!(contains(&q1, &q3));
        }
    }

    #[test]
    fn query_core_is_equivalent_and_minimal(q in small_query()) {
        let core = query_core(&q);
        prop_assert!(equivalent(&q, &core));
        prop_assert!(core.size() <= q.size());
        // Minimality: dropping any single atom changes the semantics
        // (unless it orphans nothing — query_core guarantees this).
        if core.size() > 1 {
            for skip in 0..core.size() {
                let atoms: Vec<_> = core
                    .atoms()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, a)| a.clone())
                    .collect();
                let smaller = ConjunctiveQuery::new(vec![], atoms, core.var_names().to_vec());
                prop_assert!(!equivalent(&core, &smaller));
            }
        }
    }

    #[test]
    fn structure_core_retracts(db in edge_instance()) {
        let (core, retraction) = structure_core(&db, &Default::default());
        prop_assert!(core.subset_of(&db));
        // The retraction maps every domain term into the core's domain.
        for t in db.domain() {
            prop_assert!(core.domain().contains(&retraction[t]));
        }
        // Idempotence.
        let (core2, _) = structure_core(&core, &Default::default());
        prop_assert_eq!(core2, core);
    }

    #[test]
    fn marked_operations_sound_on_green_paths(len in 1usize..5, seed_marking in 0u64..16) {
        // Lemma 52 on concrete data: applying one operation to a marked
        // version of the path query preserves satisfaction over the chase
        // of a small green path.
        let colors = ColorMap::td();
        let atoms: Vec<String> = (0..len).map(|i| format!("g(X{i}, X{})", i + 1)).collect();
        let q = parse_query(&format!("?(X0) :- {}.", atoms.join(", "))).unwrap();
        let markings = MarkedQuery::markings_of(&q, &colors).unwrap();
        let mq = &markings[(seed_marking as usize) % markings.len()];

        let (db, a, _) = query_rewritability::core::theories::green_path(3, "pp");
        let ch = chase(&t_d(), &db, ChaseBudget { max_rounds: 4, max_facts: 100_000 });

        let satisfied = |m: &MarkedQuery| -> bool {
            match m.to_cq(&colors) {
                None => true,
                Some(cq) => {
                    // Approximate Definition 48 by plain CQ satisfaction
                    // restricted soundness check: if the *replaced* set is
                    // satisfied, the original must be too, and vice versa
                    // under the full marked semantics; for the path query
                    // the marked and unmarked semantics coincide on
                    // disjuncts whose answers are D-constants.
                    holds(&cq, &ch.instance, &[a])
                }
            }
        };
        if mq.is_live() {
            if let StepResult::Replaced(qs) = mq.step() {
                // Soundness direction we can check with plain satisfaction:
                // every replacement satisfied ⇒ original satisfied.
                if qs.iter().any(satisfied) {
                    prop_assert!(satisfied(mq), "replacement satisfied but original not");
                }
            }
        }
    }
}

#[test]
fn canonical_forms_are_stable() {
    // Regression guard: canonicalization is idempotent.
    let q = parse_query("? :- e(A,B), e(B,C), e(C,A).").unwrap();
    assert_eq!(q.canonical(), q.canonical().canonical());
}
