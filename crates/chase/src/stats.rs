//! Observability for chase runs.
//!
//! Every [`run`](crate::engine::chase) fills a [`ChaseStats`] with one
//! [`RoundStats`] per completed (or attempted) round: how many triggers
//! were enumerated, how much raw matcher work was done, what the round
//! produced, and how long it took. The bench harness serializes these
//! counters to `BENCH_chase.json` so the repo's perf trajectory is
//! recorded as data, not anecdotes.

use std::time::Duration;

/// Counters for a single chase round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// The round number (1-based; round 0 is the input instance).
    pub round: usize,
    /// Complete body matches enumerated (trigger candidates passed to the
    /// head-application stage, before fact dedup).
    pub triggers: u64,
    /// Candidate facts / domain terms scanned by the matcher while
    /// extending partial assignments — the engine's raw work measure.
    pub candidates: u64,
    /// Dom-variable sweep joins actually invoked: `(dom atom, new term)`
    /// pairs that passed the locality filter.
    pub dom_sweeps: u64,
    /// Sweep pairs skipped by the dom-sweep locality index (the term does
    /// not occur in the delta at every position the rest-plan needs).
    pub dom_pruned: u64,
    /// Facts newly added by this round.
    pub facts_added: usize,
    /// Distinct terms that first entered the active domain this round.
    pub terms_added: usize,
    /// Wall time spent enumerating triggers (the phase that runs on the
    /// executor's worker pool).
    pub enum_wall: Duration,
    /// Wall time spent merging task outputs in submission order and
    /// applying the round's insertions.
    pub merge_wall: Duration,
    /// Total wall time of the round (enumeration + merge + bookkeeping).
    pub wall: Duration,
}

/// Per-run chase statistics: one entry per round, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Worker threads the round tasks were scheduled on (1 = sequential).
    pub threads: usize,
    /// Per-round counters. The final entry may describe a round that added
    /// nothing (the fixpoint probe).
    pub rounds: Vec<RoundStats>,
    /// High-water mark of the instance's fact count over the run (sourced
    /// from `StorageStats`; equals the final fact count, since the chase
    /// only appends).
    pub peak_facts: usize,
    /// Logical bytes of the final instance's fact log (see
    /// `qr_syntax::StorageStats::bytes_facts`). Deterministic across
    /// platforms and thread counts, so `bench_diff` gates on it.
    pub bytes_facts: usize,
    /// Logical bytes of the final instance's join indexes.
    pub bytes_index: usize,
    /// Logical bytes of the final instance's interned tuple arena.
    pub bytes_tuples: usize,
}

impl ChaseStats {
    /// Total triggers enumerated across all rounds.
    pub fn triggers(&self) -> u64 {
        self.rounds.iter().map(|r| r.triggers).sum()
    }

    /// Total matcher candidates scanned across all rounds.
    pub fn candidates(&self) -> u64 {
        self.rounds.iter().map(|r| r.candidates).sum()
    }

    /// Total dom-variable sweeps invoked across all rounds.
    pub fn dom_sweeps(&self) -> u64 {
        self.rounds.iter().map(|r| r.dom_sweeps).sum()
    }

    /// Total dom-variable sweeps pruned by the locality index.
    pub fn dom_pruned(&self) -> u64 {
        self.rounds.iter().map(|r| r.dom_pruned).sum()
    }

    /// Total facts added by rule applications (excludes the input).
    pub fn facts_added(&self) -> usize {
        self.rounds.iter().map(|r| r.facts_added).sum()
    }

    /// Total fresh terms introduced by rule applications.
    pub fn terms_added(&self) -> usize {
        self.rounds.iter().map(|r| r.terms_added).sum()
    }

    /// Total wall time across all rounds.
    pub fn wall(&self) -> Duration {
        self.rounds.iter().map(|r| r.wall).sum()
    }

    /// Total trigger-enumeration wall time across all rounds.
    pub fn enum_wall(&self) -> Duration {
        self.rounds.iter().map(|r| r.enum_wall).sum()
    }

    /// Total merge/apply wall time across all rounds.
    pub fn merge_wall(&self) -> Duration {
        self.rounds.iter().map(|r| r.merge_wall).sum()
    }

    /// Total measured fact-store bytes of the final instance
    /// (`bytes_facts + bytes_index + bytes_tuples`).
    pub fn bytes_total(&self) -> usize {
        self.bytes_facts + self.bytes_index + self.bytes_tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_rounds() {
        let stats = ChaseStats {
            threads: 1,
            rounds: vec![
                RoundStats {
                    round: 1,
                    triggers: 3,
                    candidates: 10,
                    dom_sweeps: 2,
                    dom_pruned: 1,
                    facts_added: 2,
                    terms_added: 1,
                    enum_wall: Duration::from_micros(3),
                    merge_wall: Duration::from_micros(1),
                    wall: Duration::from_micros(5),
                },
                RoundStats {
                    round: 2,
                    triggers: 4,
                    candidates: 20,
                    dom_sweeps: 1,
                    dom_pruned: 0,
                    facts_added: 0,
                    terms_added: 0,
                    enum_wall: Duration::from_micros(4),
                    merge_wall: Duration::from_micros(2),
                    wall: Duration::from_micros(7),
                },
            ],
            peak_facts: 6,
            bytes_facts: 48,
            bytes_index: 100,
            bytes_tuples: 52,
        };
        assert_eq!(stats.triggers(), 7);
        assert_eq!(stats.candidates(), 30);
        assert_eq!(stats.dom_sweeps(), 3);
        assert_eq!(stats.dom_pruned(), 1);
        assert_eq!(stats.facts_added(), 2);
        assert_eq!(stats.terms_added(), 1);
        assert_eq!(stats.enum_wall(), Duration::from_micros(7));
        assert_eq!(stats.merge_wall(), Duration::from_micros(3));
        assert_eq!(stats.wall(), Duration::from_micros(12));
        assert_eq!(stats.bytes_total(), 200);
    }
}
