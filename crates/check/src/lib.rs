//! `qr-check`: an independent, linear-time checker for the certificates
//! the engines emit — the untrusted-prover / trusted-verifier split.
//!
//! The rewriting engine and the chase both *search*: piece unifiers,
//! cores, containments, join plans. Their certificates record the
//! witnesses that search found, and this crate replays them with zero
//! search:
//!
//! * [`check_rewrite`] re-derives every accepted disjunct from the input
//!   query φ by applying each recorded piece unifier
//!   ([`qr_rewrite::apply_piece_unifier`] — pure union-find over the
//!   recorded atom pairs) and validating the recorded core maps one hash
//!   probe per atom.
//! * [`check_chase`] re-derives every chased fact from strictly earlier
//!   facts by re-unifying recorded triggers and re-applying the
//!   Skolemized head ([`qr_chase::SkolemizedRule::apply_with_frontier`]).
//! * [`check_frontier`] gates the sharded chase's frontier exchange: a
//!   peer shard's exported facts are appended to the local base and
//!   their certificate bundle replayed before any of them is absorbed.
//!
//! Neither touches a `HomKernel`, so no drift-gated counter moves.
//! Failures are structured and located ([`CheckError`]); the versioned
//! byte formats ([`codec`]) let bundles travel like `QRIN` checkpoints.
//! [`CheckReport`] aggregates a replay session for the harness's
//! `--check` mode.

pub mod chase;
pub mod codec;
pub mod error;
pub mod rewrite;

pub use chase::{check_chase, check_frontier};
pub use codec::{
    decode_chase_certs, decode_rewrite_certs, encode_chase_certs, encode_rewrite_certs, QRCC_MAGIC,
    QRRC_MAGIC,
};
pub use error::{CheckError, CheckErrorKind};
pub use rewrite::check_rewrite;

use std::fmt;

/// One recorded failure of a replay session: which workload, and either
/// a located decode error or a located certificate rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckFailure {
    /// Workload label the failure occurred in.
    pub label: String,
    /// The located error, rendered (`"certificate 7: ..."` or
    /// `"bad magic at byte 0"`).
    pub error: String,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.label, self.error)
    }
}

/// Aggregate of one certification session (the harness's `--check`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Rewriting certificates replayed successfully.
    pub rewrite_certs: usize,
    /// Chase certificates replayed successfully.
    pub chase_certs: usize,
    /// Total encoded size of every bundle replayed, in bytes.
    pub cert_bytes: usize,
    /// Every rejection, with its workload and location. Empty on a
    /// fully certified session.
    pub failures: Vec<CheckFailure>,
}

impl CheckReport {
    /// An empty report.
    pub fn new() -> CheckReport {
        CheckReport::default()
    }

    /// Total certificates replayed successfully.
    pub fn certs(&self) -> usize {
        self.rewrite_certs + self.chase_certs
    }

    /// `true` iff every certificate of the session replayed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Records a failure under `label`.
    pub fn fail(&mut self, label: &str, error: impl fmt::Display) {
        self.failures.push(CheckFailure {
            label: label.to_owned(),
            error: error.to_string(),
        });
    }
}
