//! Prints every experiment table of DESIGN.md (E1-E12), streaming each as
//! it completes.
//!
//! Usage: `cargo run -p qr-bench --release --bin harness [--json]
//! [--threads N] [--serve] [--list] [e01 e07 serve-mixed ...]`
//!
//! With no experiment arguments all experiments run in order. With
//! `--json`, per-experiment wall times plus the chase engine's per-round
//! counters (the E11 workloads re-run under [`qr_chase::ChaseStats`]) are
//! written to `BENCH_chase.json`, and the rewrite engine's per-window
//! counters and wall splits (saturation fixtures + T_d marked-query runs
//! under [`qr_rewrite::RewriteStats`], plus a deterministic `hom`
//! microbench workload; every run also carries the homomorphism kernel's
//! cache counters, schema `qr-bench/rewrite-v3`) to `BENCH_rewrite.json`,
//! both in the current directory. `--threads N` sizes the worker pool the parallel
//! engines run on: the count is plumbed into the [`Executor`] explicitly
//! (the `QR_THREADS` env var is only read as a default, never written).
//! Thread count never changes any counter or table value — only wall
//! times. `--serve` replays the pinned serving workloads through the
//! `qr-serve` engine and prints a per-workload cache summary; with
//! `--json` the runs are also written to `BENCH_serve.json` (schema
//! `qr-bench/serve-v2`). Individual serve workloads can be selected by
//! listing their ids (`serve-mixed`, `serve-churn`) — naming one implies
//! `--serve`. `--check` certifies every pinned rewrite fixture and the
//! E11 chase workload through `qr-check` (engine → codec → linear
//! replay, zero homomorphism searches) and prints a per-workload
//! summary; with `--json` the runs are written to `BENCH_check.json`
//! (schema `qr-bench/check-v1`). `--incr` (or the `chase-incr` id)
//! measures the pinned incremental-maintenance workloads — write batches
//! absorbed by `qr_chase::IncrementalChase` on the E11-scale TC
//! instances, against a full-re-chase baseline — and, with `--json`,
//! records them in `BENCH_chase.json`'s `incr_runs` array. `--shard` (or
//! a bulk workload id: `bulk-tc`, `bulk-shallow`, `bulk-bridge`) chases
//! the bulk-instance workloads through `qr_chase::chase_sharded` on
//! pinned 1-thread (monolithic) and 4-thread (sharded) pools and, with
//! `--json`, records the speedup pairs in `BENCH_chase.json`'s
//! `shard_runs` array (schema `qr-bench/chase-v5`). `--list` prints the
//! available experiment and workload ids and exits. Unknown options and
//! unknown ids are rejected (a misspelled `--thread 4` used to silently
//! run everything single-threaded as two never-matching experiment
//! filters).

use qr_bench::experiments;
use qr_bench::report::{self, ExperimentTiming};
use qr_exec::Executor;

fn usage() -> ! {
    eprintln!(
        "usage: harness [--json] [--threads N] [--serve] [--check] [--incr] [--shard] [--list] [ID ...]\n\
         \n\
         options:\n\
         \x20 --json       also write BENCH_chase.json, BENCH_rewrite.json\n\
         \x20              (BENCH_serve.json / BENCH_check.json when those modes run)\n\
         \x20 --threads N  size the worker pool (default: QR_THREADS or all cores)\n\
         \x20 --serve      replay the pinned serving workloads (qr-serve)\n\
         \x20 --check      certify the pinned workloads' certificates (qr-check)\n\
         \x20 --incr       measure the incremental chase-maintenance workloads\n\
         \x20 --shard      chase the bulk workloads monolithic-vs-sharded (pinned 1/4-thread pools)\n\
         \x20 --list       print available experiment and workload ids\n\
         \n\
         IDs select experiments (e01 ...), serve workloads (serve-mixed,\n\
         serve-churn; naming one implies --serve) and/or bulk workloads\n\
         (bulk-tc, bulk-shallow, bulk-bridge; naming one implies --shard);\n\
         the chase-incr id implies --incr; with no IDs, all experiments\n\
         run in order"
    );
    std::process::exit(2);
}

fn main() {
    let known_ids: Vec<&str> = experiments::all().iter().map(|(id, _)| *id).collect();
    let known_serve = qr_bench::serve_workloads::workload_labels();
    let known_bulk = qr_bench::bulk_workloads::workload_labels();
    let mut filters: Vec<String> = Vec::new();
    let mut serve_filters: Vec<String> = Vec::new();
    let mut bulk_filters: Vec<String> = Vec::new();
    let mut json = false;
    let mut serve = false;
    let mut check = false;
    let mut incr = false;
    let mut shard = false;
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let lower = arg.to_ascii_lowercase();
        match lower.as_str() {
            "--json" => json = true,
            "--serve" => serve = true,
            "--check" => check = true,
            "--incr" => incr = true,
            "--shard" => shard = true,
            "--list" => {
                for id in &known_ids {
                    println!("{id}");
                }
                for id in &known_serve {
                    println!("{id}");
                }
                println!("chase-incr");
                for id in &known_bulk {
                    println!("{id}");
                }
                return;
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("harness: --threads requires a positive integer");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            "--help" | "-h" => usage(),
            opt if opt.starts_with('-') => {
                eprintln!("harness: unknown option '{arg}'");
                usage();
            }
            id => {
                if known_ids.contains(&id) {
                    filters.push(lower);
                } else if known_serve.contains(&id) {
                    serve = true;
                    serve_filters.push(lower);
                } else if id == "chase-incr" {
                    incr = true;
                } else if known_bulk.contains(&id) {
                    shard = true;
                    bulk_filters.push(lower);
                } else {
                    eprintln!("harness: unknown id '{arg}' (try --list)");
                    std::process::exit(2);
                }
            }
        }
    }
    // The explicit flag wins; the env var is a read-only default.
    let exec = match threads {
        Some(n) => Executor::with_threads(n),
        None => Executor::from_env(),
    };
    eprintln!("worker pool: {} thread(s)", exec.threads());

    // Serve-/check-/incr-/shard-only invocations (their flags or ids
    // without experiment ids) skip the experiment tables and their JSON
    // dumps entirely.
    let run_experiments = !filters.is_empty() || (!serve && !check && !incr && !shard);

    let mut timings: Vec<ExperimentTiming> = Vec::new();
    if run_experiments {
        for (id, build) in experiments::all() {
            if !filters.is_empty() && !filters.iter().any(|f| f == id) {
                continue;
            }
            let t0 = std::time::Instant::now();
            let table = build(&exec);
            let wall = t0.elapsed();
            println!("{table}   [{id} total {wall:?}]\n");
            timings.push(ExperimentTiming {
                id: id.to_owned(),
                wall_ms: wall.as_secs_f64() * 1e3,
            });
        }
    }

    let incr_runs = if incr {
        let runs = qr_bench::incr_workloads::stats_runs(&exec);
        for r in &runs {
            let c = &r.counters;
            println!(
                "{}: {} batches in {:.1} ms ({:.3} ms/batch amortized, full re-chase {:.3} ms) — \
                 {} seeded, {} truncated, {} re-chased, {} rederived facts, cone {}, \
                 candidates {} incr vs {} cold",
                r.workload,
                r.batches,
                r.wall_ms,
                r.batch_ms,
                r.rechase_ms,
                c.seeded_inserts,
                c.truncated_retracts,
                c.rechases,
                c.rederived_facts,
                c.cone_facts,
                r.candidates_incr,
                r.candidates_cold,
            );
        }
        runs
    } else {
        Vec::new()
    };

    let shard_runs = if shard {
        let runs = qr_bench::bulk_workloads::stats_runs(&bulk_filters);
        for r in &runs {
            println!(
                "{}: {} facts in {:.1} ms [{}] — {} components, {} shards, \
                 partition {:.1} ms / shard {:.1} ms / merge {:.1} ms, \
                 {} certs exchanged ({} checked, {} rejected, {} kernel searches)",
                r.workload,
                r.facts_out,
                r.wall_ms,
                r.mode,
                r.components,
                r.shards,
                r.partition_ms,
                r.shard_ms,
                r.merge_ms,
                r.certs_exchanged,
                r.certs_checked,
                r.certs_rejected,
                r.kernel_searches,
            );
        }
        runs
    } else {
        Vec::new()
    };

    if json && run_experiments {
        let runs = experiments::e11_chase_engine::stats_runs(&exec);
        let rendered = report::render_json(&timings, &runs, &incr_runs, &shard_runs);
        let path = "BENCH_chase.json";
        match std::fs::write(path, rendered) {
            Ok(()) => println!(
                "wrote {path} ({} chase runs, {} incr runs, {} shard runs)",
                runs.len(),
                incr_runs.len(),
                shard_runs.len()
            ),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        let rruns = qr_bench::rewrite_workloads::stats_runs(&exec);
        let rendered = report::render_rewrite_json(&rruns);
        let path = "BENCH_rewrite.json";
        match std::fs::write(path, rendered) {
            Ok(()) => println!("wrote {path} ({} rewrite runs)", rruns.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if serve {
        let sruns = qr_bench::serve_workloads::stats_runs(exec.threads(), &serve_filters);
        for r in &sruns {
            let c = &r.counters;
            println!(
                "{}: {} requests in {:.1} ms — {} hits / {} misses / {} evictions, \
                 {} answers, p50 {:.3} ms p95 {:.3} ms p99 {:.3} ms",
                r.workload,
                c.requests,
                r.wall_ms,
                c.hits,
                c.misses,
                c.evictions,
                c.answers_emitted,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
            );
            for s in &r.segments {
                println!(
                    "  segment {}: {} requests, {} hits, {} misses",
                    s.name, s.requests, s.hits, s.misses
                );
            }
        }
        if json {
            let rendered = report::render_serve_json(&sruns);
            let path = "BENCH_serve.json";
            match std::fs::write(path, rendered) {
                Ok(()) => println!("wrote {path} ({} serve runs)", sruns.len()),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    if check {
        let cruns = qr_bench::check_workloads::stats_runs(&exec);
        let mut failed = false;
        for r in &cruns {
            println!(
                "{} [{}]: {} certificates, {} bytes, {} failures in {:.1} ms",
                r.workload,
                r.kind,
                r.certs,
                r.cert_bytes,
                r.failures.len(),
                r.wall_ms,
            );
            for f in &r.failures {
                eprintln!("  FAILED: {f}");
                failed = true;
            }
        }
        if json {
            let rendered = report::render_check_json(&cruns);
            let path = "BENCH_check.json";
            match std::fs::write(path, rendered) {
                Ok(()) => println!("wrote {path} ({} check runs)", cruns.len()),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
