//! The paper's theory zoo and the instance/query families its arguments
//! use. Everything is built through the parser so the printed form of each
//! theory matches the paper.

use qr_syntax::{
    parse_instance, parse_query, parse_theory, ConjunctiveQuery, Instance, Symbol, TermId, Theory,
};

/// Example 1: `Human(y) ⇒ ∃z Mother(y,z)`; `Mother(x,y) ⇒ Human(y)`.
pub fn t_a() -> Theory {
    parse_theory(
        "human(Y) -> mother(Y, Z).\n\
         mother(X, Y) -> human(Y).",
    )
    .expect("t_a parses")
}

/// Exercise 12's `T_p`: `E(x,y) ⇒ ∃z E(y,z)` — BDD, not core-terminating.
pub fn t_p() -> Theory {
    parse_theory("e(X,Y) -> e(Y,Z).").expect("t_p parses")
}

/// Exercise 23: core-terminating but not all-instances-terminating.
pub fn ex23() -> Theory {
    parse_theory(
        "e(X,Y) -> e(Y,Z).\n\
         e(X,X1), e(X1,X2) -> e(X1,X1).",
    )
    .expect("ex23 parses")
}

/// A finite truncation of Example 28's infinite theory: rules
/// `E_i(x,y) ⇒ ∃z E_{i-1}(y,z)` for `1 ≤ i ≤ k`. The infinite union over
/// all `k` is BDD and FES but not UBDD; the truncations witness this as a
/// uniformity constant growing linearly with `k`.
pub fn ex28(k: usize) -> Theory {
    let mut src = String::new();
    for i in 1..=k {
        src.push_str(&format!("e{}(X,Y) -> e{}(Y,Z).\n", i, i - 1));
    }
    parse_theory(&src).expect("ex28 parses")
}

/// Example 39's sticky one-rule theory:
/// `E(x,y,y',t), R(x,t') ⇒ ∃y'' E(x,y',y'',t')` — BDD but not local.
pub fn ex39() -> Theory {
    parse_theory("e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).").expect("ex39 parses")
}

/// Example 41: `E(x,y,z), R(x,z) ⇒ R(y,z)` — bd-local but not BDD.
pub fn ex41() -> Theory {
    parse_theory("e(X,Y,Z), r(X,Z) -> r(Y,Z).").expect("ex41 parses")
}

/// Example 42's `T_c`: BDD but not bd-local.
pub fn t_c() -> Theory {
    parse_theory(
        "e(X,Y) -> r(X,Y,X1,Y1).\n\
         r(X,Y,X1,Y1), e(Y,Z) -> r(Y,Z,Y1,Z1).",
    )
    .expect("t_c parses")
}

/// Example 66: the pair of rules showing that ancestor sets of the
/// un-normalized theory can be unboundedly large.
pub fn ex66() -> Theory {
    parse_theory(
        "e(X,Y), r(Z,Y) -> e(Y,V).\n\
         e(X,Y), p(Z) -> r(Z,Y).",
    )
    .expect("ex66 parses")
}

/// Definition 45's `T_d`: the BDD theory that is not distancing. Rules
/// (loop), (pins — the unnamed `∀x true ⇒ ∃z,z' R(x,z), G(x,z')`), (grid).
pub fn t_d() -> Theory {
    parse_theory(
        "true -> r(X,X), g(X,X).\n\
         dom(X) -> r(X,Z), g(X,Z1).\n\
         r(X,X1), g(X,U), g(U,U1) -> r(U1,Z), g(X1,Z).",
    )
    .expect("t_d parses")
}

/// Section 12's `T_d^K` over `Σ_K = {I_K, …, I_1}`: (loop), K pins rules,
/// and the K−1 grid rules
/// `I_{i+1}(x,x'), I_i(x,u), I_i(u,u') ⇒ ∃z I_{i+1}(u',z), I_i(x',z)`.
///
/// `t_d_k(2)` is `T_d` with `I_2 = R`, `I_1 = G`.
pub fn t_d_k(k: usize) -> Theory {
    assert!(k >= 1, "T_d^K needs at least one relation");
    let mut src = String::new();
    // (loop): one element carrying self-loops of every colour.
    let loops: Vec<String> = (1..=k).map(|i| format!("i{i}(X,X)")).collect();
    src.push_str(&format!("true -> {}.\n", loops.join(", ")));
    // (pins): every element sprouts one edge of every colour.
    for i in 1..=k {
        src.push_str(&format!("dom(X) -> i{i}(X, Z).\n"));
    }
    // (grid_i).
    for i in 1..k {
        src.push_str(&format!(
            "i{hi}(X,X1), i{lo}(X,U), i{lo}(U,U1) -> i{hi}(U1,Z), i{lo}(X1,Z).\n",
            hi = i + 1,
            lo = i
        ));
    }
    parse_theory(&src).expect("t_d_k parses")
}

/// The green path `G^n(a_0, a_n)`: `n` `g`-edges over constants
/// `<prefix>0 … <prefix>n`. Returns the instance and the endpoints.
pub fn green_path(n: usize, prefix: &str) -> (Instance, TermId, TermId) {
    colour_path(n, prefix, "g")
}

/// A path of `n` edges of the given colour predicate (binary).
pub fn colour_path(n: usize, prefix: &str, colour: &str) -> (Instance, TermId, TermId) {
    assert!(n >= 1);
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("{colour}({prefix}{i}, {prefix}{}).\n", i + 1));
    }
    let inst = parse_instance(&src).expect("path parses");
    let a = TermId::constant(Symbol::intern(&format!("{prefix}0")));
    let b = TermId::constant(Symbol::intern(&format!("{prefix}{n}")));
    (inst, a, b)
}

/// The paper's query `φ_R^n(x,y) = ∃x',y' R^n(x,x'), R^n(y,y'), G(x',y')`
/// (Section 10). Answer variables are `(x, y)`.
pub fn phi_r_n(n: usize) -> ConjunctiveQuery {
    phi_n(n, "r", "g")
}

/// `φ^n` over arbitrary adjacent colour names (`hi` plays R, `lo` plays G).
pub fn phi_n(n: usize, hi: &str, lo: &str) -> ConjunctiveQuery {
    let mut atoms = Vec::new();
    for i in 0..n {
        atoms.push(format!("{hi}(X{i}, X{})", i + 1));
        atoms.push(format!("{hi}(Y{i}, Y{})", i + 1));
    }
    atoms.push(format!("{lo}(X{n}, Y{n})"));
    parse_query(&format!("?(X0, Y0) :- {}.", atoms.join(", "))).expect("phi_n parses")
}

/// The query `G^n(x,y)`: a green path of length `n` between the answer
/// variables — the paper's exponential rewriting disjunct (Theorem 5 B).
pub fn g_power_query(n: usize) -> ConjunctiveQuery {
    colour_path_query(n, "g")
}

/// A path query of `n` edges of one colour with endpoints as answers.
pub fn colour_path_query(n: usize, colour: &str) -> ConjunctiveQuery {
    assert!(n >= 1);
    let atoms: Vec<String> = (0..n)
        .map(|i| format!("{colour}(X{i}, X{})", i + 1))
        .collect();
    parse_query(&format!("?(X0, X{n}) :- {}.", atoms.join(", "))).expect("path query parses")
}

/// Example 42's cycle instance `D_n`: `E(a_1,a_2), …, E(a_n,a_1)`.
pub fn cycle(n: usize) -> Instance {
    let mut src = String::new();
    for i in 1..=n {
        let j = if i == n { 1 } else { i + 1 };
        src.push_str(&format!("e(a{i}, a{j}).\n"));
    }
    parse_instance(&src).expect("cycle parses")
}

/// Example 39's star instance: one `E`-atom plus `k` colours at vertex `a`.
pub fn star_39(k: usize) -> Instance {
    let mut src = String::from("e(a, b1, b2, c1).\n");
    for i in 1..=k {
        src.push_str(&format!("r(a, c{i}).\n"));
    }
    parse_instance(&src).expect("star parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_classes::{is_binary, is_connected, is_linear, is_sticky};

    #[test]
    fn zoo_shapes() {
        assert_eq!(t_a().len(), 2);
        assert!(is_linear(&t_a()) && is_binary(&t_a()));
        assert!(is_linear(&t_p()));
        assert_eq!(ex28(4).len(), 4);
        assert!(is_linear(&ex28(4)));
        assert!(is_sticky(&ex39()));
        assert!(!is_sticky(&ex41()));
        assert!(is_connected(&t_c()));
        assert_eq!(t_d().len(), 3);
        assert!(is_binary(&t_d()));
    }

    #[test]
    fn t_d_k_generalizes_t_d() {
        let t2 = t_d_k(2);
        // loop + 2 pins + 1 grid.
        assert_eq!(t2.len(), 4);
        assert_eq!(t_d_k(3).len(), 1 + 3 + 2);
        assert!(is_binary(&t_d_k(3)));
    }

    #[test]
    fn families() {
        let (p, a, b) = green_path(4, "a");
        assert_eq!(p.len(), 4);
        assert_ne!(a, b);
        assert_eq!(cycle(5).len(), 5);
        assert_eq!(star_39(3).len(), 4);
        assert_eq!(phi_r_n(2).size(), 5);
        assert_eq!(phi_r_n(2).answer_vars().len(), 2);
        assert_eq!(g_power_query(4).size(), 4);
    }
}
