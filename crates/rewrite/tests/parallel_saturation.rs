//! Determinism contract of parallel saturation: for every thread count,
//! `rewrite_with` must return exactly the sequential rewriting — the same
//! disjuncts (same renderings, in the same order), the same generation
//! count, depth, outcome, trace stream and per-window stats counters — on
//! randomized (theory, query) pairs covering both saturating and
//! budget-truncated runs, in both the pipelined and the barrier engine.

use qr_exec::Executor;
use qr_rewrite::{
    rewrite_with, rewrite_with_mode, rewrite_with_trace_on, RewriteBudget, RewriteStats,
    SaturationMode,
};
use qr_syntax::{parse_query, parse_theory};
use qr_testkit::check;

/// Piece-rewritable theories (no builtin bodies): bounded-derivation-depth
/// shapes, sticky shapes, and divergent Datalog to exercise truncation.
const THEORIES: [&str; 5] = [
    "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
    "e(X,Y) -> e(Y,Z).",
    "e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).",
    "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
    "e(X,Y), e(Y,Z) -> e(X,Z).",
];

const QUERIES: [&str; 4] = [
    "? :- e(A,B), e(B,C).",
    "?(A) :- e(A,B), e(B,C).",
    "? :- e(A,B).",
    "?(A) :- e(A,B).",
];

/// The deterministic slice of the stats: every per-window counter, walls
/// stripped.
#[allow(clippy::type_complexity)]
fn counter_rows(
    s: &RewriteStats,
) -> Vec<(
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
)> {
    s.windows
        .iter()
        .map(|w| {
            (
                w.window,
                w.items,
                w.merged,
                w.dead_skipped,
                w.generated,
                w.subsumption_hits,
                w.evictions,
                w.oversized,
                w.accepted,
                w.kept,
            )
        })
        .collect()
}

#[test]
fn parallel_saturation_equals_sequential_ucq() {
    check("parallel_saturation_equals_sequential_ucq", 25, |rng| {
        let theory = parse_theory(rng.pick::<&str>(&THEORIES)).unwrap();
        // Queries over predicates the theory may not mention still rewrite
        // (to themselves); arity mismatches are avoided by using binary
        // `e` queries only against binary-`e` theories.
        let query_src = if theory.render().contains("e(X,Y,Y1,T)") {
            "?(A,D) :- e(A,B,C,D)."
        } else {
            rng.pick::<&str>(&QUERIES)
        };
        let query = parse_query(query_src).unwrap();
        // Small budgets keep divergent theories cheap while still hitting
        // the truncation paths.
        let budget = RewriteBudget {
            max_queries: rng.range(4, 32),
            max_generated: rng.range(50, 400),
            max_atoms: rng.range(4, 10),
        };
        let mut seq_trace: Vec<(usize, String)> = Vec::new();
        let seq =
            rewrite_with_trace_on(&theory, &query, budget, &Executor::sequential(), |d, cq| {
                seq_trace.push((d, cq.render()))
            })
            .unwrap();
        let seq_renders: Vec<String> = seq.ucq.disjuncts().iter().map(|d| d.render()).collect();
        let seq_counters = counter_rows(&seq.stats);
        for threads in [2, 4] {
            let exec = Executor::with_threads(threads);
            let mut par_trace: Vec<(usize, String)> = Vec::new();
            let par = rewrite_with_trace_on(&theory, &query, budget, &exec, |d, cq| {
                par_trace.push((d, cq.render()))
            })
            .unwrap();
            let ctx = format!(
                "{threads} threads, theory {}, query {query_src}, budget {budget:?}",
                theory.render()
            );
            assert_eq!(par.outcome, seq.outcome, "outcome: {ctx}");
            assert_eq!(par.generated, seq.generated, "generated: {ctx}");
            assert_eq!(
                par.oversized_discarded, seq.oversized_discarded,
                "oversized: {ctx}"
            );
            assert_eq!(par.depth, seq.depth, "depth: {ctx}");
            let par_renders: Vec<String> = par.ucq.disjuncts().iter().map(|d| d.render()).collect();
            assert_eq!(par_renders, seq_renders, "saturated set: {ctx}");
            assert_eq!(par_trace, seq_trace, "trace stream: {ctx}");
            assert_eq!(counter_rows(&par.stats), seq_counters, "stats: {ctx}");
            // The barrier engine shares the merge core: same counters too.
            let barrier =
                rewrite_with_mode(&theory, &query, budget, &exec, SaturationMode::Barrier).unwrap();
            assert_eq!(barrier.outcome, seq.outcome, "barrier outcome: {ctx}");
            let barrier_renders: Vec<String> =
                barrier.ucq.disjuncts().iter().map(|d| d.render()).collect();
            assert_eq!(barrier_renders, seq_renders, "barrier set: {ctx}");
            assert_eq!(
                counter_rows(&barrier.stats),
                seq_counters,
                "barrier stats: {ctx}"
            );
        }
        // `rewrite_with` (the default pipelined entry point) agrees.
        let plain = rewrite_with(&theory, &query, budget, &Executor::with_threads(3)).unwrap();
        let plain_renders: Vec<String> = plain.ucq.disjuncts().iter().map(|d| d.render()).collect();
        assert_eq!(plain_renders, seq_renders, "rewrite_with @3");
    });
}
