//! Minimal aligned-text tables for the experiment harness.

use std::fmt;

/// A simple column-aligned table with a title and a "shape" note recording
/// what the paper predicts for the rows.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and title, e.g. `"E1  Fig. 1 / Thm 5B(i) — ..."`.
    pub title: String,
    /// The paper's predicted shape for this table.
    pub expectation: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title, expectation note and header.
    pub fn new(title: impl Into<String>, expectation: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            expectation: expectation.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells; must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}", self.title)?;
        writeln!(f, "   expected shape: {}", self.expectation)?;
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "   ")?;
            for (w, c) in widths.iter().zip(cells) {
                write!(f, "{c:<width$}  ", width = w)?;
            }
            writeln!(f)
        };
        render(&self.header, f)?;
        for row in &self.rows {
            render(row, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0 demo", "flat", &["n", "value"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["100".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("== E0 demo"));
        assert!(s.contains("n    value"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 0), "100");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("t", "e", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
