//! **E7 — Observation 31 / Exercise 12 / Theorem 3**: local theories (all
//! linear ones, all binary BDD ones) admit rewritings with disjuncts of
//! size **linear** in `|ψ|` — in stark contrast to `T_d` (E3). We sweep
//! query size for two linear binary theories and record `rs_T(ψ)`.

use std::time::Instant;

use qr_core::theories::{t_a, t_p};
use qr_rewrite::{rewrite, RewriteBudget};
use qr_syntax::{parse_query, ConjunctiveQuery, Theory};

use crate::Table;

/// Mother-chain query of size `k`: `?(X0) :- mother(X0,X1), …`.
pub fn mother_chain(k: usize) -> ConjunctiveQuery {
    let atoms: Vec<String> = (0..k)
        .map(|i| format!("mother(X{i}, X{})", i + 1))
        .collect();
    parse_query(&format!("?(X0) :- {}.", atoms.join(", "))).expect("chain parses")
}

/// Edge-chain query of size `k` anchored at the answer variable.
pub fn edge_chain(k: usize) -> ConjunctiveQuery {
    let atoms: Vec<String> = (0..k).map(|i| format!("e(X{i}, X{})", i + 1)).collect();
    parse_query(&format!("?(X0) :- {}.", atoms.join(", "))).expect("chain parses")
}

/// Edge-chain query of size `k` anchored at **both** ends: the rewriting
/// must preserve the chain between the answers, so `rs` grows linearly —
/// the largest rewritings a local theory can produce (Observation 31).
pub fn anchored_chain(k: usize) -> ConjunctiveQuery {
    let atoms: Vec<String> = (0..k).map(|i| format!("e(X{i}, X{})", i + 1)).collect();
    parse_query(&format!("?(X0, X{k}) :- {}.", atoms.join(", "))).expect("chain parses")
}

fn measure(theory: &Theory, q: &ConjunctiveQuery) -> (bool, usize, usize) {
    let r = rewrite(theory, q, RewriteBudget::default()).expect("no builtin bodies");
    (r.is_complete(), r.ucq.len(), r.rs())
}

/// The E7 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E7  Obs. 31 / Thm 3 — linear (local) theories have linear-size rewritings",
        "complete rewritings; rs(ψ) ≤ l·|ψ| with small l (compare E3's exponential rs)",
        &[
            "theory",
            "|ψ|",
            "complete",
            "disjuncts",
            "rs",
            "rs/|ψ|",
            "ms",
        ],
    );
    for k in 1..=6usize {
        let t0 = Instant::now();
        let (complete, n, rs) = measure(&t_a(), &mother_chain(k));
        t.row(vec![
            "T_a (Ex. 1)".into(),
            k.to_string(),
            complete.to_string(),
            n.to_string(),
            rs.to_string(),
            format!("{:.2}", rs as f64 / k as f64),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    for k in 1..=6usize {
        let t0 = Instant::now();
        let (complete, n, rs) = measure(&t_p(), &edge_chain(k));
        t.row(vec![
            "T_p (Ex. 12)".into(),
            k.to_string(),
            complete.to_string(),
            n.to_string(),
            rs.to_string(),
            format!("{:.2}", rs as f64 / k as f64),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    for k in 1..=6usize {
        let t0 = Instant::now();
        let (complete, n, rs) = measure(&t_p(), &anchored_chain(k));
        t.row(vec![
            "T_p, both ends anchored".into(),
            k.to_string(),
            complete.to_string(),
            n.to_string(),
            rs.to_string(),
            format!("{:.2}", rs as f64 / k as f64),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_chase::provenance::minimal_support;
    use qr_chase::ChaseBudget;
    use qr_syntax::parse_instance;

    #[test]
    fn anchored_chain_rs_is_linear_not_constant() {
        // With both endpoints anchored, the rewriting keeps the chain:
        // rs = k exactly (the linear worst case of Observation 31).
        for k in [2usize, 4] {
            let (complete, _, rs) = measure(&t_p(), &anchored_chain(k));
            assert!(complete);
            assert_eq!(rs, k);
        }
    }

    #[test]
    fn rewritings_complete_and_linear() {
        for k in 1..=4usize {
            let (complete, _, rs) = measure(&t_a(), &mother_chain(k));
            assert!(complete);
            assert!(rs <= k, "rs {rs} exceeds linear bound at k={k}");
            let (complete, _, rs) = measure(&t_p(), &edge_chain(k));
            assert!(complete);
            assert!(rs <= k);
        }
    }

    #[test]
    fn locality_of_t_p_in_supports() {
        // Exercise 12's hint, support-style: every chase fact of T_p comes
        // from one input edge.
        let db = parse_instance("e(a,b). e(c,d). e(b,c).").unwrap();
        let q = parse_query("? :- e(b, X), e(X, Y).").unwrap();
        let s = minimal_support(&t_p(), &db, &q, &[], ChaseBudget::rounds(4)).unwrap();
        assert!(s.len() <= 2);
    }
}
