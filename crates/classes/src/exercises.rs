//! Empirical probes for the paper's Exercises 13 and 17 and
//! Observation 29 — the "BDD is local" intuitions.
//!
//! * **Exercise 13**: for a connected BDD theory there is `d` such that
//!   input constants at chase-distance 1 are at distance ≤ `d` already in
//!   `D`. [`edge_contraction_bound`] measures the largest such `d` on one
//!   instance; it stays flat for BDD theories and grows for unbounded
//!   Datalog (e.g. transitive closure).
//! * **Exercise 17**: facts about existing terms are produced with a
//!   constant delay `n_at` after their terms appear.
//!   [`production_delay_bound`] measures the largest observed delay.
//! * **Observation 29**: `Ch(T,D) ⊨ ψ(ā)` iff some subset `F ⊆ D` with
//!   `|F| ≤ rs_T(ψ)` already entails it. [`observation29_check`] verifies
//!   this against a complete rewriting.

use qr_chase::engine::{chase, ChaseBudget};
use qr_chase::provenance::minimal_support;
use qr_syntax::gaifman;
use qr_syntax::{ConjunctiveQuery, Instance, TermId, Theory};

/// Exercise 13's quantity: the largest `dist_D(c, c')` over pairs of input
/// constants that co-occur in some fact of `Ch_depth(T,D)` (i.e. are at
/// chase-distance 1). `None` when no derived fact joins two input
/// constants that are disconnected in `D`; `Some(d)` otherwise.
pub fn edge_contraction_bound(theory: &Theory, db: &Instance, depth: usize) -> Option<usize> {
    let ch = chase(theory, db, ChaseBudget::rounds(depth));
    let g_db = gaifman::of_instance(db);
    let mut max_d: Option<usize> = None;
    for f in ch.instance.iter() {
        let input_terms: Vec<TermId> = f.terms().filter(|t| db.contains_term(*t)).collect();
        for i in 0..input_terms.len() {
            for j in (i + 1)..input_terms.len() {
                if input_terms[i] == input_terms[j] {
                    continue;
                }
                match g_db.distance(input_terms[i], input_terms[j]) {
                    Some(d) => {
                        if max_d.is_none_or(|m| d > m) {
                            max_d = Some(d);
                        }
                    }
                    None => return None, // chase joined disconnected constants
                }
            }
        }
    }
    max_d
}

/// Exercise 17's quantity: the largest delay `round(α) − appears(terms(α))`
/// over derived facts, where `appears` is the round in which the last term
/// of `α` entered the chase domain. A BDD theory keeps this constant
/// (`n_at`); unbounded Datalog does not.
pub fn production_delay_bound(theory: &Theory, db: &Instance, depth: usize) -> usize {
    let ch = chase(theory, db, ChaseBudget::rounds(depth));
    let first_round = ch.first_round_of_terms();
    let mut max_delay = 0usize;
    for (i, f) in ch.instance.iter().enumerate() {
        if ch.round_of[i] == 0 {
            continue;
        }
        let appear = f.terms().map(|t| first_round[&t]).max().unwrap_or(0);
        max_delay = max_delay.max(ch.round_of[i].saturating_sub(appear));
    }
    max_delay
}

/// Observation 29, checked on one (theory, query, instance, answer): if
/// the bounded chase entails `ψ(ā)`, some subset of `D` of size at most
/// `rs` entails it too (witnessed by the greedy minimal support).
pub fn observation29_check(
    theory: &Theory,
    query: &ConjunctiveQuery,
    rs: usize,
    db: &Instance,
    answer: &[TermId],
    depth: usize,
) -> bool {
    let budget = ChaseBudget::rounds(depth);
    match minimal_support(theory, db, query, answer, budget) {
        None => true, // not entailed: nothing to check
        Some(support) => support.len() <= rs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_instance, parse_query, parse_theory};

    fn path(n: usize) -> Instance {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("e(n{i}, n{}).\n", i + 1));
        }
        parse_instance(&src).unwrap()
    }

    #[test]
    fn exercise_13_bdd_theory_is_flat() {
        // T_p (BDD): derived facts never join two input constants, so the
        // contraction bound is that of D's own facts (1).
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        assert_eq!(edge_contraction_bound(&t, &path(4), 5), Some(1));
        assert_eq!(edge_contraction_bound(&t, &path(8), 5), Some(1));
    }

    #[test]
    fn exercise_13_transitive_closure_grows() {
        // TC (not BDD): e(n0, nk) joins constants at distance k in D.
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let b4 = edge_contraction_bound(&t, &path(4), 6).unwrap();
        let b8 = edge_contraction_bound(&t, &path(8), 6).unwrap();
        assert_eq!(b4, 4);
        assert_eq!(b8, 8);
    }

    #[test]
    fn exercise_17_bdd_delay_is_constant() {
        // T_a: every fact about a term appears within 1 round of the term.
        let t = parse_theory("human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).").unwrap();
        let db = parse_instance("human(abel).").unwrap();
        assert!(production_delay_bound(&t, &db, 8) <= 1);
    }

    #[test]
    fn exercise_17_datalog_delay_grows() {
        // TC: all terms exist at round 0, but e(n0, n_k) appears at round
        // ~log2(k): the delay grows with the instance.
        let t = parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let d4 = production_delay_bound(&t, &path(4), 8);
        let d16 = production_delay_bound(&t, &path(16), 8);
        assert!(d16 > d4, "{d4} vs {d16}");
    }

    #[test]
    fn observation_29_for_t_p() {
        // rs of any chain query under T_p is 1 (E7): single-fact supports.
        let t = parse_theory("e(X,Y) -> e(Y,Z).").unwrap();
        let q = parse_query("? :- e(A,B), e(B,C), e(C,D).").unwrap();
        assert!(observation29_check(&t, &q, 1, &path(5), &[], 6));
    }
}
