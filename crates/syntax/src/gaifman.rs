//! Gaifman graphs of instances and queries (Section 2 of the paper).
//!
//! The vertices are the active-domain terms (resp. the variables); two
//! vertices are adjacent iff they co-occur in a fact (resp. an atom).
//! Distances, degrees and connectivity over this graph underpin the paper's
//! notions of *connected* theories/queries, *bounded-degree* instances
//! (Definition 40) and *distancing* theories (Definition 43).

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

use crate::instance::Instance;
use crate::query::{ConjunctiveQuery, QAtom, Var};
use crate::term::TermId;

/// An undirected graph over copyable node ids.
#[derive(Clone, Debug, Default)]
pub struct Graph<N: Eq + Hash + Copy> {
    adj: HashMap<N, HashSet<N>>,
}

impl<N: Eq + Hash + Copy> Graph<N> {
    /// Creates an empty graph.
    pub fn new() -> Graph<N> {
        Graph {
            adj: HashMap::new(),
        }
    }

    /// Ensures `n` is a vertex.
    pub fn add_node(&mut self, n: N) {
        self.adj.entry(n).or_default();
    }

    /// Adds an undirected edge (self-loops are ignored).
    pub fn add_edge(&mut self, a: N, b: N) {
        if a == b {
            self.add_node(a);
            return;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Degree of `n` (0 if absent).
    pub fn degree(&self, n: N) -> usize {
        self.adj.get(&n).map_or(0, HashSet::len)
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.adj.values().map(HashSet::len).max().unwrap_or(0)
    }

    /// BFS distance between two vertices; `None` if disconnected or absent.
    pub fn distance(&self, from: N, to: N) -> Option<usize> {
        if !self.adj.contains_key(&from) || !self.adj.contains_key(&to) {
            return None;
        }
        if from == to {
            return Some(0);
        }
        let mut dist: HashMap<N, usize> = HashMap::new();
        dist.insert(from, 0);
        let mut queue = VecDeque::from([from]);
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            for &v in &self.adj[&u] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    if v == to {
                        return Some(d + 1);
                    }
                    e.insert(d + 1);
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// All distances from `from` (BFS layers).
    pub fn distances_from(&self, from: N) -> HashMap<N, usize> {
        let mut dist: HashMap<N, usize> = HashMap::new();
        if !self.adj.contains_key(&from) {
            return dist;
        }
        dist.insert(from, 0);
        let mut queue = VecDeque::from([from]);
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            for &v in &self.adj[&u] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(d + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Connected components (each a vector of vertices).
    pub fn components(&self) -> Vec<Vec<N>> {
        let mut seen: HashSet<N> = HashSet::new();
        let mut out = Vec::new();
        for &start in self.adj.keys() {
            if seen.contains(&start) {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen.insert(start);
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &v in &self.adj[&u] {
                    if seen.insert(v) {
                        queue.push_back(v);
                    }
                }
            }
            out.push(comp);
        }
        out
    }

    /// `true` iff the graph has at most one connected component.
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }
}

/// The Gaifman graph of an instance.
pub fn of_instance(inst: &Instance) -> Graph<TermId> {
    let mut g = Graph::new();
    for t in inst.domain() {
        g.add_node(*t);
    }
    for f in inst.iter() {
        let ts: Vec<TermId> = f.terms().collect();
        for i in 0..ts.len() {
            for j in (i + 1)..ts.len() {
                g.add_edge(ts[i], ts[j]);
            }
        }
    }
    g
}

/// Connected components of an instance's Gaifman graph, computed directly
/// off the columnar store — union-find over the active domain driven by
/// the per-predicate postings, no intermediate [`Graph`] (whose `HashMap`
/// adjacency costs a clique of edge insertions per fact and returns
/// components in nondeterministic order).
///
/// Deterministic output: components are ordered by the first occurrence
/// (in [`Instance::domain`] order) of any member, and each component lists
/// its terms in domain order. The chase sharder keys its partition on this
/// order, so shard assignment is reproducible across runs and platforms.
pub fn components_of(inst: &Instance) -> Vec<Vec<TermId>> {
    let domain = inst.domain();
    let index: HashMap<TermId, usize> = domain.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut parent: Vec<usize> = (0..domain.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for pred in inst.preds() {
        for &fi in inst.with_pred(pred) {
            let args = inst.fact(fi as usize).args;
            let Some(&first) = args.first() else {
                continue; // nullary facts touch no terms
            };
            let mut a = find(&mut parent, index[&first]);
            for &t in &args[1..] {
                let b = find(&mut parent, index[&t]);
                if a != b {
                    // Union by smaller root index keeps roots canonical
                    // (the first-occurring term of a component is its root).
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi] = lo;
                    a = lo;
                }
            }
        }
    }
    let mut comp_id: Vec<usize> = vec![usize::MAX; domain.len()];
    let mut out: Vec<Vec<TermId>> = Vec::new();
    for (i, &term) in domain.iter().enumerate() {
        let root = find(&mut parent, i);
        if comp_id[root] == usize::MAX {
            comp_id[root] = out.len();
            out.push(Vec::new());
        }
        out[comp_id[root]].push(term);
    }
    out
}

/// The Gaifman graph of a set of atoms (over variables).
pub fn of_atoms(atoms: &[QAtom]) -> Graph<Var> {
    let mut g = Graph::new();
    for a in atoms {
        let vs: Vec<Var> = a.vars().collect();
        for &v in &vs {
            g.add_node(v);
        }
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                g.add_edge(vs[i], vs[j]);
            }
        }
    }
    g
}

/// The Gaifman graph of a conjunctive query.
pub fn of_query(q: &ConjunctiveQuery) -> Graph<Var> {
    of_atoms(q.atoms())
}

/// `true` iff the atom set is connected (empty sets are connected).
pub fn atoms_connected(atoms: &[QAtom]) -> bool {
    of_atoms(atoms).is_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_instance, parse_query};

    #[test]
    fn path_distances() {
        let i = parse_instance("e(a,b). e(b,c). e(c,d).").unwrap();
        let g = of_instance(&i);
        let a = TermId::constant("a".into());
        let d = TermId::constant("d".into());
        assert_eq!(g.distance(a, d), Some(3));
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_instance() {
        let i = parse_instance("e(a,b). e(c,d).").unwrap();
        let g = of_instance(&i);
        assert_eq!(g.components().len(), 2);
        let a = TermId::constant("a".into());
        let c = TermId::constant("c".into());
        assert_eq!(g.distance(a, c), None);
    }

    #[test]
    fn query_connectivity() {
        let q = parse_query("? :- e(X,Y), e(Y,Z).").unwrap();
        assert!(of_query(&q).is_connected());
        let q2 = parse_query("? :- e(X,Y), e(U,V).").unwrap();
        assert!(!of_query(&q2).is_connected());
    }

    #[test]
    fn higher_arity_cliques() {
        let i = parse_instance("t(a,b,c).").unwrap();
        let g = of_instance(&i);
        let a = TermId::constant("a".into());
        let c = TermId::constant("c".into());
        assert_eq!(g.distance(a, c), Some(1));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn self_loops_ignored() {
        let i = parse_instance("e(a,a).").unwrap();
        let g = of_instance(&i);
        assert_eq!(g.degree(TermId::constant("a".into())), 0);
        assert_eq!(g.node_count(), 1);
    }

    /// Canonicalizes a component list for set comparison: members sorted by
    /// arena index, components sorted by their smallest member.
    fn canon(mut comps: Vec<Vec<TermId>>) -> Vec<Vec<TermId>> {
        for c in &mut comps {
            c.sort_by_key(|t| t.index());
        }
        comps.sort_by_key(|c| c.first().map(|t| t.index()));
        comps
    }

    #[test]
    fn components_of_matches_graph_path() {
        for src in [
            "",
            "e(a,b). e(b,c). e(c,d).",
            "e(a,b). e(c,d). t(x,y,z). p(q). e(d,x).",
            "e(a,a). p(b). e(b,c). marker().",
            "t(a,b,c). t(c,d,e). e(f,g). p(h). p(a).",
        ] {
            let inst = parse_instance(src).unwrap();
            let direct = components_of(&inst);
            let via_graph = of_instance(&inst).components();
            assert_eq!(canon(direct.clone()), canon(via_graph), "instance {src:?}");
            // Deterministic order: components by first occurrence in the
            // domain, members in domain order.
            let domain = inst.domain();
            let pos: HashMap<TermId, usize> =
                domain.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            for c in &direct {
                assert!(c.windows(2).all(|w| pos[&w[0]] < pos[&w[1]]), "{src:?}");
            }
            let firsts: Vec<usize> = direct.iter().map(|c| pos[&c[0]]).collect();
            assert!(firsts.windows(2).all(|w| w[0] < w[1]), "{src:?}");
            let total: usize = direct.iter().map(Vec::len).sum();
            assert_eq!(total, domain.len(), "{src:?}");
        }
    }
}
