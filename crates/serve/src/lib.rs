//! A long-lived, transport-independent query-answering engine.
//!
//! The paper's deployment story (Theorem 1): rewrite a CQ against a theory
//! **once**, and answering reduces to plain UCQ evaluation over the base
//! instance — no chase at query time. This crate turns that into a service
//! loop: an [`Engine`] holds registered theories with their shared
//! instances, accepts a stream of [`CqRequest`]s, and answers each through
//! a **rewriting cache** keyed by the homomorphism kernel's structural
//! freeze key ([`qr_hom::CanonicalKey`]). Isomorphic user queries — same
//! shape up to variable renaming, answer positions fixed — share one key,
//! so they hit one cached UCQ; the cached UCQ executes as compiled
//! [`qr_hom::JoinPlan`]s over the `qr-storage`-backed instance.
//!
//! Everything user-observable is deterministic: responses are delivered in
//! submission order at any worker-pool width (cold rewrites overlap hot
//! cache-hit answering via [`qr_exec::Executor::pipeline_ordered`], but all
//! cache decisions happen at the merge point in submission order), and each
//! response renders to a stable trace line, so whole request/response
//! streams pin byte-identically in replay files — see [`replay`].
//!
//! Cache pressure is handled by an LRU policy over freeze keys with a
//! logical byte budget (fixed per-element sizes, `StorageStats`-style, so
//! the accounting itself is deterministic). Evicted rewritings are simply
//! recomputed on the next miss; soundness never depends on residency.
//!
//! Base instances are **writable**: a [`FactWrite`] request inserts or
//! retracts base facts for one tenant, applied at the same ordered merge
//! point as every cache decision, so later queries in the stream see the
//! post-write instance regardless of worker-pool width. Rewritings are
//! pure functions of (theory, query) — never of the data — so a write
//! cannot make a cached rewriting unsound; the engine still drops the
//! written tenant's cache entries so residency stays a function of the
//! request stream alone, keeping counters and traces pinned.
//!
//! The worker-pool width comes exclusively from [`EngineConfig::threads`]
//! (plumbed into [`qr_exec::Executor::with_threads`]); the crate never
//! reads the `QR_THREADS` environment variable.

pub mod cache;
pub mod engine;
pub mod replay;
pub mod stats;

pub use cache::CacheEntry;
pub use engine::{
    CqRequest, Engine, EngineConfig, FactWrite, Request, Response, ResponseStatus, Tier,
};
pub use qr_chase::WriteBatch;
pub use replay::{parse_replay, render_replay, render_trace, ReplayError, ReplayErrorKind};
pub use stats::{ServeCounters, ServeStats};
