//! Syntactic recognizers for the TGD classes surveyed in the paper's
//! introduction: linear, guarded (and frontier variants), sticky, Datalog,
//! binary signatures, connectivity, detached rules, and weak acyclicity
//! (a sufficient condition for all-instances termination).
//!
//! Rules with builtin (`true`/`dom`) bodies fall outside these fragments;
//! every recognizer returns `false` for theories containing them (except
//! [`is_binary`] and [`is_connected`], which are purely structural).

use std::collections::{HashMap, HashSet};

use qr_syntax::gaifman;
use qr_syntax::query::Var;
use qr_syntax::{Pred, Theory};

fn in_fragment(theory: &Theory) -> bool {
    !theory.has_builtin_bodies()
}

/// Linear: at most one body atom per rule.
pub fn is_linear(theory: &Theory) -> bool {
    in_fragment(theory) && theory.rules().iter().all(|r| r.body().len() <= 1)
}

/// Datalog: no existential variables.
pub fn is_datalog(theory: &Theory) -> bool {
    in_fragment(theory) && theory.rules().iter().all(|r| r.is_datalog())
}

/// Guarded: some body atom contains all body variables of the rule.
pub fn is_guarded(theory: &Theory) -> bool {
    in_fragment(theory)
        && theory.rules().iter().all(|r| {
            let body_vars: HashSet<Var> = r.body_vars().into_iter().collect();
            r.body()
                .iter()
                .any(|a| body_vars.iter().all(|v| a.mentions(*v)))
        })
}

/// Frontier-guarded: some body atom contains all frontier variables.
pub fn is_frontier_guarded(theory: &Theory) -> bool {
    in_fragment(theory)
        && theory.rules().iter().all(|r| {
            let fr = r.frontier();
            r.body().iter().any(|a| fr.iter().all(|v| a.mentions(*v)))
        })
}

/// Frontier-one: at most one frontier variable per rule (the property the
/// proof of the paper's Theorem 3 actually uses, footnote 37).
pub fn is_frontier_one(theory: &Theory) -> bool {
    in_fragment(theory) && theory.rules().iter().all(|r| r.frontier().len() <= 1)
}

/// Binary signature: every predicate has arity ≤ 2.
pub fn is_binary(theory: &Theory) -> bool {
    theory.max_arity() <= 2
}

/// Connected: every rule body has a connected Gaifman graph (Section 2).
/// Empty bodies are trivially connected.
pub fn is_connected(theory: &Theory) -> bool {
    theory
        .rules()
        .iter()
        .all(|r| gaifman::atoms_connected(r.body()))
}

/// `true` iff some rule has an empty frontier (Section 13's *detached*
/// rules).
pub fn has_detached_rules(theory: &Theory) -> bool {
    theory.rules().iter().any(|r| r.is_detached())
}

/// Sticky (Calì–Gottlob–Pieris): the position-marking procedure terminates
/// with no rule in which a variable occurring at a marked body position
/// occurs more than once in that body.
pub fn is_sticky(theory: &Theory) -> bool {
    if !in_fragment(theory) {
        return false;
    }
    // Marked positions: (predicate, argument index).
    let mut marked: HashSet<(Pred, usize)> = HashSet::new();

    // Initial step: body positions of variables that do not reach the head.
    for r in theory.rules() {
        let head_vars: HashSet<Var> = r.head_vars().into_iter().collect();
        for a in r.body() {
            for (i, t) in a.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    if !head_vars.contains(&v) {
                        marked.insert((a.pred, i));
                    }
                }
            }
        }
    }

    // Propagation: if a frontier variable appears in the head at a marked
    // position, mark all its body positions.
    loop {
        let mut changed = false;
        for r in theory.rules() {
            for v in r.frontier() {
                let head_hits_marked = r.head().iter().any(|a| {
                    a.args
                        .iter()
                        .enumerate()
                        .any(|(i, t)| t.as_var() == Some(v) && marked.contains(&(a.pred, i)))
                });
                if !head_hits_marked {
                    continue;
                }
                for a in r.body() {
                    for (i, t) in a.args.iter().enumerate() {
                        if t.as_var() == Some(v) && marked.insert((a.pred, i)) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Sticky condition: a variable at a marked body position occurs at most
    // once in the body.
    theory.rules().iter().all(|r| {
        let mut occurrences: HashMap<Var, usize> = HashMap::new();
        for a in r.body() {
            for v in a.vars() {
                *occurrences.entry(v).or_insert(0) += 1;
            }
        }
        r.body().iter().all(|a| {
            a.args.iter().enumerate().all(|(i, t)| match t.as_var() {
                Some(v) if marked.contains(&(a.pred, i)) => occurrences[&v] <= 1,
                _ => true,
            })
        })
    })
}

/// Weak acyclicity: no cycle through a "special" edge in the position
/// dependency graph — a classical sufficient condition for all-instances
/// termination of the Skolem chase.
pub fn is_weakly_acyclic(theory: &Theory) -> bool {
    if !in_fragment(theory) {
        return false;
    }
    // Collect positions and edges.
    let mut positions: HashSet<(Pred, usize)> = HashSet::new();
    for r in theory.rules() {
        for a in r.body().iter().chain(r.head()) {
            for i in 0..a.args.len() {
                positions.insert((a.pred, i));
            }
        }
    }
    let index: HashMap<(Pred, usize), usize> =
        positions.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let n = index.len();
    // adjacency: edge -> (target, special?)
    let mut edges: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    for r in theory.rules() {
        let existential: HashSet<Var> = r.existential_vars().into_iter().collect();
        for v in r.frontier() {
            let mut body_positions: Vec<usize> = Vec::new();
            for a in r.body() {
                for (i, t) in a.args.iter().enumerate() {
                    if t.as_var() == Some(v) {
                        body_positions.push(index[&(a.pred, i)]);
                    }
                }
            }
            for a in r.head() {
                for (i, t) in a.args.iter().enumerate() {
                    match t.as_var() {
                        Some(u) if u == v => {
                            for &bp in &body_positions {
                                edges[bp].push((index[&(a.pred, i)], false));
                            }
                        }
                        Some(u) if existential.contains(&u) => {
                            for &bp in &body_positions {
                                edges[bp].push((index[&(a.pred, i)], true));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    // No cycle through a special edge: for each special edge (u,v), v must
    // not reach u.
    let reaches = |from: usize, to: usize| -> bool {
        let mut seen = vec![false; n];
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            for &(y, _) in &edges[x] {
                stack.push(y);
            }
        }
        false
    };
    for (u, out_edges) in edges.iter().enumerate().take(n) {
        for &(v, special) in out_edges {
            if special && reaches(v, u) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::parse_theory;

    fn t(src: &str) -> Theory {
        parse_theory(src).unwrap()
    }

    #[test]
    fn linear_and_datalog() {
        assert!(is_linear(&t("e(X,Y) -> e(Y,Z).")));
        assert!(!is_linear(&t("e(X,Y), e(Y,Z) -> e(X,Z).")));
        assert!(is_datalog(&t("e(X,Y), e(Y,Z) -> e(X,Z).")));
        assert!(!is_datalog(&t("e(X,Y) -> e(Y,Z).")));
    }

    #[test]
    fn guarded_variants() {
        let g = t("r(X,Y,Z), p(X) -> q(Y).");
        assert!(is_guarded(&g));
        assert!(is_frontier_guarded(&g));
        let fg = t("e(X,Y), e(Y,Z) -> f(X,Z).");
        assert!(!is_guarded(&fg)); // no atom holds X,Y,Z
        assert!(!is_frontier_guarded(&fg)); // no atom holds both X and Z
        let f1 = t("e(X,Y), e(Y,Z) -> f(Y,W).");
        assert!(is_frontier_one(&f1));
        assert!(is_frontier_guarded(&f1));
    }

    #[test]
    fn binary_and_connected() {
        assert!(is_binary(&t("e(X,Y) -> e(Y,Z).")));
        assert!(!is_binary(&t("e(X,Y,Z) -> e(Y,Z,W).")));
        assert!(is_connected(&t("e(X,Y), e(Y,Z) -> f(X,Z).")));
        assert!(!is_connected(&t("e(X,Y), p(U) -> f(X,U).")));
        // Builtin bodies are structurally connected.
        assert!(is_connected(&t("true -> r(X,X).")));
    }

    #[test]
    fn detached() {
        assert!(has_detached_rules(&t("p(X) -> q(Y).")));
        assert!(!has_detached_rules(&t("p(X) -> q(X,Y).")));
    }

    #[test]
    fn sticky_example_39_is_sticky() {
        // Example 39 is presented by the paper as a sticky theory.
        let s = t("e(X,Y,Y1,T), r(X,T1) -> e(X,Y1,Y2,T1).");
        assert!(is_sticky(&s));
    }

    #[test]
    fn transitivity_is_not_sticky() {
        // The classical non-sticky example: the join variable Y is marked
        // and occurs twice.
        let tr = t("e(X,Y), e(Y,Z) -> e(X,Z).");
        assert!(!is_sticky(&tr));
    }

    #[test]
    fn example_41_not_sticky_join() {
        // Example 41: E(x,y,z), R(x,z) -> R(y,z). The join variable x does
        // not reach the head, so its positions are marked and x occurs
        // twice: not sticky.
        let e41 = t("e(X,Y,Z), r(X,Z) -> r(Y,Z).");
        assert!(!is_sticky(&e41));
    }

    #[test]
    fn linear_is_sticky() {
        // Linear theories are trivially sticky (no joins).
        assert!(is_sticky(&t("e(X,Y) -> e(Y,Z).")));
        assert!(is_sticky(&t(
            "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y)."
        )));
    }

    #[test]
    fn weak_acyclicity() {
        // Transitive closure: terminating (no existentials at all).
        assert!(is_weakly_acyclic(&t("e(X,Y), e(Y,Z) -> e(X,Z).")));
        // E(x,y) -> ∃z E(y,z): special edge into a position reaching back.
        assert!(!is_weakly_acyclic(&t("e(X,Y) -> e(Y,Z).")));
        // p -> q chain with existential but no recursion: acyclic.
        assert!(is_weakly_acyclic(&t("p(X) -> q(X,Y).")));
    }

    #[test]
    fn builtin_bodies_excluded() {
        let td = t("true -> r(X,X).\ndom(X) -> r(X,Z).");
        assert!(!is_linear(&td));
        assert!(!is_sticky(&td));
        assert!(!is_weakly_acyclic(&td));
        assert!(is_binary(&td));
    }
}
