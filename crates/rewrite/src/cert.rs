//! Rewriting certificates: replayable piece-unification derivations.
//!
//! A certified saturation run records, per accepted disjunct, a
//! [`RewriteCert`]: which queued query it was rewritten from (`parent`
//! node), which rule, and exactly which `(query atom, head atom)` pairs
//! the piece unifier unified — plus the two answer-preserving variable
//! maps between the raw rewriting and the accepted (core-minimized,
//! canonically renamed) disjunct. `qr-check` replays the chain back to
//! the input query φ in linear time: apply each recorded unifier with
//! [`crate::unify::apply_piece_unifier`] (zero search) and verify the
//! recorded maps atom-by-atom (zero search, no `HomKernel`).
//!
//! Emission is kept off the fast path: the engine only records when a
//! [`CertBuilder`] is supplied ([`crate::engine::rewrite_certified`]),
//! and the homomorphisms are found with the kernel-free
//! [`qr_hom::matcher::find_hom`], so certified and uncertified runs are
//! byte-identical in outputs and drift-gated counters.
//!
//! Certificates reference variables by index and constants by interned
//! [`qr_syntax::Symbol`]; replay is therefore *same-process* (the codec
//! in `qr-check` re-interns names, so encode → decode → replay works
//! within one process, which is what the harness's `--check` mode does).

use std::collections::HashMap;

use qr_hom::matcher::find_hom;
use qr_syntax::term::TermData;
use qr_syntax::{ConjunctiveQuery, QTerm, TermId, Var};

/// One recorded piece-rewriting step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteStep {
    /// Node index (into [`RewriteCertBundle::certs`]) of the queued query
    /// this disjunct was generated from. Always less than the node's own
    /// index, so the chain grounds out at the seed (node 0).
    pub parent: u32,
    /// Rule index into the theory's rule list.
    pub rule: u32,
    /// The piece unifier: `(query atom index, head atom index)` pairs in
    /// ascending query-atom order, exactly as
    /// [`crate::unify::PieceUnifier::unified`] recorded them.
    pub unified: Vec<(u32, u32)>,
}

/// The certificate of one accepted disjunct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteCert {
    /// `None` for node 0 (the seed — the core of the input query φ);
    /// `Some` for every disjunct accepted from a piece rewriting.
    pub step: Option<RewriteStep>,
    /// The accepted disjunct, verbatim (the exact query the engine queued
    /// and kept — for surviving nodes, the exact UCQ disjunct).
    pub query: ConjunctiveQuery,
    /// Answer-preserving variable map from the *raw* rewriting (the
    /// replayed [`crate::unify::apply_piece_unifier`] result; for node 0,
    /// from φ) onto `query`: index `i` holds the image of raw variable
    /// `i`. Verifying it takes one hash lookup per atom.
    pub to_query: Vec<QTerm>,
    /// The converse map, from `query`'s variables onto the raw rewriting
    /// (for node 0, onto φ). Together the two maps witness
    /// answer-preserving hom-equivalence — acceptance only ever replaces
    /// a raw rewriting by its core.
    pub from_query: Vec<QTerm>,
}

/// Every certificate of one saturation run, in acceptance (trace) order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteCertBundle {
    /// Node 0 is the seed; node `i`'s parent is always `< i`.
    pub certs: Vec<RewriteCert>,
    /// For each disjunct of the returned UCQ (in disjunct order), the
    /// node whose `query` is that disjunct, verbatim.
    pub final_disjuncts: Vec<u32>,
}

impl RewriteCertBundle {
    /// Total certificate count (one per accepted disjunct, plus the seed).
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// `true` iff no certificates were recorded.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }
}

/// Accumulates certificates during a saturation run. Constructed by
/// [`crate::engine::rewrite_certified`]; the engine calls the recording
/// hooks at seed time and at every acceptance, on the merge thread.
#[derive(Default)]
pub struct CertBuilder {
    certs: Vec<RewriteCert>,
    finals: Vec<u32>,
}

impl CertBuilder {
    /// An empty builder.
    pub fn new() -> CertBuilder {
        CertBuilder::default()
    }

    /// Records node 0: the seed disjunct and its hom-equivalence with the
    /// input query φ.
    pub(crate) fn record_seed(&mut self, phi: &ConjunctiveQuery, seed: &ConjunctiveQuery) -> u32 {
        debug_assert!(self.certs.is_empty(), "seed is node 0");
        self.push_cert(None, phi, seed)
    }

    /// Records one accepted disjunct: the step that generated its raw
    /// form and the raw ↔ accepted equivalence maps. Returns the node id.
    pub(crate) fn record_accept(
        &mut self,
        parent: u32,
        rule: u32,
        unified: &[(u32, u32)],
        raw: &ConjunctiveQuery,
        accepted: &ConjunctiveQuery,
    ) -> u32 {
        self.push_cert(
            Some(RewriteStep {
                parent,
                rule,
                unified: unified.to_vec(),
            }),
            raw,
            accepted,
        )
    }

    /// Records which nodes' queries survived as the final UCQ disjuncts.
    pub(crate) fn set_finals(&mut self, finals: Vec<u32>) {
        self.finals = finals;
    }

    /// Consumes the builder into the finished bundle.
    pub fn into_bundle(self) -> RewriteCertBundle {
        RewriteCertBundle {
            certs: self.certs,
            final_disjuncts: self.finals,
        }
    }

    fn push_cert(
        &mut self,
        step: Option<RewriteStep>,
        raw: &ConjunctiveQuery,
        accepted: &ConjunctiveQuery,
    ) -> u32 {
        let node = self.certs.len() as u32;
        self.certs.push(RewriteCert {
            step,
            query: accepted.clone(),
            to_query: hom_onto(raw, accepted),
            from_query: hom_onto(accepted, raw),
        });
        node
    }
}

/// Finds an answer-preserving homomorphism `src → dst` as a per-variable
/// map (index `i` = image of `src` variable `i`). Kernel-free: freezes
/// `dst` locally and runs the plain matcher, so no drift-gated counter
/// moves. Panics if none exists — the engine only pairs hom-equivalent
/// queries (a raw rewriting and its core).
fn hom_onto(src: &ConjunctiveQuery, dst: &ConjunctiveQuery) -> Vec<QTerm> {
    let (inst, var_map) = dst.freeze();
    let fixed: Vec<(Var, TermId)> = src
        .answer_vars()
        .iter()
        .zip(dst.answer_vars())
        .map(|(&sv, &dv)| (sv, var_map[&dv]))
        .collect();
    let asg = find_hom(src.atoms(), src.var_names().len(), &inst, &fixed)
        .expect("accepted disjuncts are hom-equivalent to their raw form");
    let inv: HashMap<TermId, Var> = var_map.iter().map(|(&v, &t)| (t, v)).collect();
    asg.into_iter()
        .map(|slot| {
            let t = slot.expect("canonical queries mention every variable");
            match inv.get(&t) {
                Some(&v) => QTerm::Var(v),
                None => match t.data() {
                    TermData::Const(c) => QTerm::Const(c),
                    TermData::Skolem(..) => unreachable!("frozen instances are skolem-free"),
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_syntax::{parse_query, QAtom};

    fn apply(h: &[QTerm], t: &QTerm) -> QTerm {
        match t {
            QTerm::Var(v) => h[v.index()],
            QTerm::Const(c) => QTerm::Const(*c),
        }
    }

    /// `h` maps every atom of `src` into an atom of `dst` and answers
    /// positionally — the exact check `qr-check` replays.
    fn is_hom(src: &ConjunctiveQuery, dst: &ConjunctiveQuery, h: &[QTerm]) {
        assert_eq!(h.len(), src.var_names().len());
        for (k, &v) in src.answer_vars().iter().enumerate() {
            assert_eq!(h[v.index()], QTerm::Var(dst.answer_vars()[k]));
        }
        for a in src.atoms() {
            let image = QAtom::new(
                a.pred,
                a.args.iter().map(|t| apply(h, t)).collect::<Vec<_>>(),
            );
            assert!(
                dst.atoms().contains(&image),
                "atom image {image:?} missing from target"
            );
        }
    }

    #[test]
    fn hom_onto_witnesses_equivalence_both_ways() {
        // A redundant 2-path and its core (one edge from A).
        let raw = parse_query("?(A) :- e(A,B), e(A,C).").unwrap();
        let core = parse_query("?(A) :- e(A,B).").unwrap();
        let to = hom_onto(&raw, &core);
        is_hom(&raw, &core, &to);
        let from = hom_onto(&core, &raw);
        is_hom(&core, &raw, &from);
    }

    #[test]
    fn hom_onto_maps_variables_to_constants() {
        let raw = parse_query("? :- e(a,B), e(a,C).").unwrap();
        let core = parse_query("? :- e(a,B).").unwrap();
        let to = hom_onto(&raw, &core);
        is_hom(&raw, &core, &to);
    }
}
