//! Experiment harness: one module per experiment of `DESIGN.md` (E1–E12).
//!
//! Each module exposes `table(&Executor) -> Table`; the `harness` binary
//! runs them all and prints the rows that `EXPERIMENTS.md` records.
//! Parameters are chosen so the full run finishes in minutes on a laptop;
//! each module's doc comment states the paper anchor and the expected
//! shape.

pub mod bulk_workloads;
pub mod check_workloads;
pub mod experiments;
pub mod incr_workloads;
pub mod microbench;
pub mod report;
pub mod rewrite_workloads;
pub mod serve_workloads;
pub mod table;

pub use table::Table;
