//! The serve loop: pipelined request answering over the rewriting cache.
//!
//! A batch of requests flows through [`qr_exec::Executor::pipeline_ordered`]:
//! workers *prepare* requests speculatively (parse, compute the freeze key,
//! and — when the key is not resident — run the cold rewrite and compile
//! its plans), while the caller thread *finishes* them strictly in
//! submission order: the authoritative cache lookup, LRU bookkeeping,
//! eviction, plan execution, and counter updates all happen at the merge
//! point. A speculative rewrite that loses the race to an earlier
//! isomorphic request is discarded; a missing one (the entry was resident
//! at prepare time but evicted before merge) is recomputed inline. Either
//! way the installed entry is the same value — rewriting is a pure
//! function of (theory, query) — so responses, traces, and every counter
//! in [`ServeCounters`](crate::ServeCounters) are identical at any
//! worker-pool width.

use std::collections::HashSet;
use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qr_chase::WriteBatch;
use qr_exec::Executor;
use qr_hom::{canonical_key, MatchCounters};
use qr_rewrite::{rewrite_with_mode, RewriteBudget, SaturationMode};
use qr_syntax::{parse_query, ConjunctiveQuery, Instance, TermId, Theory};

use crate::cache::{CacheEntry, CacheKey, RewriteCache};
use crate::replay::ReplayError;
use crate::stats::ServeStats;

/// Engine configuration. The worker-pool width is explicit — the crate
/// never reads `QR_THREADS`; size the pool where you construct the config.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker-pool width, plumbed into [`Executor::with_threads`].
    /// 1 runs the whole pipeline inline on the calling thread.
    pub threads: usize,
    /// LRU byte budget of the rewriting cache (logical bytes, see
    /// [`crate::cache`]).
    pub cache_bytes: usize,
    /// Budget handed to every cold rewrite.
    pub rewrite_budget: RewriteBudget,
    /// Per-request cap on emitted answer tuples; 0 means unlimited.
    pub answer_limit: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            threads: 1,
            cache_bytes: 1 << 20,
            rewrite_budget: RewriteBudget::default(),
            answer_limit: 0,
        }
    }
}

/// One query request: a registered theory id plus CQ text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CqRequest {
    /// Which registered theory to answer against.
    pub theory: String,
    /// The conjunctive query, in the repo's text format.
    pub query: String,
}

/// A base-fact write against one tenant's instance. Writes ride the same
/// ordered request stream as queries: the batch is applied (and the
/// tenant's cache entries invalidated) at the merge point, in submission
/// order, so every later query sees the updated instance and every counter
/// stays deterministic at any worker-pool width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FactWrite {
    /// Which registered theory's instance to write.
    pub theory: String,
    /// The facts to insert and retract.
    pub batch: WriteBatch,
}

/// One item of a mixed request stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Answer a conjunctive query.
    Query(CqRequest),
    /// Apply a base-fact write batch.
    Write(FactWrite),
}

impl From<CqRequest> for Request {
    fn from(r: CqRequest) -> Request {
        Request::Query(r)
    }
}

impl From<FactWrite> for Request {
    fn from(w: FactWrite) -> Request {
        Request::Write(w)
    }
}

impl Request {
    /// The theory id the request names.
    pub fn theory(&self) -> &str {
        match self {
            Request::Query(q) => &q.theory,
            Request::Write(w) => &w.theory,
        }
    }
}

/// Which cache tier answered the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// The freeze key was resident: cached UCQ + compiled plans reused.
    Hit,
    /// Cold path: the rewriting was computed (or recomputed) and cached.
    Miss,
}

/// Per-request outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseStatus {
    /// The request was answered through a rewriting.
    Answered {
        /// Hit or miss on the rewriting cache.
        tier: Tier,
        /// `true` iff the rewriting saturated; `false` means the answers
        /// are sound but possibly incomplete (budget-capped rewriting).
        complete: bool,
        /// `true` iff the answer enumeration stopped at
        /// [`EngineConfig::answer_limit`].
        truncated: bool,
        /// Disjuncts in the executed UCQ.
        disjuncts: usize,
        /// Matcher scan work for this request (deterministic).
        candidates: u64,
        /// Answer tuples, rendered (constants by name), in deterministic
        /// enumeration order. A boolean query answers with one empty
        /// tuple for *true* and none for *false*.
        answers: Vec<Vec<String>>,
    },
    /// A fact write was applied to the tenant's instance.
    Written {
        /// Base facts actually added (inserts already present are not
        /// counted).
        inserted: u64,
        /// Base facts actually removed (absent retractions are not
        /// counted).
        retracted: u64,
        /// Rewriting-cache entries dropped by the per-tenant
        /// invalidation; 0 when the write changed nothing.
        invalidated: u64,
    },
    /// The request never reached a rewriting.
    Rejected {
        /// Why (unknown theory, parse error).
        reason: String,
    },
}

/// One answered (or rejected) request.
#[derive(Clone, Debug)]
pub struct Response {
    /// Engine-lifetime sequence number (submission order).
    pub seq: u64,
    /// The theory id the request named.
    pub theory: String,
    /// Outcome.
    pub status: ResponseStatus,
    /// Merge-side service time. Wall-clock: excluded from trace lines and
    /// never drift-gated.
    pub wall: Duration,
}

impl Response {
    /// `true` iff the request was answered from the rewriting cache.
    pub fn is_hit(&self) -> bool {
        matches!(
            self.status,
            ResponseStatus::Answered {
                tier: Tier::Hit,
                ..
            }
        )
    }

    /// Renders the deterministic trace record for this response — stable
    /// bytes at any thread count, pinned by the replay tests.
    pub fn trace_line(&self) -> String {
        match &self.status {
            ResponseStatus::Rejected { reason } => {
                format!("[{}] {} rejected: {}", self.seq, self.theory, reason)
            }
            ResponseStatus::Written {
                inserted,
                retracted,
                invalidated,
            } => format!(
                "[{}] {} write inserted={} retracted={} invalidated={}",
                self.seq, self.theory, inserted, retracted, invalidated
            ),
            ResponseStatus::Answered {
                tier,
                complete,
                truncated,
                disjuncts,
                candidates,
                answers,
            } => {
                let tier = match tier {
                    Tier::Hit => "hit",
                    Tier::Miss => "miss",
                };
                let mut line = format!(
                    "[{}] {} ok tier={} complete={} disjuncts={} candidates={} answers={}",
                    self.seq,
                    self.theory,
                    tier,
                    complete,
                    disjuncts,
                    candidates,
                    answers.len()
                );
                for tuple in answers {
                    line.push_str(" (");
                    line.push_str(&tuple.join(","));
                    line.push(')');
                }
                if *truncated {
                    line.push_str(" truncated");
                }
                line
            }
        }
    }
}

struct Tenant {
    id: String,
    theory: Theory,
    /// The live base instance. Workers never touch it — queries read it
    /// and writes replace it only at the ordered merge point — but the
    /// pipeline shares `&Tenant` across threads, so interior mutability
    /// keeps the borrow checker honest.
    data: Mutex<Instance>,
}

/// The long-lived answering engine. See the crate docs for the design.
pub struct Engine {
    config: EngineConfig,
    exec: Executor,
    tenants: Vec<Tenant>,
    cache: Mutex<RewriteCache>,
    stats: ServeStats,
    next_seq: u64,
}

/// Worker-side result: everything computable without touching engine
/// state authoritatively.
enum Prepared {
    /// A query: parse outcome plus any speculative rewrite.
    Query(Result<ParsedReq, String>),
    /// A write: nothing to precompute — application is merge-only.
    Write,
}

struct ParsedReq {
    tenant: usize,
    query: ConjunctiveQuery,
    key: CacheKey,
    speculative: Option<Arc<CacheEntry>>,
}

impl Engine {
    /// Builds an engine with an explicitly-sized worker pool.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            exec: Executor::with_threads(config.threads.max(1)),
            cache: Mutex::new(RewriteCache::new(config.cache_bytes)),
            config,
            tenants: Vec::new(),
            stats: ServeStats::default(),
            next_seq: 0,
        }
    }

    /// Registers a theory and its shared instance from text.
    pub fn register(&mut self, id: &str, theory_src: &str, data_src: &str) -> Result<(), String> {
        let theory = qr_syntax::parse_theory(theory_src).map_err(|e| format!("theory: {e}"))?;
        let data = qr_syntax::parse_instance(data_src).map_err(|e| format!("instance: {e}"))?;
        self.register_parsed(id, theory, data)
    }

    /// Registers an already-parsed theory and instance under `id`.
    ///
    /// Theories with builtin (`dom`) bodies are rejected here so that the
    /// serve path's rewrites cannot fail.
    pub fn register_parsed(
        &mut self,
        id: &str,
        theory: Theory,
        data: Instance,
    ) -> Result<(), String> {
        if self.tenants.iter().any(|t| t.id == id) {
            return Err(format!("theory '{id}' is already registered"));
        }
        if theory.has_builtin_bodies() {
            return Err(format!("theory '{id}' has builtin-predicate bodies"));
        }
        self.tenants.push(Tenant {
            id: id.to_owned(),
            theory,
            data: Mutex::new(data),
        });
        Ok(())
    }

    /// Registered theory ids, in registration order.
    pub fn theories(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.id.as_str()).collect()
    }

    /// The engine's worker-pool width.
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Resident rewriting-cache entries.
    pub fn cached_rewritings(&self) -> usize {
        self.cache.lock().expect("serve cache poisoned").len()
    }

    /// Answers a single query inline.
    pub fn submit(&mut self, request: CqRequest) -> Response {
        self.run(vec![request])
            .pop()
            .expect("one request yields one response")
    }

    /// Applies a single fact write inline.
    pub fn submit_write(&mut self, write: FactWrite) -> Response {
        self.run_requests(vec![Request::Write(write)])
            .pop()
            .expect("one request yields one response")
    }

    /// Answers a query-only batch (see [`Engine::run_requests`]).
    pub fn run(&mut self, requests: Vec<CqRequest>) -> Vec<Response> {
        self.run_requests(requests.into_iter().map(Request::Query).collect())
    }

    /// Runs a mixed batch of queries and fact writes: cold rewrites run
    /// speculatively on the pool while the caller thread finishes
    /// responses strictly in submission order. Writes mutate tenant
    /// instances only at that merge point, so a query later in the batch
    /// always executes against the post-write instance — and speculative
    /// rewrites started before the write stay valid, because a rewriting
    /// is a pure function of (theory, query), never of the data.
    pub fn run_requests(&mut self, requests: Vec<Request>) -> Vec<Response> {
        let first_seq = self.next_seq;
        self.next_seq += requests.len() as u64;
        let seeds: Vec<(u64, Request)> = requests
            .into_iter()
            .enumerate()
            .map(|(i, r)| (first_seq + i as u64, r))
            .collect();
        let mut responses: Vec<Response> = Vec::with_capacity(seeds.len());
        let exec = self.exec;
        let Engine {
            ref tenants,
            ref cache,
            ref config,
            ref mut stats,
            ..
        } = *self;
        exec.pipeline_ordered(
            seeds,
            |(_, req)| match req {
                Request::Query(q) => prepare(tenants, cache, config, q),
                Request::Write(_) => Prepared::Write,
            },
            |(seq, req), prep, _ctx| {
                responses.push(finish(tenants, cache, config, stats, seq, req, prep));
                ControlFlow::Continue(())
            },
        );
        responses
    }

    /// Parses a replay file (see [`crate::replay`]) and runs it.
    pub fn replay(&mut self, src: &str) -> Result<Vec<Response>, ReplayError> {
        Ok(self.run_requests(crate::replay::parse_replay(src)?))
    }

    /// Certifies the rewriting behind every answerable request of a
    /// replay stream: each distinct (tenant, freeze-key) pair — the same
    /// identity the serving cache uses — is re-derived once through the
    /// certificate-emitting engine entry point, round-tripped through the
    /// `QRRC` codec, and replayed by the independent checker
    /// ([`qr_check::check_rewrite`]). Requests that would be rejected
    /// (unknown theory, parse error) have no rewriting and are skipped.
    ///
    /// This runs entirely off the serving fast path: `&self`, a private
    /// sequential executor, no cache or counter traffic — so certified
    /// and uncertified serving stay byte-identical.
    pub fn certify_replay(&self, src: &str) -> Result<qr_check::CheckReport, ReplayError> {
        let requests = crate::replay::parse_replay(src)?;
        let mut report = qr_check::CheckReport::new();
        let mut seen: HashSet<CacheKey> = HashSet::new();
        // Fact writes never touch a rewriting (pure in (theory, query)),
        // so only the query lines have certificates to check.
        for req in requests.iter().filter_map(|r| match r {
            Request::Query(q) => Some(q),
            Request::Write(_) => None,
        }) {
            let Some(tenant) = self.tenants.iter().position(|t| t.id == req.theory) else {
                continue;
            };
            let Ok(query) = parse_query(&req.query) else {
                continue;
            };
            let key = CacheKey {
                tenant: tenant as u32,
                key: canonical_key(&query),
            };
            if !seen.insert(key) {
                continue;
            }
            let label = format!("{} {}", req.theory, req.query.trim());
            let theory = &self.tenants[tenant].theory;
            match qr_rewrite::rewrite_certified(
                theory,
                &query,
                self.config.rewrite_budget,
                &Executor::sequential(),
                SaturationMode::Pipelined,
            ) {
                Ok((r, bundle)) => {
                    let bytes = qr_check::encode_rewrite_certs(&bundle);
                    report.cert_bytes += bytes.len();
                    match qr_check::decode_rewrite_certs(&bytes) {
                        Ok(decoded) => {
                            match qr_check::check_rewrite(theory, &query, &r.ucq, &decoded) {
                                Ok(n) => report.rewrite_certs += n,
                                Err(e) => report.fail(&label, e),
                            }
                        }
                        Err(e) => report.fail(&label, e),
                    }
                }
                Err(e) => report.fail(&label, format!("rewrite failed: {e:?}")),
            }
        }
        Ok(report)
    }
}

/// Worker stage: parse, key, and — if the key is not resident — compute
/// the rewriting speculatively. Pure per-request work; no counters.
fn prepare(
    tenants: &[Tenant],
    cache: &Mutex<RewriteCache>,
    config: &EngineConfig,
    req: &CqRequest,
) -> Prepared {
    let parsed = (|| {
        let tenant = tenants
            .iter()
            .position(|t| t.id == req.theory)
            .ok_or_else(|| format!("unknown theory '{}'", req.theory))?;
        let query = parse_query(&req.query).map_err(|e| format!("parse error: {e}"))?;
        let key = CacheKey {
            tenant: tenant as u32,
            key: canonical_key(&query),
        };
        let resident = cache.lock().expect("serve cache poisoned").contains(&key);
        let speculative = if resident {
            None
        } else {
            Some(build_entry(&tenants[tenant].theory, &query, config))
        };
        Ok(ParsedReq {
            tenant,
            query,
            key,
            speculative,
        })
    })();
    Prepared::Query(parsed)
}

/// The cold path: rewrite and compile. Runs the saturation engine
/// sequentially — batch concurrency comes from pipelining across
/// requests, not from nesting pools inside a worker.
fn build_entry(
    theory: &Theory,
    query: &ConjunctiveQuery,
    config: &EngineConfig,
) -> Arc<CacheEntry> {
    let r = rewrite_with_mode(
        theory,
        query,
        config.rewrite_budget,
        &Executor::sequential(),
        SaturationMode::Pipelined,
    )
    .expect("builtin-body theories are rejected at registration");
    CacheEntry::from_rewriting(r)
}

/// Merge stage: authoritative cache decision, execution, counters. Runs on
/// the caller thread in submission order — the only place engine state
/// mutates.
fn finish(
    tenants: &[Tenant],
    cache: &Mutex<RewriteCache>,
    config: &EngineConfig,
    stats: &mut ServeStats,
    seq: u64,
    req: Request,
    prep: Prepared,
) -> Response {
    let t0 = Instant::now();
    stats.counters.requests += 1;
    let theory_id = req.theory().to_owned();
    let status = match (req, prep) {
        (Request::Write(w), _) => finish_write(tenants, cache, stats, &w),
        (Request::Query(_), Prepared::Write) => {
            unreachable!("queries prepare as Prepared::Query")
        }
        (Request::Query(_), Prepared::Query(Err(reason))) => {
            stats.counters.rejected += 1;
            ResponseStatus::Rejected { reason }
        }
        (Request::Query(_), Prepared::Query(Ok(p))) => {
            let mut c = cache.lock().expect("serve cache poisoned");
            let (entry, tier) = match c.get(&p.key) {
                Some(entry) => {
                    stats.counters.hits += 1;
                    stats.counters.plan_reuses += entry.plans.len() as u64;
                    (entry, Tier::Hit)
                }
                None => {
                    let entry = p.speculative.unwrap_or_else(|| {
                        // Resident at prepare time, evicted since: the
                        // rewrite is recomputed inline — same pure value.
                        build_entry(&tenants[p.tenant].theory, &p.query, config)
                    });
                    stats.counters.misses += 1;
                    stats.counters.plan_compiles += entry.plans.len() as u64;
                    stats.counters.rewrite_generated += entry.generated as u64;
                    stats.counters.evictions += c.insert(p.key, Arc::clone(&entry));
                    (entry, Tier::Miss)
                }
            };
            stats.counters.cache_bytes = c.bytes() as u64;
            stats.counters.peak_cache_bytes = c.peak_bytes() as u64;
            drop(c);
            let data = tenants[p.tenant].data.lock().expect("tenant data poisoned");
            let (answers, candidates, truncated) = execute(&entry, &data, config.answer_limit);
            drop(data);
            stats.counters.answered += 1;
            if !entry.complete {
                stats.counters.incomplete += 1;
            }
            if truncated {
                stats.counters.truncated += 1;
            }
            stats.counters.answers_emitted += answers.len() as u64;
            stats.counters.match_candidates += candidates;
            ResponseStatus::Answered {
                tier,
                complete: entry.complete,
                truncated,
                disjuncts: entry.plans.len(),
                candidates,
                answers: answers
                    .iter()
                    .map(|tuple| tuple.iter().map(|t| t.to_string()).collect())
                    .collect(),
            }
        }
    };
    let wall = t0.elapsed();
    stats.record_latency(wall);
    Response {
        seq,
        theory: theory_id,
        status,
        wall,
    }
}

/// Write-side merge stage: apply the batch to the tenant instance and, if
/// anything changed, drop that tenant's cache entries. Rewritings are pure
/// in (theory, query) — the invalidation is not about their soundness but
/// keeps residency a function of the request stream alone, so counters and
/// traces stay pinned.
fn finish_write(
    tenants: &[Tenant],
    cache: &Mutex<RewriteCache>,
    stats: &mut ServeStats,
    write: &FactWrite,
) -> ResponseStatus {
    let Some(tenant) = tenants.iter().position(|t| t.id == write.theory) else {
        stats.counters.rejected += 1;
        return ResponseStatus::Rejected {
            reason: format!("unknown theory '{}'", write.theory),
        };
    };
    let mut data = tenants[tenant].data.lock().expect("tenant data poisoned");
    let (inserted, retracted) = apply_write(&mut data, &write.batch);
    drop(data);
    let invalidated = if inserted + retracted > 0 {
        cache
            .lock()
            .expect("serve cache poisoned")
            .invalidate_tenant(tenant as u32)
    } else {
        0
    };
    let c = cache.lock().expect("serve cache poisoned");
    stats.counters.cache_bytes = c.bytes() as u64;
    stats.counters.peak_cache_bytes = c.peak_bytes() as u64;
    drop(c);
    stats.counters.writes += 1;
    stats.counters.facts_inserted += inserted;
    stats.counters.facts_retracted += retracted;
    stats.counters.cache_invalidations += invalidated;
    ResponseStatus::Written {
        inserted,
        retracted,
        invalidated,
    }
}

/// Applies a write batch to a base instance, mirroring the incremental
/// chase's base semantics: retractions first (by rebuilding the append-only
/// fact log without them), then inserts appended if absent. Returns the
/// facts actually (inserted, retracted).
fn apply_write(data: &mut Instance, batch: &WriteBatch) -> (u64, u64) {
    let mut retracted = 0u64;
    if !batch.retracts.is_empty() {
        let mut survivors = Instance::new();
        for fr in data.iter() {
            let fact = fr.to_fact();
            if batch.retracts.contains(&fact) {
                retracted += 1;
            } else {
                survivors.insert(fact);
            }
        }
        if retracted > 0 {
            *data = survivors;
        }
    }
    let mut inserted = 0u64;
    for fact in &batch.inserts {
        if data.insert(fact.clone()).is_some() {
            inserted += 1;
        }
    }
    (inserted, retracted)
}

/// Executes a cached entry over an instance: every disjunct's compiled
/// plan enumerates matches, answer variables project to tuples, and the
/// union dedups in first-seen order. Fully sequential per request, so
/// answer order and `candidates` are deterministic.
fn execute(entry: &CacheEntry, inst: &Instance, limit: usize) -> (Vec<Vec<TermId>>, u64, bool) {
    let mut counters = MatchCounters::default();
    let mut seen: HashSet<Vec<TermId>> = HashSet::new();
    let mut out: Vec<Vec<TermId>> = Vec::new();
    let mut truncated = false;
    for dp in &entry.plans {
        let completed = dp.plan.for_each_match(inst, &[], &mut counters, |asg| {
            let tuple: Vec<TermId> = dp
                .answer_vars
                .iter()
                .map(|v| asg[v.index()].expect("answer variables are bound by query safety"))
                .collect();
            if seen.insert(tuple.clone()) {
                out.push(tuple);
            }
            limit == 0 || out.len() < limit
        });
        if !completed {
            truncated = true;
            break;
        }
    }
    (out, counters.candidates, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeCounters;

    fn path_engine(threads: usize) -> Engine {
        let mut e = Engine::new(EngineConfig {
            threads,
            ..EngineConfig::default()
        });
        e.register(
            "path",
            "e(X,Y) -> e(Y,Z).",
            "e(a,b). e(b,c). e(c,d). e(x,y).",
        )
        .unwrap();
        e
    }

    fn req(theory: &str, query: &str) -> CqRequest {
        CqRequest {
            theory: theory.into(),
            query: query.into(),
        }
    }

    #[test]
    fn answers_reach_through_the_theory() {
        // ?(A) :- e(A,B), e(B,C): under e(X,Y) -> e(Y,Z) every node touching
        // an edge (either end) certainly heads a 2-path, so the certain
        // answers are all edge endpoints.
        let mut e = path_engine(1);
        let r = e.submit(req("path", "?(A) :- e(A,B), e(B,C)."));
        let ResponseStatus::Answered {
            tier,
            complete,
            answers,
            ..
        } = &r.status
        else {
            panic!("expected an answer, got {:?}", r.status);
        };
        assert_eq!(*tier, Tier::Miss);
        assert!(complete);
        let flat: Vec<&str> = answers.iter().map(|t| t[0].as_str()).collect();
        assert_eq!(
            flat,
            ["a", "b", "c", "x", "d", "y"],
            "answers are certain answers"
        );
    }

    #[test]
    fn isomorphic_requests_hit_the_cache() {
        let mut e = path_engine(1);
        let cold = e.submit(req("path", "?(A) :- e(A,B), e(B,C)."));
        let warm = e.submit(req("path", "?(Src) :- e(Mid,Last), e(Src,Mid)."));
        assert!(!cold.is_hit());
        assert!(warm.is_hit(), "renamed/permuted query shares the key");
        let (
            ResponseStatus::Answered { answers: a, .. },
            ResponseStatus::Answered { answers: b, .. },
        ) = (&cold.status, &warm.status)
        else {
            panic!("both answered");
        };
        assert_eq!(a, b, "hit answers are byte-identical to the cold run");
        assert_eq!(e.stats().counters.hits, 1);
        assert_eq!(e.stats().counters.misses, 1);
        assert_eq!(e.cached_rewritings(), 1);
    }

    #[test]
    fn rejections_are_reported_not_panicked() {
        let mut e = path_engine(1);
        let unknown = e.submit(req("nope", "? :- e(a,b)."));
        assert!(matches!(unknown.status, ResponseStatus::Rejected { .. }));
        let garbled = e.submit(req("path", "this is not a query"));
        assert!(matches!(garbled.status, ResponseStatus::Rejected { .. }));
        assert_eq!(e.stats().counters.rejected, 2);
        assert_eq!(e.stats().counters.requests, 2);
    }

    #[test]
    fn batches_answer_in_submission_order_at_any_width() {
        let requests: Vec<CqRequest> = (0..12)
            .map(|i| match i % 3 {
                0 => req("path", "?(A) :- e(A,B)."),
                1 => req("path", "?(Z) :- e(Z,W)."),
                _ => req("path", "? :- e(a,Q)."),
            })
            .collect();
        let baseline: Vec<String> = path_engine(1)
            .run(requests.clone())
            .iter()
            .map(Response::trace_line)
            .collect();
        for threads in [2, 4] {
            let got: Vec<String> = path_engine(threads)
                .run(requests.clone())
                .iter()
                .map(Response::trace_line)
                .collect();
            assert_eq!(baseline, got, "trace stable at {threads} threads");
        }
    }

    #[test]
    fn answer_limit_truncates_and_flags() {
        let mut e = Engine::new(EngineConfig {
            answer_limit: 2,
            ..EngineConfig::default()
        });
        e.register("path", "e(X,Y) -> e(Y,Z).", "e(a,b). e(b,c). e(c,d).")
            .unwrap();
        let r = e.submit(req("path", "?(A) :- e(A,B)."));
        let ResponseStatus::Answered {
            answers, truncated, ..
        } = &r.status
        else {
            panic!("answered");
        };
        assert_eq!(answers.len(), 2);
        assert!(truncated);
        assert_eq!(e.stats().counters.truncated, 1);
    }

    #[test]
    fn builtin_body_theories_rejected_at_registration() {
        let mut e = Engine::new(EngineConfig::default());
        let err = e
            .register("bad", "dom(X) -> p(X).", "p(a).")
            .expect_err("builtin bodies must not register");
        assert!(err.contains("builtin"), "{err}");
        assert!(e.register("dup", "q(X) -> p(X).", "q(a).").is_ok());
        assert!(e.register("dup", "q(X) -> p(X).", "").is_err());
    }

    fn facts(src: &str) -> Vec<qr_syntax::Fact> {
        qr_syntax::parse_instance(src)
            .unwrap()
            .iter()
            .map(|fr| fr.to_fact())
            .collect()
    }

    #[test]
    fn write_then_query_sees_new_data() {
        let mut e = path_engine(1);
        let before = e.submit(req("path", "? :- e(q,r)."));
        let ResponseStatus::Answered { answers, .. } = &before.status else {
            panic!("answered expected");
        };
        assert!(answers.is_empty(), "q->r edge not present yet");

        let w = e.submit_write(FactWrite {
            theory: "path".into(),
            batch: WriteBatch::insert(facts("e(q,r).")),
        });
        let ResponseStatus::Written {
            inserted,
            retracted,
            invalidated,
        } = w.status
        else {
            panic!("written expected, got {:?}", w.status);
        };
        assert_eq!((inserted, retracted), (1, 0));
        assert_eq!(invalidated, 1, "the boolean query's entry was resident");

        let after = e.submit(req("path", "? :- e(q,r)."));
        let ResponseStatus::Answered { tier, answers, .. } = &after.status else {
            panic!("answered expected");
        };
        assert_eq!(*tier, Tier::Miss, "write dropped the cached rewriting");
        assert_eq!(answers.len(), 1, "the inserted edge is now certain");

        let r = e.submit_write(FactWrite {
            theory: "path".into(),
            batch: WriteBatch::retract(facts("e(q,r).")),
        });
        let ResponseStatus::Written {
            inserted,
            retracted,
            ..
        } = r.status
        else {
            panic!("written expected");
        };
        assert_eq!((inserted, retracted), (0, 1));
        let gone = e.submit(req("path", "? :- e(q,r)."));
        let ResponseStatus::Answered { answers, .. } = &gone.status else {
            panic!("answered expected");
        };
        assert!(answers.is_empty(), "retraction undoes the insert");
    }

    #[test]
    fn writes_invalidate_only_the_written_tenant() {
        let mut e = Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        e.register("path", "e(X,Y) -> e(Y,Z).", "e(a,b).").unwrap();
        e.register("family", "parent(X,Y) -> person(Y).", "parent(ann,bob).")
            .unwrap();
        e.submit(req("path", "?(A) :- e(A,B)."));
        e.submit(req("family", "?(P) :- person(P)."));
        assert_eq!(e.cached_rewritings(), 2);

        let w = e.submit_write(FactWrite {
            theory: "path".into(),
            batch: WriteBatch::insert(facts("e(b,c).")),
        });
        let ResponseStatus::Written { invalidated, .. } = w.status else {
            panic!("written expected");
        };
        assert_eq!(invalidated, 1, "only path's entry is dropped");
        assert_eq!(e.cached_rewritings(), 1);

        let warm = e.submit(req("family", "?(Q) :- person(Q)."));
        assert!(warm.is_hit(), "family's cache survived path's write");
        assert_eq!(e.stats().counters.cache_invalidations, 1);
    }

    #[test]
    fn noop_writes_leave_the_cache_resident() {
        let mut e = path_engine(1);
        e.submit(req("path", "?(A) :- e(A,B)."));
        assert_eq!(e.cached_rewritings(), 1);
        // Insert an already-present fact, retract an absent one: the
        // instance is unchanged, so nothing is invalidated.
        let w = e.submit_write(FactWrite {
            theory: "path".into(),
            batch: WriteBatch {
                inserts: facts("e(a,b)."),
                retracts: facts("e(zz,ww)."),
            },
        });
        let ResponseStatus::Written {
            inserted,
            retracted,
            invalidated,
        } = w.status
        else {
            panic!("written expected");
        };
        assert_eq!((inserted, retracted, invalidated), (0, 0, 0));
        assert_eq!(e.cached_rewritings(), 1);
        let warm = e.submit(req("path", "?(Z) :- e(Z,W)."));
        assert!(warm.is_hit(), "no-op write keeps residency");
    }

    #[test]
    fn unknown_theory_write_is_rejected() {
        let mut e = path_engine(1);
        let w = e.submit_write(FactWrite {
            theory: "nosuch".into(),
            batch: WriteBatch::insert(facts("e(a,b).")),
        });
        let ResponseStatus::Rejected { reason } = &w.status else {
            panic!("rejected expected, got {:?}", w.status);
        };
        assert!(reason.contains("unknown theory"), "{reason}");
        assert_eq!(e.stats().counters.rejected, 1);
        assert_eq!(e.stats().counters.writes, 0, "rejected writes do not count");
    }

    #[test]
    fn counters_balance_across_mixed_batches() {
        let mut e = path_engine(1);
        let batch: Vec<Request> = vec![
            Request::Query(req("path", "?(A) :- e(A,B).")),
            Request::Write(FactWrite {
                theory: "path".into(),
                batch: WriteBatch::insert(facts("e(d,e).")),
            }),
            Request::Query(req("path", "?(A) :- e(A,B).")),
            Request::Query(req("nosuch", "? :- p(a).")),
            Request::Write(FactWrite {
                theory: "nosuch".into(),
                batch: WriteBatch::insert(facts("p(a).")),
            }),
        ];
        e.run_requests(batch);
        let c = e.stats().counters;
        assert_eq!(c.requests, 5);
        assert_eq!(c.answered, 2);
        assert_eq!(c.rejected, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.requests, c.answered + c.rejected + c.writes);
        assert_eq!(c.facts_inserted, 1);
        assert_eq!(c.facts_retracted, 0);
    }

    #[test]
    fn mixed_batches_pin_byte_identically_at_any_width() {
        let batch = || -> Vec<Request> {
            let mut v: Vec<Request> = Vec::new();
            v.push(Request::Query(req("path", "?(A) :- e(A,B), e(B,C).")));
            v.push(Request::Write(FactWrite {
                theory: "path".into(),
                batch: WriteBatch::insert(facts("e(y,z). e(z,a).")),
            }));
            v.push(Request::Query(req("path", "?(A) :- e(A,B), e(B,C).")));
            v.push(Request::Write(FactWrite {
                theory: "path".into(),
                batch: WriteBatch::retract(facts("e(x,y).")),
            }));
            v.push(Request::Query(req(
                "path",
                "?(Src) :- e(Mid,Last), e(Src,Mid).",
            )));
            v.push(Request::Query(req("path", "? :- e(z,a).")));
            v
        };
        let mut reference: Option<(String, ServeCounters)> = None;
        for threads in [1, 2, 4] {
            let mut e = path_engine(threads);
            let responses = e.run_requests(batch());
            let trace = crate::replay::render_trace(&responses);
            let counters = e.stats().counters;
            match &reference {
                None => reference = Some((trace, counters)),
                Some((t, c)) => {
                    assert_eq!(&trace, t, "trace diverges at {threads} threads");
                    assert_eq!(&counters, c, "counters diverge at {threads} threads");
                }
            }
        }
    }
}
