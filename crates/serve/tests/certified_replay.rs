//! End-to-end certification of the pinned serving workload: the golden
//! smoke replay answers byte-identically to its committed trace, and every
//! rewriting it served is then re-derived, round-tripped through the
//! `QRRC` codec, and verified by the independent checker — all without
//! touching the serving counters.

use qr_rewrite::RewriteBudget;
use qr_serve::{render_trace, Engine, EngineConfig};

const REQUESTS: &str = include_str!("replays/smoke.requests");
const GOLDEN: &str = include_str!("replays/smoke.trace");

fn smoke_engine(threads: usize) -> Engine {
    let mut e = Engine::new(EngineConfig {
        threads,
        // Matches `replay_trace.rs`: the tc tenant budgets out (pinning
        // certification of an incomplete rewriting), the rest saturate.
        rewrite_budget: RewriteBudget {
            max_queries: 24,
            max_generated: 800,
            max_atoms: 8,
        },
        ..EngineConfig::default()
    });
    e.register(
        "path",
        "e(X,Y) -> e(Y,Z).",
        "e(a,b). e(b,c). e(c,d). e(x,y).",
    )
    .unwrap();
    e.register(
        "family",
        "human(Y) -> mother(Y,Z).\nmother(X,Y) -> human(Y).",
        "mother(ann,bob). mother(bob,carol). human(dave).",
    )
    .unwrap();
    e.register(
        "guarded",
        "p(X), e(X,Y) -> p(Y).\nq(X) -> p(X).",
        "q(s). e(s,t). e(t,u).",
    )
    .unwrap();
    e.register("tc", "e(X,Y), e(Y,Z) -> e(X,Z).", "e(a,b). e(b,c). e(c,d).")
        .unwrap();
    e
}

#[test]
fn golden_replay_certifies_end_to_end() {
    let mut engine = smoke_engine(1);
    let responses = engine.replay(REQUESTS).expect("smoke replay parses");
    assert_eq!(
        render_trace(&responses),
        GOLDEN,
        "the golden trace must replay byte-identically before certifying"
    );

    let before = engine.stats().counters;
    let report = engine.certify_replay(REQUESTS).expect("replay parses");
    assert!(report.ok(), "replay failures: {:?}", report.failures);
    assert_eq!(report.chase_certs, 0, "serving certifies rewrites only");
    assert!(
        report.rewrite_certs > 0,
        "every served rewriting carries certificates"
    );
    assert!(report.cert_bytes > 0);

    // Certification runs off the fast path: not one serving counter
    // moves, and a warm re-replay after certifying renders the same bytes
    // as on a control engine that never certified.
    assert_eq!(&before, &engine.stats().counters);
    let warm_certified = render_trace(&engine.replay(REQUESTS).expect("parses"));
    let mut control = smoke_engine(1);
    control.replay(REQUESTS).expect("parses");
    let warm_control = render_trace(&control.replay(REQUESTS).expect("parses"));
    assert_eq!(
        warm_certified, warm_control,
        "serving after certification is byte-identical to never certifying"
    );
}

#[test]
fn certification_covers_each_cache_identity_once() {
    let engine = smoke_engine(1);
    let report = engine.certify_replay(REQUESTS).expect("parses");
    assert!(report.ok(), "{:?}", report.failures);
    // The smoke stream holds 16 requests, 2 of which reject and several of
    // which are isomorphic repeats; certification dedups by the cache's
    // (tenant, freeze-key) identity, so the cert count is bounded by the
    // distinct shapes, not the request count.
    let distinct_shapes = 10;
    assert!(
        report.rewrite_certs >= distinct_shapes,
        "every distinct shape certifies at least its seed: {}",
        report.rewrite_certs
    );
}
