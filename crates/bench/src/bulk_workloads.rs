//! The `bulk-*` workloads: bulk-instance chases behind the harness's
//! `--shard` mode and `BENCH_chase.json`'s `shard_runs` array (schema
//! chase-v5).
//!
//! Each workload is a deterministic seeded generator producing a bulk
//! instance of many disconnected Gaifman components, chased twice through
//! [`qr_chase::chase_sharded_opts`]: once on a 1-thread pool (which
//! bypasses to the monolithic engine — the `"chase"` rows) and once on a
//! 4-thread pool (the `"sharded"` rows). The pool widths are pinned
//! inside this module, not taken from the harness's `--threads`, because
//! the pair *is* the measurement: same instance, same counters
//! (byte-identity is the sharded engine's contract), different wall
//! clock. Three pinned classes:
//!
//! * `bulk-tc` — thousands of disconnected transitive-closure graphs
//!   (~1M facts after the chase). The monolithic engine drags a
//!   million-entry fact index through every probe; the sharded engine
//!   chases each cache-resident component alone and splices the results.
//! * `bulk-shallow` — an OWL 2 QL-style shallow chase (class chain,
//!   role existential, range) over ~10^5 single-individual components.
//! * `bulk-bridge` — a `dom`-guarded theory whose rules span shards, so
//!   the run exercises the certified frontier exchange: every absorbed
//!   fact travels with a [`qr_chase::ChaseCert`] replayed through
//!   [`qr_check::check_frontier`], with zero homomorphism searches.
//!
//! Everything but the `*_ms` fields is deterministic and drift-gated by
//! `bench_diff`: the chase counters because sharding is byte-identical,
//! the exchange counters because partition, packing and shard order are
//! deterministic functions of the instance.

use std::time::Instant;

use qr_chase::{
    chase_sharded_opts, Chase, ChaseBudget, ChaseCertBundle, CrossShardPolicy, FrontierRejection,
    ShardOpts,
};
use qr_exec::Executor;
use qr_syntax::{parse_theory, Fact, Instance, Pred, Symbol, TermId, Theory};

use crate::report::ShardRun;

/// `bulk-tc` scale: components × path nodes ≈ 4000 × 22 → ~1M facts
/// after closure — insert-dominated, where the monolithic run pays for
/// growing (and re-hashing) a million-entry fact index while every
/// shard's index stays small.
const TC_COMPONENTS: usize = 4000;
const TC_NODES: usize = 22;
const TC_CHORDS: usize = 1;

/// `bulk-shallow` scale: individuals, each its own Gaifman component.
const SHALLOW_INDIVIDUALS: usize = 120_000;

/// `bulk-bridge` scale: kept small — the `dom` sweep is quadratic in
/// (edges × domain), and the workload measures the exchange protocol,
/// not bulk throughput.
const BRIDGE_COMPONENTS: usize = 60;

fn bulk_budget() -> ChaseBudget {
    ChaseBudget {
        max_rounds: 24,
        max_facts: 4_000_000,
    }
}

fn edge(pred: Pred, a: String, b: String) -> Fact {
    Fact::new(
        pred,
        vec![
            TermId::constant(Symbol::intern(&a)),
            TermId::constant(Symbol::intern(&b)),
        ],
    )
}

/// `components` disconnected graphs, each a path of `nodes` constants
/// plus `chords` seeded random chord edges. Constants are namespaced per
/// component (`g{c}n{i}`), so no edge ever crosses graphs.
pub fn bulk_tc_instance(components: usize, nodes: usize, chords: usize, seed: u64) -> Instance {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let e = Pred::new("e", 2);
    let mut inst = Instance::new();
    for c in 0..components {
        for i in 0..nodes - 1 {
            inst.insert(edge(e, format!("g{c}n{i}"), format!("g{c}n{}", i + 1)));
        }
        for _ in 0..chords {
            let a = next() % nodes;
            let b = next() % nodes;
            if a != b {
                inst.insert(edge(e, format!("g{c}n{a}"), format!("g{c}n{b}")));
            }
        }
    }
    inst
}

/// The `bulk-tc` theory: plain transitive closure.
pub fn bulk_tc_theory() -> Theory {
    parse_theory("e(X,Y), e(Y,Z) -> e(X,Z).").expect("parses")
}

/// `individuals` single-individual components: every third individual
/// also gets a base `r`-edge to a sibling constant (still inside its own
/// component).
pub fn bulk_shallow_instance(individuals: usize) -> Instance {
    let a = Pred::new("a", 1);
    let r = Pred::new("r", 2);
    let mut inst = Instance::new();
    for i in 0..individuals {
        inst.insert(Fact::new(
            a,
            vec![TermId::constant(Symbol::intern(&format!("p{i}")))],
        ));
        if i % 3 == 0 {
            inst.insert(edge(r, format!("p{i}"), format!("q{i}")));
        }
    }
    inst
}

/// The `bulk-shallow` theory: an OWL 2 QL-flavoured fragment — a class
/// chain (`a ⊑ b ⊑ c`), a role existential (`a ⊑ ∃r`) and a range axiom
/// (`∃r⁻ ⊑ s`). The chase is shallow (depth ≤ 3) and terminating.
pub fn bulk_shallow_theory() -> Theory {
    parse_theory("a(X) -> b(X). b(X) -> c(X). a(X) -> r(X,Y). r(X,Y) -> s(Y). s(X) -> c(X).")
        .expect("parses")
}

/// `components` two-constant components for the exchange workload.
pub fn bulk_bridge_instance(components: usize) -> Instance {
    let e = Pred::new("e", 2);
    let mut inst = Instance::new();
    for c in 0..components {
        inst.insert(edge(e, format!("u{c}"), format!("w{c}")));
    }
    inst
}

/// The `bulk-bridge` theory: the `dom` guard makes every rule span
/// shards, forcing [`qr_chase::ShardMode::Exchange`] under the exchange
/// policy.
pub fn bulk_bridge_theory() -> Theory {
    parse_theory("e(X,Y), dom(Z) -> t(X,Z).").expect("parses")
}

/// The production frontier verifier: replay the shard's certificate
/// bundle through `qr-check` before absorbing a single fact.
fn checked_frontier(
    theory: &Theory,
    base: &Instance,
    frontier: &[Fact],
    bundle: &ChaseCertBundle,
) -> Result<usize, FrontierRejection> {
    qr_check::check_frontier(theory, base, frontier, bundle).map_err(|e| FrontierRejection {
        cert: e.cert,
        detail: e.to_string(),
    })
}

fn run_one(label: &str, theory: &Theory, db: &Instance, threads: usize) -> (Chase, ShardRun) {
    let exec = Executor::with_threads(threads);
    let opts = ShardOpts {
        cross_shard: CrossShardPolicy::Exchange {
            verify: &checked_frontier,
        },
        ..ShardOpts::default()
    };
    let t0 = Instant::now();
    let (ch, stats) = chase_sharded_opts(theory, db, bulk_budget(), &exec, &opts);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let engine = if threads <= 1 { "chase" } else { "sharded" };
    let dur_ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let run = ShardRun {
        workload: format!("{label}/{engine}"),
        engine,
        threads,
        mode: stats.mode.as_str().to_owned(),
        components: stats.components,
        shards: stats.shards,
        frontier_rounds: stats.frontier_rounds,
        certs_exchanged: stats.certs_exchanged,
        certs_checked: stats.certs_checked,
        certs_rejected: stats.certs_rejected,
        kernel_searches: stats.kernel_searches,
        wall_ms,
        partition_ms: dur_ms(stats.partition_wall),
        shard_ms: dur_ms(stats.shard_wall),
        merge_ms: dur_ms(stats.merge_wall),
        facts_out: ch.instance.len(),
        rounds_run: ch.rounds,
        triggers: ch.stats.triggers(),
        candidates: ch.stats.candidates(),
    };
    (ch, run)
}

/// The pinned bulk runs the harness's `--shard` mode measures: each
/// workload on a 1-thread pool (monolithic bypass) and a 4-thread pool
/// (sharded). The pool widths are deliberately NOT the harness's
/// `--threads` — the 1-vs-4 pair is the speedup measurement itself.
/// `filters` selects workloads by id (`"bulk-tc"`, ...); empty runs all.
pub fn stats_runs(filters: &[String]) -> Vec<ShardRun> {
    let mut out = Vec::new();
    type Gen = fn() -> (Theory, Instance);
    let workloads: [(&str, Gen); 3] = [
        ("bulk-tc", || {
            (
                bulk_tc_theory(),
                bulk_tc_instance(TC_COMPONENTS, TC_NODES, TC_CHORDS, 0xB07C),
            )
        }),
        ("bulk-shallow", || {
            (
                bulk_shallow_theory(),
                bulk_shallow_instance(SHALLOW_INDIVIDUALS),
            )
        }),
        ("bulk-bridge", || {
            (
                bulk_bridge_theory(),
                bulk_bridge_instance(BRIDGE_COMPONENTS),
            )
        }),
    ];
    for (label, gen) in workloads {
        if !filters.is_empty() && !filters.iter().any(|f| f == label) {
            continue;
        }
        let (theory, db) = gen();
        let (theory, db) = (&theory, &db);
        let (mono, mono_run) = run_one(label, theory, db, 1);
        let (shard, shard_run) = run_one(label, theory, db, 4);
        // The sharded engine's contract, asserted before anything is
        // written: byte-identical merges (set-equal for the exchange).
        if shard_run.mode == "exchange" {
            assert_eq!(shard.instance, mono.instance, "{label}: exchange set");
        } else {
            assert_eq!(
                shard
                    .instance
                    .iter()
                    .map(|f| f.to_fact())
                    .collect::<Vec<_>>(),
                mono.instance
                    .iter()
                    .map(|f| f.to_fact())
                    .collect::<Vec<_>>(),
                "{label}: sharded fact stream"
            );
            assert_eq!(shard.round_of, mono.round_of, "{label}: rounds");
            assert_eq!(shard_run.triggers, mono_run.triggers, "{label}: triggers");
        }
        out.push(mono_run);
        out.push(shard_run);
    }
    out
}

/// The workload ids `--shard` accepts (and `--list` prints).
pub fn workload_labels() -> Vec<&'static str> {
    vec!["bulk-tc", "bulk-shallow", "bulk-bridge"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_chase::{chase_with, ShardMode};

    // The pinned scales chase ~10^6 facts — release-harness territory.
    // The tests pin the same properties at toy scale instead.

    #[test]
    fn generators_are_deterministic() {
        let a = bulk_tc_instance(8, 6, 14, 42);
        let b = bulk_tc_instance(8, 6, 14, 42);
        assert_eq!(a, b);
        assert_ne!(a, bulk_tc_instance(8, 6, 14, 43));
        assert_eq!(bulk_shallow_instance(30), bulk_shallow_instance(30));
        assert_eq!(bulk_bridge_instance(5), bulk_bridge_instance(5));
        // Namespaced constants: one Gaifman component per graph.
        assert_eq!(qr_syntax::gaifman::components_of(&a).len(), 8);
        assert_eq!(
            qr_syntax::gaifman::components_of(&bulk_bridge_instance(5)).len(),
            5
        );
    }

    #[test]
    fn small_bulk_tc_shards_byte_identically() {
        let t = bulk_tc_theory();
        let db = bulk_tc_instance(12, 7, 18, 7);
        let (ch, run) = run_one("bulk-tc", &t, &db, 4);
        assert_eq!(run.engine, "sharded");
        assert_eq!(run.mode, "gaifman");
        assert_eq!(run.components, 12);
        assert!(run.shards >= 2);
        let reference = chase_with(&t, &db, bulk_budget(), &Executor::sequential());
        assert_eq!(ch.instance, reference.instance);
        assert_eq!(ch.round_of, reference.round_of);
        assert_eq!(ch.derivations, reference.derivations);
        assert_eq!(run.triggers, reference.stats.triggers());
        assert_eq!(run.candidates, reference.stats.candidates());
    }

    #[test]
    fn small_bulk_shallow_shards_byte_identically() {
        let t = bulk_shallow_theory();
        let db = bulk_shallow_instance(40);
        let (ch, run) = run_one("bulk-shallow", &t, &db, 4);
        assert_eq!(run.mode, "gaifman");
        let reference = chase_with(&t, &db, bulk_budget(), &Executor::sequential());
        assert_eq!(ch.instance, reference.instance);
        assert_eq!(ch.round_of, reference.round_of);
        assert_eq!(run.triggers, reference.stats.triggers());
    }

    #[test]
    fn small_bulk_bridge_exchanges_checked_certs() {
        let t = bulk_bridge_theory();
        let db = bulk_bridge_instance(6);
        let (ch, run) = run_one("bulk-bridge", &t, &db, 4);
        assert_eq!(run.mode, ShardMode::Exchange.as_str());
        assert!(run.certs_exchanged > 0);
        assert_eq!(run.certs_checked, run.certs_exchanged);
        assert_eq!(run.certs_rejected, 0);
        assert_eq!(run.kernel_searches, 0, "replay must not search");
        let reference = chase_with(&t, &db, bulk_budget(), &Executor::sequential());
        assert_eq!(ch.instance, reference.instance, "exchange set-equality");
    }

    #[test]
    fn monolithic_rows_bypass() {
        let t = bulk_tc_theory();
        let db = bulk_tc_instance(6, 5, 12, 1);
        let (_, run) = run_one("bulk-tc", &t, &db, 1);
        assert_eq!(run.engine, "chase");
        assert_eq!(run.workload, "bulk-tc/chase");
        assert_eq!(run.mode, "bypass");
        assert_eq!(run.shards, 0);
    }
}
