//! **E3 — Theorem 5(A), Sections 10–11**: the marked-query process
//! terminates on `φ_R^n` and its output contains the disjunct `G^{2^n}` —
//! a rewriting disjunct of size exponential in `|φ_R^n| = 2n+1`.

use std::time::Instant;

use qr_core::marked::rewrite_td;
use qr_core::theories::{g_power_query, phi_r_n};
use qr_hom::containment::equivalent;

use crate::Table;

/// Largest `n` covered by the default run.
pub const MAX_N: usize = 5;

/// The E3 table.
pub fn table(_exec: &qr_exec::Executor) -> Table {
    let mut t = Table::new(
        "E3  Thm 5(A) — marked-query process computes rew(φ_R^n) under T_d",
        "terminates; contains the G^{2^n} disjunct; max disjunct size grows exponentially in n",
        &[
            "n",
            "|φ_R^n|",
            "steps",
            "disjuncts",
            "max size",
            "G^{2^n} present",
            "ms",
        ],
    );
    for n in 1..=MAX_N {
        let t0 = Instant::now();
        let r = rewrite_td(&phi_r_n(n), 100_000_000).expect("process terminates");
        let gpath = g_power_query(1 << n);
        let present = r.disjuncts.iter().any(|d| equivalent(d, &gpath));
        t.row(vec![
            n.to_string(),
            phi_r_n(n).size().to_string(),
            r.stats.steps.to_string(),
            r.disjuncts.len().to_string(),
            r.max_disjunct_size().to_string(),
            present.to_string(),
            t0.elapsed().as_millis().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_disjunct_growth() {
        let sizes: Vec<usize> = (1..=3)
            .map(|n| {
                rewrite_td(&phi_r_n(n), 10_000_000)
                    .unwrap()
                    .max_disjunct_size()
            })
            .collect();
        // Query grows by 2 atoms per n; the max disjunct roughly doubles.
        assert!(sizes[1] >= 2 * sizes[0]);
        assert!(sizes[2] as f64 >= 1.7 * sizes[1] as f64);
    }

    #[test]
    fn g_path_disjunct_present_n3() {
        let r = rewrite_td(&phi_r_n(3), 10_000_000).unwrap();
        let g8 = g_power_query(8);
        assert!(r.disjuncts.iter().any(|d| equivalent(d, &g8)));
    }
}
